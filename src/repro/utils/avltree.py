"""A self-balancing (AVL) binary search tree.

The merge utility "uses a balanced tree in which each tree node holds the
pointer to the next interval in the corresponding interval file.  Tree nodes
are sorted by end time" (paper section 3.1).  This is that tree: keys are
(end time, tiebreak) tuples, values are per-file cursors; ``pop_min``
removes the earliest-ending interval and the cursor is re-inserted at its
next record's key.

Also reused by the ablation bench comparing tree-based merging against a
linear scan.
"""

from __future__ import annotations

from typing import Any, Iterator


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1


def _h(node: _Node | None) -> int:
    return node.height if node else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))


def _balance_factor(node: _Node) -> int:
    return _h(node.left) - _h(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    bf = _balance_factor(node)
    if bf > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bf < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """AVL tree with duplicate keys allowed (duplicates go right)."""

    def __init__(self) -> None:
        self._root: _Node | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def insert(self, key: Any, value: Any) -> None:
        """Insert a (key, value) pair; O(log n)."""
        self._root = self._insert(self._root, key, value)
        self._size += 1

    def _insert(self, node: _Node | None, key: Any, value: Any) -> _Node:
        if node is None:
            return _Node(key, value)
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        else:
            node.right = self._insert(node.right, key, value)
        return _rebalance(node)

    def min_item(self) -> tuple[Any, Any]:
        """The smallest (key, value) pair without removing it; O(log n)."""
        if self._root is None:
            raise KeyError("min of empty tree")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def pop_min(self) -> tuple[Any, Any]:
        """Remove and return the smallest (key, value) pair; O(log n)."""
        if self._root is None:
            raise KeyError("pop from empty tree")
        popped: list[tuple[Any, Any]] = []
        self._root = self._pop_min(self._root, popped)
        self._size -= 1
        return popped[0]

    def _pop_min(self, node: _Node, popped: list) -> _Node | None:
        if node.left is None:
            popped.append((node.key, node.value))
            return node.right
        node.left = self._pop_min(node.left, popped)
        return _rebalance(node)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All pairs in ascending key order (in-order traversal)."""
        stack: list[_Node] = []
        node = self._root
        while stack or node:
            while node:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def height(self) -> int:
        """Tree height (0 for empty); stays O(log n) by the AVL invariant."""
        return _h(self._root)

    def check_invariants(self) -> None:
        """Assert BST ordering and AVL balance everywhere (for tests)."""

        def walk(node: _Node | None) -> tuple[int, Any, Any]:
            if node is None:
                return 0, None, None
            lh, lmin, lmax = walk(node.left)
            rh, rmin, rmax = walk(node.right)
            if lmax is not None and lmax > node.key:
                raise AssertionError(f"BST violation left of {node.key}")
            if rmin is not None and rmin < node.key:
                raise AssertionError(f"BST violation right of {node.key}")
            if abs(lh - rh) > 1:
                raise AssertionError(f"AVL imbalance at {node.key}")
            height = 1 + max(lh, rh)
            if height != node.height:
                raise AssertionError(f"stale height at {node.key}")
            lo = lmin if lmin is not None else node.key
            hi = rmax if rmax is not None else node.key
            return height, lo, hi

        walk(self._root)
