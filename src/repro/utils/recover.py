"""Rewrite a damaged trace file into a clean, validated one.

``recover_file`` is the engine behind the ``ute-recover`` CLI.  It sniffs
the input's magic (interval file, SLOG, or raw trace), reads it with the
salvage-mode reader stack — resynchronizing over damage instead of raising
— filters the surviving records through the *same* invariant checks
``ute-validate`` applies (:class:`~repro.utils.validate.RecordInvariantChecker`),
and writes whatever passes through the crash-safe writers.  The output is
then re-opened strictly and proved:

* interval files run through :func:`~repro.utils.validate.validate_interval_file`
  and must report **zero errors**;
* SLOG and raw outputs must decode in full under the strict readers.

The :class:`RecoveryReport` carries both sides of the story: what salvage
had to give up on the way in, and the proof on the way out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.profilefmt import Profile
from repro.core.records import BeBits
from repro.core.salvage import SalvageReport
from repro.errors import FormatError
from repro.utils.validate import (
    RecordInvariantChecker,
    ValidationReport,
    validate_interval_file,
)

#: Magic prefixes of the recoverable file kinds.
_KINDS = (
    (b"UTEIVL1\x00", "interval"),
    (b"UTESLOG1", "slog"),
    (b"UTERAW1\x00", "raw"),
)


def sniff_kind(path: str | Path) -> str:
    """``"interval"``, ``"slog"``, or ``"raw"`` from the file's magic."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            head = fh.read(8)
    except OSError as exc:
        raise FormatError(f"{path}: cannot read ({exc})") from exc
    for magic, kind in _KINDS:
        if head == magic:
            return kind
    raise FormatError(
        f"{path}: not a recoverable trace file (magic {head!r}); "
        "expected an interval (.ute), SLOG (.slog), or raw trace file"
    )


def default_output_path(input_path: str | Path) -> Path:
    """Where ``ute-recover`` writes when no ``-o`` is given:
    ``trace.ute`` → ``trace.recovered.ute``."""
    path = Path(input_path)
    return path.with_name(f"{path.stem}.recovered{path.suffix}")


@dataclass
class RecoveryReport:
    """Outcome of one recovery run: salvage accounting on the way in,
    validation proof on the way out."""

    input_path: Path
    output_path: Path
    kind: str
    records_in: int = 0
    records_out: int = 0
    records_rejected: int = 0
    salvage: SalvageReport = field(default_factory=SalvageReport)
    validation: ValidationReport | None = None
    verify_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the recovered output proved clean."""
        if self.verify_errors:
            return False
        if self.validation is not None:
            return self.validation.ok
        return True

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"{self.input_path} ({self.kind}) -> {self.output_path}: "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  records: {self.records_in} salvaged, {self.records_out} written, "
            f"{self.records_rejected} rejected by invariants",
            f"  {self.salvage.summary()}",
        ]
        if self.validation is not None:
            lines.append(
                "  output validation: "
                + ("zero errors" if self.validation.ok else "ERRORS")
            )
            lines += [f"    error: {e}" for e in self.validation.errors]
        lines += [f"  verify error: {e}" for e in self.verify_errors]
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly form (``ute-recover --json``)."""
        return {
            "input": str(self.input_path),
            "output": str(self.output_path),
            "kind": self.kind,
            "ok": self.ok,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "records_rejected": self.records_rejected,
            "salvage": self.salvage.as_dict(),
            "validation_errors": (
                list(self.validation.errors) if self.validation is not None else []
            ),
            "verify_errors": list(self.verify_errors),
        }


def recover_file(
    input_path: str | Path,
    output_path: str | Path | None = None,
    *,
    profile: Profile | None = None,
    frame_bytes: int = 32 * 1024,
) -> RecoveryReport:
    """Recover one damaged trace file; returns the full report.

    ``profile`` is required for interval files (they do not embed one);
    SLOG files are self-describing and raw traces need none."""
    input_path = Path(input_path)
    out = Path(output_path) if output_path is not None else default_output_path(input_path)
    if out.resolve() == input_path.resolve():
        raise FormatError(f"{input_path}: refusing to recover a file onto itself")
    kind = sniff_kind(input_path)
    if kind == "interval":
        if profile is None:
            raise FormatError(
                f"{input_path}: recovering an interval file requires its profile"
            )
        return _recover_interval(input_path, out, profile, frame_bytes)
    if kind == "slog":
        return _recover_slog(input_path, out, frame_bytes)
    return _recover_raw(input_path, out)


# ---------------------------------------------------------------------------
# Per-kind engines.


def _recover_interval(
    input_path: Path, out: Path, profile: Profile, frame_bytes: int
) -> RecoveryReport:
    from repro.core.reader import IntervalReader
    from repro.core.writer import IntervalFileWriter

    with IntervalReader(input_path, profile, errors="salvage") as reader:
        assert reader.salvage is not None
        report = RecoveryReport(input_path, out, "interval", salvage=reader.salvage)
        checker = RecordInvariantChecker(reader.thread_table, reader.markers)
        with IntervalFileWriter(
            out,
            profile,
            reader.thread_table,
            markers=reader.markers,
            node_cpus=reader.node_cpus,
            field_mask=reader.header.field_mask,
            frame_bytes=frame_bytes,
            ticks_per_sec=reader.header.ticks_per_sec,
        ) as writer:
            for record in reader.intervals():
                report.records_in += 1
                errors, _warnings = checker.problems(record)
                if errors:
                    report.records_rejected += 1
                    continue
                checker.accept(record)
                writer.write(record)
                report.records_out += 1
    # Prove the output with the same validator ute-validate runs.
    report.validation = validate_interval_file(out, profile)
    return report


def _recover_slog(input_path: Path, out: Path, frame_bytes: int) -> RecoveryReport:
    from repro.utils.slog import SlogFile, SlogWriter

    with SlogFile(input_path, errors="salvage") as slog:
        assert slog.salvage is not None
        report = RecoveryReport(input_path, out, "slog", salvage=slog.salvage)
        checker = RecordInvariantChecker(slog.thread_table, slog.markers)
        with SlogWriter(
            out,
            slog.profile,
            slog.thread_table,
            markers=slog.markers,
            node_cpus=slog.node_cpus,
            field_mask=slog.field_mask,
            frame_bytes=frame_bytes,
            time_range=slog.time_range,
            preview_bins=slog.preview_bins,
            ticks_per_sec=slog.ticks_per_sec,
        ) as writer:
            for frame in slog.frames:
                for record in slog.read_frame(frame):
                    report.records_in += 1
                    errors, _warnings = checker.problems(record)
                    if errors:
                        report.records_rejected += 1
                        continue
                    checker.accept(record)
                    # SLOG does not flag pseudo records on the wire; the
                    # zero-duration-continuation convention identifies them.
                    pseudo = record.bebits is BeBits.CONTINUATION and record.duration == 0
                    writer.write(record, pseudo=pseudo)
                    report.records_out += 1
            writer.close()
    _verify_slog(out, report)
    return report


def _recover_raw(input_path: Path, out: Path) -> RecoveryReport:
    from repro.tracing.rawfile import RawTraceReader, RawTraceWriter

    with RawTraceReader(input_path, errors="salvage") as reader:
        assert reader.salvage is not None
        report = RecoveryReport(input_path, out, "raw", salvage=reader.salvage)
        with RawTraceWriter(out, reader.header) as writer:
            for event in reader:
                report.records_in += 1
                writer.write(event)
                report.records_out += 1
    _verify_raw(out, report)
    return report


def _verify_slog(out: Path, report: RecoveryReport) -> None:
    """Strictly re-read the recovered SLOG; any raise is a verify error."""
    from repro.utils.slog import SlogFile

    try:
        with SlogFile(out) as check:
            n = sum(len(check.read_frame(f)) for f in check.frames)
    except FormatError as exc:
        report.verify_errors.append(str(exc))
        return
    if n != report.records_out:
        report.verify_errors.append(
            f"{out}: recovered file holds {n} records, expected {report.records_out}"
        )


def _verify_raw(out: Path, report: RecoveryReport) -> None:
    """Strictly re-read the recovered raw trace; any raise is a verify
    error."""
    from repro.errors import ReproError
    from repro.tracing.rawfile import RawTraceReader

    try:
        with RawTraceReader(out) as check:
            n = len(check.events())
    except ReproError as exc:
        report.verify_errors.append(str(exc))
        return
    if n != report.records_out:
        report.verify_errors.append(
            f"{out}: recovered file holds {n} events, expected {report.records_out}"
        )
