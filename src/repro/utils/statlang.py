"""The declarative statistics table language (paper section 3.2).

A program is a sequence of table specifications::

    table name=sample condition=(start < 2)
          x=("node", node) x=("processor", cpu)
          y=("avg(duration)", dura, avg)

* ``condition`` selects intervals (any boolean expression over fields);
* each ``x`` declares a free variable of the table (label + expression);
* each ``y`` declares a dependent value (label + expression + aggregate).

Expressions support field names, numeric literals, arithmetic
(``+ - * /``), comparisons, ``and`` / ``or`` / ``not``, parentheses, and the
binning function ``bin(expr, lo, hi, n)`` which maps a value into one of
``n`` equal bins over [lo, hi).  Aggregates: ``avg sum min max count``.

Field names come from the description profile (``start``, ``dura``,
``node``, ``cpu``, ``thread``, ``msgSizeSent``, …) plus the synthesized
``type`` (interval type number) and ``bebits``.  Time-valued fields
(``start``, ``dura``, ``localStart``) are presented in **seconds**, matching
the paper's ``condition=(start < 2)`` reading "started during the first 2
seconds".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import StatsError

AGGREGATES = ("avg", "sum", "min", "max", "count")

# ----------------------------------------------------------------- lexer

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|[-+*/<>(),=])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    pos: int
    line: int = field(default=1, compare=False)
    col: int = field(default=1, compare=False)

    def where(self) -> str:
        """Human-readable location, used in every diagnostic."""
        return f"line {self.line}, column {self.col}"


def _line_col(text: str, pos: int) -> tuple[int, int]:
    """1-based (line, column) of character offset ``pos``."""
    line = text.count("\n", 0, pos) + 1
    col = pos - (text.rfind("\n", 0, pos) + 1) + 1
    return line, col


def tokenize(text: str) -> list[Token]:
    """Split a program into tokens; raises on anything unrecognized.

    Tokens remember their 1-based line and column so parse and evaluation
    diagnostics can point at the offending spot — these messages are API
    surface (the serving daemon returns them as HTTP 400 bodies)."""
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            line, col = _line_col(text, pos)
            raise StatsError(
                f"unexpected character {text[pos]!r} at line {line}, column {col}"
            )
        kind = m.lastgroup
        assert kind is not None
        if kind != "ws":
            line, col = _line_col(text, pos)
            tokens.append(Token(kind, m.group(), pos, line, col))
        pos = m.end()
    return tokens


# ------------------------------------------------------------- expressions


class Expr:
    """Base class of expression AST nodes."""

    def eval(self, env: Mapping[str, Any]) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def fields(self) -> set[str]:
        """Field names this expression reads."""
        return set()


@dataclass(frozen=True)
class Literal(Expr):
    value: float

    def eval(self, env: Mapping[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Field(Expr):
    name: str
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)

    def eval(self, env: Mapping[str, Any]) -> Any:
        try:
            return env[self.name]
        except KeyError:
            where = f" (line {self.line}, column {self.col})" if self.line else ""
            raise StatsError(f"record has no field {self.name!r}{where}") from None

    def fields(self) -> set[str]:
        return {self.name}


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def eval(self, env: Mapping[str, Any]) -> Any:
        try:
            return _BINOPS[self.op](self.left.eval(env), self.right.eval(env))
        except ZeroDivisionError:
            raise StatsError("division by zero in table expression") from None

    def fields(self) -> set[str]:
        return self.left.fields() | self.right.fields()


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def eval(self, env: Mapping[str, Any]) -> Any:
        return not bool(self.operand.eval(env))

    def fields(self) -> set[str]:
        return self.operand.fields()


@dataclass(frozen=True)
class Neg(Expr):
    operand: Expr

    def eval(self, env: Mapping[str, Any]) -> Any:
        return -self.operand.eval(env)

    def fields(self) -> set[str]:
        return self.operand.fields()


@dataclass(frozen=True)
class Bin(Expr):
    """bin(expr, lo, hi, n): equal-width binning with clamping."""

    operand: Expr
    lo: Expr
    hi: Expr
    n: Expr

    def eval(self, env: Mapping[str, Any]) -> int:
        value = self.operand.eval(env)
        lo = self.lo.eval(env)
        hi = self.hi.eval(env)
        n = int(self.n.eval(env))
        if n < 1 or hi <= lo:
            raise StatsError(f"bad bin() parameters lo={lo} hi={hi} n={n}")
        idx = int((value - lo) / ((hi - lo) / n))
        return max(0, min(idx, n - 1))

    def fields(self) -> set[str]:
        return (
            self.operand.fields() | self.lo.fields() | self.hi.fields() | self.n.fields()
        )


# --------------------------------------------------------------- parser


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            where = ""
            if self.tokens:
                last = self.tokens[-1]
                where = f" after {last.text!r} at {last.where()}"
            raise StatsError(f"unexpected end of program{where}")
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise StatsError(
                f"expected {text!r} at {tok.where()}, got {tok.text!r}"
            )
        return tok

    def at_keyword(self, word: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == "name" and tok.text == word

    # Expression grammar: or_expr > and_expr > not > comparison > additive >
    # multiplicative > unary > atom.

    def parse_expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        node = self._and()
        while self.at_keyword("or"):
            self.next()
            node = BinOp("or", node, self._and())
        return node

    def _and(self) -> Expr:
        node = self._not()
        while self.at_keyword("and"):
            self.next()
            node = BinOp("and", node, self._not())
        return node

    def _not(self) -> Expr:
        if self.at_keyword("not"):
            self.next()
            return Not(self._not())
        return self._comparison()

    def _comparison(self) -> Expr:
        node = self._additive()
        tok = self.peek()
        if tok is not None and tok.text in ("<", "<=", ">", ">=", "==", "!="):
            self.next()
            node = BinOp(tok.text, node, self._additive())
        return node

    def _additive(self) -> Expr:
        node = self._multiplicative()
        while (tok := self.peek()) is not None and tok.text in ("+", "-"):
            self.next()
            node = BinOp(tok.text, node, self._multiplicative())
        return node

    def _multiplicative(self) -> Expr:
        node = self._unary()
        while (tok := self.peek()) is not None and tok.text in ("*", "/"):
            self.next()
            node = BinOp(tok.text, node, self._unary())
        return node

    def _unary(self) -> Expr:
        tok = self.peek()
        if tok is not None and tok.text == "-":
            self.next()
            return Neg(self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        tok = self.next()
        if tok.kind == "number":
            return Literal(float(tok.text) if "." in tok.text else int(tok.text))
        if tok.kind == "name":
            if tok.text == "bin":
                self.expect("(")
                operand = self.parse_expr()
                self.expect(",")
                lo = self.parse_expr()
                self.expect(",")
                hi = self.parse_expr()
                self.expect(",")
                n = self.parse_expr()
                self.expect(")")
                return Bin(operand, lo, hi, n)
            return Field(tok.text, tok.line, tok.col)
        if tok.text == "(":
            node = self.parse_expr()
            self.expect(")")
            return node
        raise StatsError(f"unexpected token {tok.text!r} at {tok.where()}")


# --------------------------------------------------------------- programs


@dataclass(frozen=True)
class TableProgram:
    """One parsed ``table`` specification."""

    name: str
    condition: Expr | None
    xs: tuple[tuple[str, Expr], ...]
    ys: tuple[tuple[str, Expr, str], ...]

    def fields(self) -> set[str]:
        """All field names the table reads (for validation)."""
        out: set[str] = set()
        if self.condition is not None:
            out |= self.condition.fields()
        for _, expr in self.xs:
            out |= expr.fields()
        for _, expr, _ in self.ys:
            out |= expr.fields()
        return out


def parse_program(text: str) -> list[TableProgram]:
    """Parse a statistics program into table specifications."""
    parser = _Parser(tokenize(text))
    tables: list[TableProgram] = []
    while parser.peek() is not None:
        tables.append(_parse_table(parser))
    if not tables:
        raise StatsError("empty statistics program")
    return tables


def _parse_table(parser: _Parser) -> TableProgram:
    tok = parser.next()
    if tok.text != "table":
        raise StatsError(f"expected 'table' at {tok.where()}, got {tok.text!r}")
    name = ""
    condition: Expr | None = None
    xs: list[tuple[str, Expr]] = []
    ys: list[tuple[str, Expr, str]] = []
    while (tok := parser.peek()) is not None and not (
        tok.kind == "name" and tok.text == "table"
    ):
        key = parser.next()
        if key.kind != "name":
            raise StatsError(f"expected a keyword at {key.where()}, got {key.text!r}")
        parser.expect("=")
        if key.text == "name":
            name = parser.next().text
        elif key.text == "condition":
            parser.expect("(")
            condition = parser.parse_expr()
            parser.expect(")")
        elif key.text == "x":
            parser.expect("(")
            label = _parse_label(parser)
            parser.expect(",")
            xs.append((label, parser.parse_expr()))
            parser.expect(")")
        elif key.text == "y":
            parser.expect("(")
            label = _parse_label(parser)
            parser.expect(",")
            expr = parser.parse_expr()
            parser.expect(",")
            agg_tok = parser.next()
            if agg_tok.text not in AGGREGATES:
                raise StatsError(
                    f"unknown aggregate {agg_tok.text!r} at {agg_tok.where()}; "
                    f"pick one of {AGGREGATES}"
                )
            ys.append((label, expr, agg_tok.text))
            parser.expect(")")
        else:
            raise StatsError(f"unknown table keyword {key.text!r} at {key.where()}")
    if not name:
        raise StatsError("table needs a name")
    if not xs:
        raise StatsError(f"table {name!r} needs at least one x expression")
    if not ys:
        raise StatsError(f"table {name!r} needs at least one y expression")
    return TableProgram(name, condition, tuple(xs), tuple(ys))


def _parse_label(parser: _Parser) -> str:
    tok = parser.next()
    if tok.kind != "string":
        raise StatsError(f"expected a quoted label at {tok.where()}")
    return tok.text[1:-1]
