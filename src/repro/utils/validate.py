"""Interval-file validator.

Checks every structural invariant the format promises, so downstream tools
can trust files from unknown producers:

* header magic/version and profile version match;
* frame directories form a consistent doubly linked list;
* frame entries describe their frames exactly (sizes, counts, time ranges);
* records are in ascending end-time order;
* every record's (node, thread) resolves in the thread table;
* bebits balance per state (no orphan continuations/ends, nothing left
  open), treating zero-duration continuations as the pseudo-interval
  repeats the merge inserts;
* marker records reference marker-table entries.

Returns a report object; the CLI (``ute-validate``) prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.profilefmt import Profile
from repro.core.reader import IntervalReader
from repro.core.records import BeBits, IntervalType
from repro.errors import FormatError


@dataclass
class ValidationReport:
    """Outcome of a validation run."""

    path: Path
    records: int = 0
    frames: int = 0
    directories: int = 0
    pseudo_records: int = 0
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return not self.errors

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"{self.path}: {'OK' if self.ok else 'INVALID'} — "
            f"{self.records} records in {self.frames} frames / "
            f"{self.directories} directories ({self.pseudo_records} pseudo)"
        ]
        lines += [f"  error: {e}" for e in self.errors]
        lines += [f"  warning: {w}" for w in self.warnings]
        return "\n".join(lines)


def validate_interval_file(path: str | Path, profile: Profile) -> ValidationReport:
    """Validate one interval file against ``profile``."""
    report = ValidationReport(Path(path))
    try:
        reader = IntervalReader(path, profile)
    except FormatError as exc:
        report.errors.append(str(exc))
        return report

    # Structure: directory linkage and frame entries.  Iteration itself can
    # hit corruption (bad directory bytes); report and stop scanning.
    prev_offset = -1
    try:
        for directory in reader.directories():
            report.directories += 1
            if directory.prev_offset != prev_offset:
                report.errors.append(
                    f"directory at {directory.offset}: prev pointer "
                    f"{directory.prev_offset} != expected {prev_offset}"
                )
            prev_offset = directory.offset
            for frame in directory.frames:
                report.frames += 1
                try:
                    records = reader.read_frame(frame)
                except FormatError as exc:
                    report.errors.append(str(exc))
                    continue
                if records:
                    lo = min(r.start for r in records)
                    hi = max(r.end for r in records)
                    if lo != frame.start_time or hi != frame.end_time:
                        report.errors.append(
                            f"frame at {frame.offset}: time range "
                            f"[{lo}, {hi}] != entry [{frame.start_time}, {frame.end_time}]"
                        )
    except FormatError as exc:
        report.errors.append(str(exc))
        return report

    # Records: ordering, thread refs, bebits, markers.
    checker = RecordInvariantChecker(reader.thread_table, reader.markers)
    try:
        _scan_records(reader, report, checker)
    except FormatError as exc:
        report.errors.append(str(exc))
        return report
    for key in checker.leftover_open():
        report.warnings.append(f"state left open at end of file: {key}")
    return report


class RecordInvariantChecker:
    """The per-record invariants, factored so the validator and the
    recovery engine judge records identically.

    :meth:`problems` is non-mutating — what errors/warnings would this
    record add given everything accepted so far; :meth:`accept` folds the
    record into the tracked state (ordering watermark, open bebits states,
    pseudo count).  The validator calls both for every record; recovery
    calls ``accept`` only for records with no errors, so whatever it keeps
    replays cleanly through the validator."""

    def __init__(self, thread_table, markers: dict[int, str]) -> None:
        self.thread_table = thread_table
        self.markers = markers
        self.open_states: dict[tuple, int] = {}
        self.last_end: int | None = None
        self.pseudo_records = 0

    @staticmethod
    def state_key(record) -> tuple:
        """The bebits-balance key: (node, thread, type, marker id)."""
        return (
            record.node,
            record.thread,
            record.itype,
            record.extra.get("markerId", 0),
        )

    def problems(self, record) -> tuple[list[str], list[str]]:
        """``(errors, warnings)`` this record would contribute, judged
        against the state accumulated by prior :meth:`accept` calls."""
        errors: list[str] = []
        warnings: list[str] = []
        if self.last_end is not None and record.end < self.last_end:
            errors.append(
                f"record order violation: end {record.end} after {self.last_end}"
            )
        if record.itype != IntervalType.CLOCKPAIR:
            try:
                self.thread_table.lookup(record.node, record.thread)
            except FormatError:
                errors.append(
                    f"record references unknown thread node={record.node} "
                    f"ltid={record.thread}"
                )
        if record.itype == IntervalType.MARKER:
            marker_id = record.extra.get("markerId", 0)
            if marker_id not in self.markers:
                errors.append(
                    f"marker record references unknown marker id {marker_id}"
                )
        key = self.state_key(record)
        if record.bebits is BeBits.BEGIN:
            if self.open_states.get(key):
                errors.append(f"nested begin for state {key}")
        elif record.bebits is BeBits.END:
            if not self.open_states.get(key):
                errors.append(f"end without begin for state {key}")
        elif record.bebits is BeBits.CONTINUATION:
            if record.duration == 0:
                if not self.open_states.get(key):
                    warnings.append(
                        f"pseudo-interval for state {key} that is not open"
                    )
            elif not self.open_states.get(key):
                errors.append(f"orphan continuation for state {key}")
        return errors, warnings

    def accept(self, record) -> None:
        """Fold one record into the tracked state."""
        self.last_end = record.end
        key = self.state_key(record)
        if record.bebits is BeBits.BEGIN:
            self.open_states[key] = 1
        elif record.bebits is BeBits.END:
            self.open_states[key] = 0
        elif record.bebits is BeBits.CONTINUATION and record.duration == 0:
            self.pseudo_records += 1

    def leftover_open(self) -> list[tuple]:
        """State keys still open (warning-level: a trace may legitimately
        end mid-state)."""
        return [k for k, v in self.open_states.items() if v]


def _scan_records(
    reader: IntervalReader, report: ValidationReport, checker: RecordInvariantChecker
) -> None:
    for record in reader.intervals():
        report.records += 1
        errors, warnings = checker.problems(record)
        report.errors.extend(errors)
        report.warnings.extend(warnings)
        checker.accept(record)
    report.pseudo_records = checker.pseudo_records


def validate_files(
    paths: list[str | Path], profile: Profile
) -> list[ValidationReport]:
    """Validate several files; returns one report per file."""
    return [validate_interval_file(p, profile) for p in paths]
