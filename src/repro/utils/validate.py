"""Interval-file validator.

Checks every structural invariant the format promises, so downstream tools
can trust files from unknown producers:

* header magic/version and profile version match;
* frame directories form a consistent doubly linked list;
* frame entries describe their frames exactly (sizes, counts, time ranges);
* records are in ascending end-time order;
* every record's (node, thread) resolves in the thread table;
* bebits balance per state (no orphan continuations/ends, nothing left
  open), treating zero-duration continuations as the pseudo-interval
  repeats the merge inserts;
* marker records reference marker-table entries.

Returns a report object; the CLI (``ute-validate``) prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.profilefmt import Profile
from repro.core.reader import IntervalReader
from repro.core.records import BeBits, IntervalType
from repro.errors import FormatError


@dataclass
class ValidationReport:
    """Outcome of a validation run."""

    path: Path
    records: int = 0
    frames: int = 0
    directories: int = 0
    pseudo_records: int = 0
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return not self.errors

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"{self.path}: {'OK' if self.ok else 'INVALID'} — "
            f"{self.records} records in {self.frames} frames / "
            f"{self.directories} directories ({self.pseudo_records} pseudo)"
        ]
        lines += [f"  error: {e}" for e in self.errors]
        lines += [f"  warning: {w}" for w in self.warnings]
        return "\n".join(lines)


def validate_interval_file(path: str | Path, profile: Profile) -> ValidationReport:
    """Validate one interval file against ``profile``."""
    report = ValidationReport(Path(path))
    try:
        reader = IntervalReader(path, profile)
    except FormatError as exc:
        report.errors.append(str(exc))
        return report

    # Structure: directory linkage and frame entries.  Iteration itself can
    # hit corruption (bad directory bytes); report and stop scanning.
    prev_offset = -1
    try:
        for directory in reader.directories():
            report.directories += 1
            if directory.prev_offset != prev_offset:
                report.errors.append(
                    f"directory at {directory.offset}: prev pointer "
                    f"{directory.prev_offset} != expected {prev_offset}"
                )
            prev_offset = directory.offset
            for frame in directory.frames:
                report.frames += 1
                try:
                    records = reader.read_frame(frame)
                except FormatError as exc:
                    report.errors.append(str(exc))
                    continue
                if records:
                    lo = min(r.start for r in records)
                    hi = max(r.end for r in records)
                    if lo != frame.start_time or hi != frame.end_time:
                        report.errors.append(
                            f"frame at {frame.offset}: time range "
                            f"[{lo}, {hi}] != entry [{frame.start_time}, {frame.end_time}]"
                        )
    except FormatError as exc:
        report.errors.append(str(exc))
        return report

    # Records: ordering, thread refs, bebits, markers.
    open_states: dict[tuple, int] = {}
    try:
        _scan_records(reader, report, open_states)
    except FormatError as exc:
        report.errors.append(str(exc))
        return report
    leftover = [k for k, v in open_states.items() if v]
    for key in leftover:
        report.warnings.append(f"state left open at end of file: {key}")
    return report


def _scan_records(reader: IntervalReader, report: ValidationReport, open_states: dict) -> None:
    last_end: int | None = None
    for record in reader.intervals():
        report.records += 1
        if last_end is not None and record.end < last_end:
            report.errors.append(
                f"record order violation: end {record.end} after {last_end}"
            )
        last_end = record.end
        if record.itype != IntervalType.CLOCKPAIR:
            try:
                reader.thread_table.lookup(record.node, record.thread)
            except FormatError:
                report.errors.append(
                    f"record references unknown thread node={record.node} "
                    f"ltid={record.thread}"
                )
        if record.itype == IntervalType.MARKER:
            marker_id = record.extra.get("markerId", 0)
            if marker_id not in reader.markers:
                report.errors.append(
                    f"marker record references unknown marker id {marker_id}"
                )
        key = (
            record.node,
            record.thread,
            record.itype,
            record.extra.get("markerId", 0),
        )
        if record.bebits is BeBits.BEGIN:
            if open_states.get(key):
                report.errors.append(f"nested begin for state {key}")
            open_states[key] = 1
        elif record.bebits is BeBits.END:
            if not open_states.get(key):
                report.errors.append(f"end without begin for state {key}")
            open_states[key] = 0
        elif record.bebits is BeBits.CONTINUATION:
            if record.duration == 0:
                report.pseudo_records += 1
                if not open_states.get(key):
                    report.warnings.append(
                        f"pseudo-interval for state {key} that is not open"
                    )
            elif not open_states.get(key):
                report.errors.append(f"orphan continuation for state {key}")


def validate_files(
    paths: list[str | Path], profile: Profile
) -> list[ValidationReport]:
    """Validate several files; returns one report per file."""
    return [validate_interval_file(p, profile) for p in paths]
