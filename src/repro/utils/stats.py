"""The statistics generation utility (paper section 3.2).

Reads one or more interval files and generates tables specified in the
declarative language of :mod:`repro.utils.statlang`.  Output tables are
tab-separated-value text, exactly as the paper describes.

Given no user program, the utility generates the paper's pre-defined
tables, including the Figure 6 table: "the sum of the duration of
interesting intervals per node and per 50 equally sized time bins", where an
interesting interval is any state other than the default Running state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.errors import StatsError
from repro.utils.statlang import TableProgram, parse_program

#: Number of time bins in the pre-defined per-bin tables (Figure 6).
PREVIEW_BINS = 50


@dataclass
class StatsTable:
    """One generated table: labels, rows keyed by the x tuple."""

    name: str
    x_labels: tuple[str, ...]
    y_labels: tuple[str, ...]
    rows: dict[tuple, tuple] = field(default_factory=dict)

    def to_tsv(self) -> str:
        """Render as tab-separated values with a header line."""
        lines = ["\t".join(self.x_labels + self.y_labels)]
        for key in sorted(self.rows):
            values = self.rows[key]
            lines.append(
                "\t".join(_fmt(v) for v in key) + "\t" + "\t".join(_fmt(v) for v in values)
            )
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the TSV file; returns its path."""
        path = Path(path)
        path.write_text(self.to_tsv())
        return path

    def column(self, y_label: str) -> dict[tuple, Any]:
        """One dependent column keyed by x tuple (for tests and the viewer)."""
        idx = self.y_labels.index(y_label)
        return {k: v[idx] for k, v in self.rows.items()}


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)


class _Accumulator:
    """Aggregation state for one (row, y) cell."""

    __slots__ = ("agg", "count", "total", "low", "high")

    def __init__(self, agg: str) -> None:
        self.agg = agg
        self.count = 0
        self.total = 0.0
        self.low: float | None = None
        self.high: float | None = None

    def add(self, value: Any) -> None:
        self.count += 1
        if self.agg in ("sum", "avg"):
            self.total += value
        elif self.agg == "min":
            self.low = value if self.low is None else min(self.low, value)
        elif self.agg == "max":
            self.high = value if self.high is None else max(self.high, value)

    def result(self) -> Any:
        if self.agg == "count":
            return self.count
        if self.agg == "sum":
            return self.total
        if self.agg == "avg":
            return self.total / self.count if self.count else 0.0
        if self.agg == "min":
            return self.low if self.low is not None else 0
        return self.high if self.high is not None else 0


def record_env(
    record: IntervalRecord,
    ticks_per_sec: float,
    thread_table=None,
) -> dict[str, Any]:
    """The evaluation environment one record presents to expressions.

    Time fields are exposed in seconds; ``type`` and ``bebits`` are
    synthesized from the record's type word.  With a thread table, ``task``
    (the MPI task id of the record's thread, -1 for non-MPI threads) is
    synthesized too, so tables can aggregate per rank rather than per
    (node, thread).
    """
    env: dict[str, Any] = {
        "start": record.start / ticks_per_sec,
        "dura": record.duration / ticks_per_sec,
        "node": record.node,
        "cpu": record.cpu,
        "thread": record.thread,
        "type": record.itype,
        "bebits": int(record.bebits),
    }
    if thread_table is not None:
        try:
            env["task"] = thread_table.lookup(record.node, record.thread).mpi_task
        except Exception:
            env["task"] = -1
    for name, value in record.extra.items():
        if name == "localStart":
            env[name] = value / ticks_per_sec
        else:
            env[name] = value
    return env


def generate_tables(
    records: Iterable[IntervalRecord],
    programs: Iterable[TableProgram] | str,
    *,
    ticks_per_sec: float = 1e9,
    thread_table=None,
) -> list[StatsTable]:
    """Run table programs over a record stream.

    ``programs`` may be a program string (parsed here) or pre-parsed
    specifications.  Records whose environment lacks a referenced field are
    skipped for that table (different record types carry different fields).
    Pass a ``thread_table`` to make the synthesized ``task`` field
    available in expressions.
    """
    if isinstance(programs, str):
        programs = parse_program(programs)
    programs = list(programs)
    tables = [
        StatsTable(
            p.name,
            tuple(label for label, _ in p.xs),
            tuple(label for label, _, _ in p.ys),
        )
        for p in programs
    ]
    cells: list[dict[tuple, list[_Accumulator]]] = [{} for _ in programs]
    for record in records:
        # One environment per record, shared by every program.
        env = record_env(record, ticks_per_sec, thread_table)
        for p_idx, program in enumerate(programs):
            try:
                if program.condition is not None and not program.condition.eval(env):
                    continue
                key = tuple(expr.eval(env) for _, expr in program.xs)
                values = [expr.eval(env) for _, expr, _ in program.ys]
            except StatsError as exc:
                if "has no field" in str(exc):
                    continue
                raise
            row = cells[p_idx].get(key)
            if row is None:
                row = [_Accumulator(agg) for _, _, agg in program.ys]
                cells[p_idx][key] = row
            for acc, value in zip(row, values):
                acc.add(value)
    for table, cell in zip(tables, cells):
        table.rows = {k: tuple(acc.result() for acc in row) for k, row in cell.items()}
    return tables


def interval_records(
    paths: Iterable[str | Path],
    profile,
    *,
    window: tuple[float | None, float | None] | None = None,
    index: Any = "auto",
    executor: str = "columnar",
    io_log: dict[str, dict] | None = None,
) -> Iterator[IntervalRecord]:
    """Stream records from several interval files (clock pairs dropped).

    ``window`` is (t0, t1) in seconds; when set, frames outside it are
    pruned — through the sidecar index when a fresh one exists, the frame
    directory otherwise — and records are filtered to the window.
    ``executor`` picks how frames decode (see
    :data:`repro.query.engine.EXECUTORS`); both yield identical records.
    Pass a dict as ``io_log`` to collect **per-file** read accounting:
    after the stream is exhausted it maps each path to its reader's
    ``stats()`` (bytes fetched, fetch count, cache hits/misses) plus the
    plan mode and frame counts — every file's numbers, not just the last
    one's.  ``frames_decoded`` there is the cache-miss delta: frames the
    scan really decoded, not what the plan listed.
    """
    from repro.query.columnar import planned_batch_records
    from repro.query.engine import (
        EXECUTORS,
        planned_records,
        resolve_index,
        window_to_ticks,
    )
    from repro.query.model import Query
    from repro.query.planner import plan_query
    from repro.query.trace import open_trace

    if executor not in EXECUTORS:
        raise StatsError(f"unknown executor {executor!r}; pick one of {EXECUTORS}")
    record_stream = planned_records if executor == "record" else planned_batch_records
    for path in paths:
        loaded, reason = resolve_index(path, index)
        with open_trace(path, profile) as handle:
            t0, t1 = window_to_ticks(window, handle.ticks_per_sec)
            query = Query(t0=t0, t1=t1)
            plan = plan_query(query, handle.frames, loaded, index_reason=reason)
            before = handle.stats()
            for record in record_stream(handle, query, plan):
                if record.itype != IntervalType.CLOCKPAIR:
                    yield record
            if io_log is not None:
                after = handle.stats()
                io_log[str(path)] = {
                    **after,
                    "plan": plan.mode,
                    "frames_total": plan.total_frames,
                    "frames_decoded": after["misses"] - before["misses"],
                }


class CombinedThreadTable:
    """Thread lookup across several files' tables (first match wins).

    Pre-merge per-node interval files each carry only their own node's
    threads; stats over several of them needs one lookup surface so the
    synthesized ``task`` field resolves for every record.
    """

    def __init__(self, tables: Iterable[Any]) -> None:
        self.tables = [t for t in tables if t is not None]

    def lookup(self, node: int, logical_tid: int):
        for table in self.tables:
            try:
                return table.lookup(node, logical_tid)
            except Exception:
                continue
        raise StatsError(f"no thread entry for node {node} ltid {logical_tid}")


def source_metadata(
    paths: Iterable[str | Path], profile
) -> tuple[float, CombinedThreadTable]:
    """The tick rate and combined thread table of the stats inputs.

    All inputs must agree on ``ticks_per_sec`` (a 1 MHz file summed with a
    1 GHz file would silently mix units); disagreement raises
    :class:`StatsError`.  Only headers and tables are read — no records.
    """
    from repro.query.trace import open_trace

    rates: dict[float, str] = {}
    tables = []
    for path in paths:
        with open_trace(path, profile) as handle:
            rates.setdefault(handle.ticks_per_sec, str(path))
            tables.append(handle.thread_table)
    if len(rates) > 1:
        described = ", ".join(f"{p}={r:g}" for r, p in sorted(rates.items()))
        raise StatsError(f"inputs disagree on ticks_per_sec: {described}")
    rate = next(iter(rates), 1e9)
    return rate, CombinedThreadTable(tables)


def predefined_tables(
    records: Iterable[IntervalRecord],
    *,
    total_seconds: float,
    ticks_per_sec: float = 1e9,
    bins: int = PREVIEW_BINS,
    thread_table=None,
) -> list[StatsTable]:
    """The utility's pre-defined tables (generated when no user program is
    given), led by the Figure 6 table.

    * ``interesting_by_node_bin`` — sum of interesting-interval duration per
      node per ``bins`` equal time bins (interesting = not Running);
    * ``duration_by_type`` — count / total / average duration per state;
    * ``calls_by_node_type`` — properly counted calls per node per state
      (counting begin and complete pieces only, the bebits' purpose);
    * ``bytes_by_node`` — message bytes sent per node;
    * ``comm_matrix`` (with a thread table) — bytes and messages per
      (sending task, receiving task) pair.
    """
    if total_seconds <= 0:
        raise StatsError(f"total_seconds must be positive, got {total_seconds}")
    program = f"""
table name=interesting_by_node_bin
      condition=(type != {IntervalType.RUNNING})
      x=("node", node)
      x=("bin", bin(start, 0, {total_seconds!r}, {bins}))
      y=("sum(duration)", dura, sum)
table name=duration_by_type
      x=("type", type)
      y=("count", dura, count)
      y=("sum(duration)", dura, sum)
      y=("avg(duration)", dura, avg)
table name=calls_by_node_type
      condition=(bebits == {int(BeBits.COMPLETE)} or bebits == {int(BeBits.BEGIN)})
      x=("node", node)
      x=("type", type)
      y=("calls", dura, count)
table name=bytes_by_node
      condition=(msgSizeSent > 0)
      x=("node", node)
      y=("bytesSent", msgSizeSent, sum)
      y=("messages", msgSizeSent, count)
"""
    if thread_table is not None:
        program += f"""
table name=comm_matrix
      condition=(msgSizeSent > 0 and (bebits == {int(BeBits.COMPLETE)} or bebits == {int(BeBits.BEGIN)}))
      x=("srcTask", task)
      x=("dstTask", peer)
      y=("bytes", msgSizeSent, sum)
      y=("messages", msgSizeSent, count)
"""
    return generate_tables(
        records, program, ticks_per_sec=ticks_per_sec, thread_table=thread_table
    )
