"""The SLOG file format (paper section 4).

SLOG ("scalable log") is the format Jumpshot reads.  It addresses the two
challenges of visualizing huge traces:

* **Rapid access far into the run** — records are divided into frames with a
  time-based frame index, so the frame containing any chosen instant is
  located without reading anything before it.
* **Accurate portrayal at frame boundaries** — frames begin with
  *pseudo-interval* records supplying whatever enclosing-state data is
  needed from other frames.

The file also stores the preview data: per-state time counters accumulated
during construction, with proportional allocation of interval durations to a
fixed number of time bins — what lets Jumpshot draw the whole-run summary
instantly (Figure 7's smaller window).

The record payload encoding reuses the interval-record wire format, and the
describing profile is embedded, so a SLOG file is fully self-contained.
"""

from __future__ import annotations

import io
import shutil
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.atomicio import AtomicFile, temp_path_for
from repro.core.bytesource import ByteSource, open_source
from repro.core.profilefmt import Profile
from repro.core.reader import DEFAULT_FRAME_CACHE
from repro.core.records import IntervalRecord
from repro.core.salvage import (
    SalvageReport,
    check_error_mode,
    salvage_frame_records,
    salvage_stats,
)
from repro.core.threadtable import ThreadTable
from repro.core.writer import (
    decode_marker_table,
    decode_node_table,
    encode_marker_table,
    encode_node_table,
)
from repro.errors import FormatError

MAGIC = b"UTESLOG1"

#: First metadata window fetched by the streaming reader; grown on demand.
_INITIAL_WINDOW = 64 * 1024

#: Exceptions that mean "the metadata did not fit the current window" on a
#: valid file, or "corrupt" once the window covers the whole file.
_PARSE_ERRORS = (
    struct.error,
    IndexError,
    ValueError,
    OverflowError,
    UnicodeDecodeError,
    FormatError,
)

_FRAME_ENTRY = struct.Struct("<QQQQII")  # start, end, offset, size, n_records, n_pseudo


@dataclass(frozen=True)
class SlogFrameEntry:
    """One entry of the time-based frame index."""

    start_time: int
    end_time: int
    offset: int
    size: int
    n_records: int
    n_pseudo: int

    def contains_time(self, t: int) -> bool:
        """Whether instant ``t`` falls in this frame's range."""
        return self.start_time <= t <= self.end_time


class SlogWriter:
    """Builds a SLOG file from an end-time-ordered record stream.

    Maintains the preview state counters while records stream through, and
    closes frames at the configured byte size.  Call :meth:`write` with
    ``pseudo=True`` for pseudo-interval records so they are counted
    separately and excluded from the preview accumulation.
    """

    def __init__(
        self,
        path: str | Path,
        profile: Profile,
        thread_table: ThreadTable,
        *,
        markers: dict[int, str] | None = None,
        node_cpus: dict[int, int] | None = None,
        field_mask: int,
        frame_bytes: int = 32 * 1024,
        time_range: tuple[int, int] = (0, 1),
        preview_bins: int = 50,
        ticks_per_sec: float = 1e9,
    ) -> None:
        if preview_bins < 1:
            raise FormatError("need at least one preview bin")
        t0, t1 = time_range
        if t1 <= t0:
            raise FormatError(f"bad preview time range {time_range}")
        self.path = Path(path)
        self.profile = profile
        self.thread_table = thread_table
        self.markers = dict(markers or {})
        self.node_cpus = dict(node_cpus or {})
        self.field_mask = field_mask
        self.frame_bytes = frame_bytes
        self.time_range = (t0, t1)
        self.preview_bins = preview_bins
        self.ticks_per_sec = ticks_per_sec
        self._bin_width = (t1 - t0) / preview_bins
        # Preview counters: itype -> per-bin accumulated duration (ticks).
        self._counters: dict[int, np.ndarray] = {}
        # Finished frames spill to a sidecar file as they close, so the
        # writer holds one open frame plus the (small) index — O(frame)
        # memory however large the trace.  Index: (start, end, size, n,
        # n_pseudo) per frame.  The spill is named like the other writers'
        # temp siblings, so a crash leaves only recognizably-ignorable
        # artifacts behind.
        self._frames: list[tuple[int, int, int, int, int]] = []
        self._spill_path = temp_path_for(self.path.with_name(self.path.name + ".frames"))
        self._spill: io.BufferedWriter | None = open(self._spill_path, "wb")
        self._buf = bytearray()
        self._buf_records = 0
        self._buf_pseudo = 0
        self._buf_start: int | None = None
        self._buf_end = 0
        self.records_written = 0
        self._closed = False

    # ------------------------------------------------------------------ API

    def write(self, record: IntervalRecord, *, pseudo: bool = False) -> None:
        """Append one record; set ``pseudo`` for pseudo-interval records."""
        if self._closed:
            raise FormatError("SLOG writer already closed")
        if not pseudo:
            self._accumulate_preview(record)
        blob = record.encode(self.profile, self.field_mask)
        self._buf += blob
        self._buf_records += 1
        self._buf_pseudo += int(pseudo)
        self._buf_start = (
            record.start if self._buf_start is None else min(self._buf_start, record.start)
        )
        self._buf_end = max(self._buf_end, record.end)
        self.records_written += 1
        if len(self._buf) >= self.frame_bytes:
            self._finish_frame()

    def close(self) -> Path:
        """Finalize frames, assemble the complete file, return its path.

        The metadata and frame index are written first, then the spilled
        frame bytes are streamed across in chunks — the whole file is never
        materialized in memory.  Assembly happens in a temp sibling that
        atomically replaces the final name, so a crash mid-assembly leaves
        the destination untouched."""
        if self._closed:
            return self.path
        self._finish_frame()
        self._closed = True
        assert self._spill is not None
        self._spill.close()
        self._spill = None
        try:
            with AtomicFile(self.path) as out:
                out.write(self._metadata_bytes())
                with open(self._spill_path, "rb") as frames:
                    shutil.copyfileobj(frames, out)
        finally:
            self._spill_path.unlink(missing_ok=True)
        return self.path

    def abort(self) -> None:
        """Discard everything written so far without touching the final
        name (idempotent; a no-op after close)."""
        if self._closed:
            return
        self._closed = True
        if self._spill is not None:
            self._spill.close()
            self._spill = None
        self._spill_path.unlink(missing_ok=True)

    def __enter__(self) -> "SlogWriter":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    # ------------------------------------------------------------ internals

    def _accumulate_preview(self, record: IntervalRecord) -> None:
        """Proportionally allocate a record's duration to the time bins."""
        counters = self._counters.get(record.itype)
        if counters is None:
            counters = np.zeros(self.preview_bins, dtype=np.float64)
            self._counters[record.itype] = counters
        t0, t1 = self.time_range
        lo = max(record.start, t0)
        hi = min(record.end, t1)
        if hi <= lo:
            return
        first = int((lo - t0) / self._bin_width)
        last = min(int((hi - t0) / self._bin_width), self.preview_bins - 1)
        for b in range(first, last + 1):
            bin_lo = t0 + b * self._bin_width
            bin_hi = bin_lo + self._bin_width
            counters[b] += max(0.0, min(hi, bin_hi) - max(lo, bin_lo))

    def _finish_frame(self) -> None:
        if not self._buf_records:
            return
        assert self._buf_start is not None and self._spill is not None
        self._spill.write(self._buf)
        self._frames.append(
            (self._buf_start, self._buf_end, len(self._buf), self._buf_records, self._buf_pseudo)
        )
        self._buf = bytearray()
        self._buf_records = 0
        self._buf_pseudo = 0
        self._buf_start = None
        self._buf_end = 0

    def _metadata_bytes(self) -> bytes:
        """Everything before the frame data: tables, preview, frame index."""
        return slog_metadata_bytes(
            self.profile,
            self.thread_table,
            markers=self.markers,
            node_cpus=self.node_cpus,
            field_mask=self.field_mask,
            ticks_per_sec=self.ticks_per_sec,
            time_range=self.time_range,
            preview_bins=self.preview_bins,
            counters=self._counters,
            frames=self._frames,
        )


def slog_metadata_bytes(
    profile: Profile,
    thread_table: ThreadTable,
    *,
    markers: dict[int, str],
    node_cpus: dict[int, int],
    field_mask: int,
    ticks_per_sec: float,
    time_range: tuple[int, int],
    preview_bins: int,
    counters: dict[int, np.ndarray],
    frames: list[tuple[int, int, int, int, int]],
) -> bytes:
    """A SLOG file's metadata section: tables, preview, frame index.

    ``frames`` holds ``(start, end, size, n_records, n_pseudo)`` per frame
    in file order; frame-index offsets are computed so the frame data
    follows the metadata contiguously.  Shared by :class:`SlogWriter` and
    the live container, whose growing files carry a zero-frame metadata
    prefix in exactly this encoding.
    """
    out = bytearray()
    out += MAGIC
    profile_blob = _profile_blob(profile)
    out += struct.pack("<I", len(profile_blob)) + profile_blob
    table_blob = thread_table.encode()
    out += struct.pack("<I", len(thread_table)) + table_blob
    marker_blob = encode_marker_table(markers)
    out += struct.pack("<I", len(markers)) + marker_blob
    node_blob = encode_node_table(node_cpus)
    out += struct.pack("<I", len(node_cpus)) + node_blob
    out += struct.pack("<QdQQ", field_mask, ticks_per_sec, *time_range)
    # Preview.
    out += struct.pack("<II", preview_bins, len(counters))
    for itype in sorted(counters):
        out += struct.pack("<I", itype)
        out += np.asarray(counters[itype], dtype=np.float64).tobytes()
    # Frame index; frame data follows at data_start in spill order.
    out += struct.pack("<I", len(frames))
    offset = len(out) + len(frames) * _FRAME_ENTRY.size
    for start, end, size, n, n_pseudo in frames:
        out += _FRAME_ENTRY.pack(start, end, offset, size, n, n_pseudo)
        offset += size
    return bytes(out)


def _profile_blob(profile: Profile) -> bytes:
    """The profile serialized exactly as its standalone file."""
    import zlib

    body = profile._body_bytes()
    return b"UTEPROF1" + struct.pack("<I", zlib.crc32(body)) + body


class SlogFile:
    """Reader for SLOG files: preview, frame index, and frame records.

    Bytes come from a bounded-memory :class:`ByteSource`.  The metadata
    (tables, preview, frame index) is parsed from a window at the head of
    the file that starts at ``_INITIAL_WINDOW`` and grows geometrically
    until the metadata fits, so a valid file costs O(metadata) memory no
    matter how large its frame data is.  Frame reads fetch exactly one
    frame and are cached in a small LRU keyed by (offset, size) —
    Jumpshot's scroll-back pattern revisits neighbouring frames
    constantly, and a hit skips both the fetch and the decode.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        source: ByteSource | None = None,
        mode: str = "auto",
        cache_frames: int = DEFAULT_FRAME_CACHE,
        errors: str = "strict",
    ) -> None:
        self.path = Path(path)
        self._salvage_mode = check_error_mode(errors)
        self.salvage: SalvageReport | None = (
            SalvageReport(path=self.path) if self._salvage_mode else None
        )
        self.source: ByteSource = source if source is not None else open_source(self.path, mode)
        self._cache_frames = max(0, cache_frames)
        self._frame_cache: OrderedDict[tuple[int, int], list[IntervalRecord]] = OrderedDict()
        # Columnar batches cache separately from record-object frames.
        self._batch_cache: OrderedDict[tuple[int, int], object] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        # Optional admission governor (set by a Repository sharing one
        # memory budget across readers): reserve(nbytes) is called before
        # a cache miss decodes, commit(nbytes) after the insert settles.
        # Never invoked while _cache_lock is held — the governor may take
        # other readers' cache locks to make room.
        self.cache_governor = None
        # Serializes frame reads so one SlogFile can back many concurrent
        # server requests: both the LRU mutation and the byte source's
        # chunk cache need exclusion.
        self._cache_lock = threading.Lock()
        head = self.source.fetch(0, 8)
        if head != MAGIC:
            raise FormatError(f"{self.path}: not a SLOG file")
        window = min(max(_INITIAL_WINDOW, 8), len(self.source))
        while True:
            data = self.source.fetch(0, window)
            try:
                self._parse(data)
                break
            except _PARSE_ERRORS as exc:
                if window >= len(self.source):
                    raise FormatError(
                        f"{self.path}: corrupt SLOG structure ({exc})"
                    ) from exc
                window = min(window * 4, len(self.source))

    def close(self) -> None:
        """Release the underlying byte source and drop cached frames."""
        self._frame_cache.clear()
        self._batch_cache.clear()
        self.source.close()

    def __enter__(self) -> "SlogFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _parse(self, data: bytes) -> None:
        pos = 8
        (plen,) = struct.unpack_from("<I", data, pos)
        pos += 4
        self.profile = _profile_from_blob(data[pos : pos + plen])
        pos += plen
        (n_threads,) = struct.unpack_from("<I", data, pos)
        pos += 4
        self.thread_table, pos = ThreadTable.decode(data, pos, n_threads)
        (n_markers,) = struct.unpack_from("<I", data, pos)
        pos += 4
        self.markers, pos = decode_marker_table(data, pos, n_markers)
        (n_nodes,) = struct.unpack_from("<I", data, pos)
        pos += 4
        self.node_cpus, pos = decode_node_table(data, pos, n_nodes)
        self.field_mask, self.ticks_per_sec, t0, t1 = struct.unpack_from("<QdQQ", data, pos)
        pos += struct.calcsize("<QdQQ")
        self.time_range = (t0, t1)
        bins, n_states = struct.unpack_from("<II", data, pos)
        pos += 8
        self.preview_bins = bins
        self.preview: dict[int, np.ndarray] = {}
        for _ in range(n_states):
            (itype,) = struct.unpack_from("<I", data, pos)
            pos += 4
            arr = np.frombuffer(data, dtype=np.float64, count=bins, offset=pos).copy()
            pos += bins * 8
            self.preview[itype] = arr
        (n_frames,) = struct.unpack_from("<I", data, pos)
        pos += 4
        self.frames: list[SlogFrameEntry] = []
        for _ in range(n_frames):
            vals = _FRAME_ENTRY.unpack_from(data, pos)
            pos += _FRAME_ENTRY.size
            self.frames.append(SlogFrameEntry(*vals))

    def find_frame(self, t: int) -> SlogFrameEntry | None:
        """Locate the frame containing instant ``t`` via the index alone."""
        for frame in self.frames:
            if frame.contains_time(t):
                return frame
        return None

    def read_frame(self, frame: SlogFrameEntry) -> list[IntervalRecord]:
        """Decode one frame's records (pseudo-intervals included).

        Results are LRU-cached; a cached frame is returned as a fresh list
        but the record objects are shared, so treat them as read-only.
        Thread-safe: concurrent callers sharing this file serialize on an
        internal lock."""
        key = (frame.offset, frame.size)
        with self._cache_lock:
            cached = self._frame_cache.get(key)
            if cached is not None:
                self._frame_cache.move_to_end(key)
                self.cache_hits += 1
                return list(cached)
        governor = self.cache_governor if self._cache_frames else None
        if governor is not None:
            governor.reserve(frame.size)
        try:
            with self._cache_lock:
                cached = self._frame_cache.get(key)
                if cached is not None:  # raced with another decoder
                    self._frame_cache.move_to_end(key)
                    self.cache_hits += 1
                    return list(cached)
                self.cache_misses += 1
                records = self._decode_frame(frame)
                if self._cache_frames:
                    self._frame_cache[key] = records
                    while len(self._frame_cache) > self._cache_frames:
                        self._frame_cache.popitem(last=False)
                        self.cache_evictions += 1
                return list(records)
        finally:
            if governor is not None:
                governor.commit(frame.size)

    def stats(self) -> dict[str, int]:
        """Cache and IO accounting in the shared stats shape:
        ``{"hits", "misses", "evictions", "fetch_count", "bytes_fetched"}``,
        extended with ``resident_bytes`` (see :meth:`resident_bytes`) and
        the salvage counters (zero in strict mode)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "resident_bytes": self.resident_bytes(),
            **self.source.stats(),
            **salvage_stats(self.salvage),
        }

    def resident_bytes(self) -> int:
        """Encoded bytes of the frames currently cached (record + batch
        caches).  Cache keys are ``(offset, size)``, so the resident
        footprint falls straight out of them — this is the number a
        multi-session memory budget aggregates."""
        with self._cache_lock:
            return sum(k[1] for k in self._frame_cache) + sum(
                k[1] for k in self._batch_cache
            )

    def cached_frames(self) -> int:
        """Entries currently held across both frame caches."""
        with self._cache_lock:
            return len(self._frame_cache) + len(self._batch_cache)

    def shrink_cache(self, max_bytes: int) -> int:
        """Evict least-recently-used cached frames until the resident
        footprint is at most ``max_bytes``; returns the number of entries
        dropped.  Each drop counts as a cache eviction."""
        dropped = 0
        with self._cache_lock:
            resident = sum(k[1] for k in self._frame_cache) + sum(
                k[1] for k in self._batch_cache
            )
            while resident > max_bytes and (self._frame_cache or self._batch_cache):
                # Evict from whichever cache holds the older entry; with no
                # cross-cache timestamps, alternate by preferring the record
                # cache (the batch cache backs the hot columnar path).
                cache = self._frame_cache if self._frame_cache else self._batch_cache
                key, _ = cache.popitem(last=False)
                resident -= key[1]
                self.cache_evictions += 1
                dropped += 1
        return dropped

    def read_frame_batch(self, frame: SlogFrameEntry):
        """Decode one frame into a columnar :class:`~repro.query.columnar.
        FrameBatch` (LRU-cached separately from record-object frames).

        Strict mode decodes straight from a zero-copy byte-source view; in
        salvage mode the resynchronizing record decoder runs first and the
        batch mirrors its output.  Cache hits/misses share the reader's
        counters."""
        from repro.query.columnar import batch_from_records, decode_frame_batch

        key = (frame.offset, frame.size)
        with self._cache_lock:
            cached = self._batch_cache.get(key)
            if cached is not None:
                self._batch_cache.move_to_end(key)
                self.cache_hits += 1
                return cached
        governor = self.cache_governor if self._cache_frames else None
        if governor is not None:
            governor.reserve(frame.size)
        try:
            return self._read_frame_batch_miss(frame, key)
        finally:
            if governor is not None:
                governor.commit(frame.size)

    def _read_frame_batch_miss(self, frame: SlogFrameEntry, key: tuple[int, int]):
        from repro.query.columnar import batch_from_records, decode_frame_batch

        with self._cache_lock:
            cached = self._batch_cache.get(key)
            if cached is not None:  # raced with another decoder
                self._batch_cache.move_to_end(key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
            if self._salvage_mode:
                batch = batch_from_records(self._decode_frame(frame))
            else:
                view = self.source.view(frame.offset, frame.size)
                try:
                    size_read = len(view)
                    if size_read != frame.size:
                        raise FormatError(
                            f"{self.path}: SLOG frame at {frame.offset} runs "
                            "past end of file"
                        )
                    try:
                        batch = decode_frame_batch(view, self.profile, self.field_mask)
                    except (struct.error, IndexError, ValueError, OverflowError) as exc:
                        raise FormatError(
                            f"{self.path}: corrupt SLOG record in frame at "
                            f"offset {frame.offset} ({exc})"
                        ) from exc
                finally:
                    view.release()
                if batch.n != frame.n_records:
                    raise FormatError(
                        f"SLOG frame at {frame.offset}: {batch.n} records, "
                        f"index says {frame.n_records}"
                    )
            if self._cache_frames:
                self._batch_cache[key] = batch
                while len(self._batch_cache) > self._cache_frames:
                    self._batch_cache.popitem(last=False)
                    self.cache_evictions += 1
            return batch

    def salvage_frame(
        self, frame: SlogFrameEntry
    ) -> tuple[list[IntervalRecord], SalvageReport]:
        """Probe one frame in salvage fashion regardless of the reader's
        configured mode, into a *fresh* report.

        The serving daemon uses this after a strict decode fails, to build
        the structured error payload (what exactly is damaged, how many
        records survive) without flipping the whole reader into salvage
        mode or polluting its counters.  Thread-safe; does not touch the
        frame cache."""
        report = SalvageReport(path=self.path)
        with self._cache_lock:
            blob = self.source.fetch(frame.offset, frame.size)
        records = salvage_frame_records(
            blob,
            self.profile,
            self.field_mask,
            base_offset=frame.offset,
            report=report,
            expected_records=frame.n_records,
            expected_size=frame.size,
            time_span=(frame.start_time, frame.end_time),
        )
        if not records and frame.n_records:
            report.frames_quarantined += 1
        return records, report

    def _decode_frame(self, frame: SlogFrameEntry) -> list[IntervalRecord]:
        blob = self.source.fetch(frame.offset, frame.size)
        if self._salvage_mode:
            assert self.salvage is not None
            records = salvage_frame_records(
                blob,
                self.profile,
                self.field_mask,
                base_offset=frame.offset,
                report=self.salvage,
                expected_records=frame.n_records,
                expected_size=frame.size,
                time_span=(frame.start_time, frame.end_time),
            )
            if not records and frame.n_records:
                self.salvage.frames_quarantined += 1
            return records
        if len(blob) != frame.size:
            raise FormatError(
                f"{self.path}: SLOG frame at {frame.offset} runs past end of file"
            )
        records = []
        pos = 0
        while pos < len(blob):
            try:
                record, pos = IntervalRecord.decode(
                    blob, pos, self.profile, self.field_mask
                )
            except (struct.error, IndexError, ValueError, OverflowError) as exc:
                raise FormatError(
                    f"{self.path}: corrupt SLOG record at offset "
                    f"{frame.offset + pos} ({exc})"
                ) from exc
            records.append(record)
        if len(records) != frame.n_records:
            raise FormatError(
                f"SLOG frame at {frame.offset}: {len(records)} records, "
                f"index says {frame.n_records}"
            )
        return records

    def records(self) -> list[IntervalRecord]:
        """Every record in the file, frame by frame."""
        out = []
        for frame in self.frames:
            out.extend(self.read_frame(frame))
        return out

    def preview_matrix(self) -> tuple[list[int], np.ndarray]:
        """(state types, bins×states duration matrix in seconds)."""
        itypes = sorted(self.preview)
        if not itypes:
            return [], np.zeros((self.preview_bins, 0))
        matrix = np.stack([self.preview[i] for i in itypes], axis=1) / self.ticks_per_sec
        return itypes, matrix


def _profile_from_blob(blob: bytes) -> Profile:
    """Reconstruct a Profile from its embedded serialized form."""
    import tempfile

    with tempfile.NamedTemporaryFile(suffix=".ute", delete=False) as fh:
        fh.write(blob)
        temp = fh.name
    try:
        return Profile.read(temp)
    finally:
        Path(temp).unlink(missing_ok=True)


def slog_from_interval_file(
    merged_path: str | Path,
    profile: Profile,
    slog_path: str | Path,
    *,
    frame_bytes: int = 32 * 1024,
    preview_bins: int = 50,
) -> Path:
    """Build a SLOG file from an already-merged interval file."""
    from repro.core.reader import IntervalReader
    from repro.core.records import IntervalType
    from repro.utils.merge import _OpenStateTracker

    with IntervalReader(merged_path, profile) as reader:
        _, _, t_end = reader.totals()
        # The writer context aborts on exception: a failure mid-build (a
        # corrupt merged file, a full disk) leaves no half-written SLOG.
        with SlogWriter(
            slog_path,
            profile,
            reader.thread_table,
            markers=reader.markers,
            node_cpus=reader.node_cpus,
            field_mask=reader.header.field_mask,
            frame_bytes=frame_bytes,
            time_range=(0, max(t_end, 1)),
            preview_bins=preview_bins,
        ) as writer:
            tracker = _OpenStateTracker()
            last_end = 0
            started = False
            for record in reader.intervals():
                if record.itype == IntervalType.CLOCKPAIR:
                    continue
                if started and writer._buf_records == 0:
                    for pseudo in tracker.pseudo_records(last_end):
                        writer.write(pseudo, pseudo=True)
                writer.write(record)
                tracker.observe(record)
                last_end = record.end
                started = True
            return writer.close()
