"""Textual dumps of trace artifacts (the debugging workhorse).

``ute-dump`` prints raw trace files, interval files, or SLOG files as
human-readable text — one line per record, with all fields named through
the description profile.  The interval-file path demonstrates the
self-defining format's promise: the dumper has no per-type code at all; it
learns every record layout from the profile.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.core.profilefmt import Profile
from repro.core.reader import IntervalReader
from repro.core.records import IntervalRecord
from repro.errors import FormatError
from repro.tracing.rawfile import RawTraceReader


def dump_raw(path: str | Path, *, limit: int | None = None) -> Iterator[str]:
    """Lines describing a raw trace file."""
    reader = RawTraceReader(path)
    header = reader.header
    yield (
        f"# raw trace node={header.node_id} cpus={header.n_cpus} "
        f"base_local_ts={header.base_local_ts}"
    )
    for i, event in enumerate(reader):
        if limit is not None and i >= limit:
            yield f"# ... truncated at {limit} events"
            return
        args = " ".join(str(a) for a in event.args)
        text = f" {event.text!r}" if event.text else ""
        yield (
            f"{event.local_ts:>14} {event.name:<24} tid={event.system_tid} "
            f"cpu={event.cpu}{(' args=' + args) if args else ''}{text}"
        )


def format_record(record: IntervalRecord, profile: Profile) -> str:
    """One interval record as a labeled text line."""
    try:
        name = profile.record_name(record.itype)
    except FormatError:
        name = f"type{record.itype}"
    extras = " ".join(f"{k}={v}" for k, v in sorted(record.extra.items()))
    return (
        f"{record.start:>14} +{record.duration:<10} {name:<16} "
        f"[{record.bebits.name.lower():<12}] n{record.node} cpu{record.cpu} "
        f"t{record.thread}{(' ' + extras) if extras else ''}"
    )


def dump_interval(
    path: str | Path, profile: Profile, *, limit: int | None = None
) -> Iterator[str]:
    """Lines describing an interval file: header, tables, then records."""
    reader = IntervalReader(path, profile)
    header = reader.header
    count, first, last = reader.totals()
    yield (
        f"# interval file profile={header.profile_version:#010x} "
        f"mask={header.field_mask:#x} records={count} "
        f"span=[{first}, {last}] ticks"
    )
    yield f"# threads ({len(reader.thread_table)}):"
    for entry in reader.thread_table:
        yield (
            f"#   n{entry.node} ltid={entry.logical_tid} task={entry.mpi_task} "
            f"pid={entry.pid} stid={entry.system_tid} "
            f"type={entry.thread_type} {entry.name!r}"
        )
    if reader.markers:
        yield f"# markers ({len(reader.markers)}):"
        for marker_id, text in sorted(reader.markers.items()):
            yield f"#   {marker_id} = {text!r}"
    if reader.node_cpus:
        yield f"# nodes: " + ", ".join(
            f"n{n}:{c}cpus" for n, c in sorted(reader.node_cpus.items())
        )
    for i, record in enumerate(reader.intervals()):
        if limit is not None and i >= limit:
            yield f"# ... truncated at {limit} records"
            return
        yield format_record(record, profile)


def dump_slog(path: str | Path, *, limit: int | None = None) -> Iterator[str]:
    """Lines describing a SLOG file: frame index, preview summary, records."""
    from repro.utils.slog import SlogFile

    slog = SlogFile(path)
    yield (
        f"# SLOG frames={len(slog.frames)} threads={len(slog.thread_table)} "
        f"time_range={slog.time_range} bins={slog.preview_bins}"
    )
    for i, frame in enumerate(slog.frames):
        yield (
            f"# frame {i}: [{frame.start_time}, {frame.end_time}] "
            f"{frame.n_records} records ({frame.n_pseudo} pseudo) "
            f"@{frame.offset}+{frame.size}"
        )
    emitted = 0
    for frame in slog.frames:
        for record in slog.read_frame(frame):
            if limit is not None and emitted >= limit:
                yield f"# ... truncated at {limit} records"
                return
            yield format_record(record, slog.profile)
            emitted += 1


def dump_any(
    path: str | Path, profile: Profile, *, limit: int | None = None
) -> Iterator[str]:
    """Dispatch on the file's magic bytes."""
    magic = Path(path).open("rb").read(8)
    if magic == b"UTERAW1\x00":
        yield from dump_raw(path, limit=limit)
    elif magic == b"UTEIVL1\x00":
        yield from dump_interval(path, profile, limit=limit)
    elif magic == b"UTESLOG1":
        yield from dump_slog(path, limit=limit)
    else:
        raise FormatError(f"{path}: unrecognized magic {magic!r}")
