"""Textual dumps of trace artifacts (the debugging workhorse).

``ute-dump`` prints raw trace files, interval files, or SLOG files as
human-readable text — one line per record, with all fields named through
the description profile.  The interval-file path demonstrates the
self-defining format's promise: the dumper has no per-type code at all; it
learns every record layout from the profile.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.core.profilefmt import Profile
from repro.core.reader import IntervalReader
from repro.core.records import IntervalRecord
from repro.core.windows import overlaps_window, window_to_ticks
from repro.errors import FormatError
from repro.tracing.rawfile import RawTraceReader


def dump_raw(path: str | Path, *, limit: int | None = None) -> Iterator[str]:
    """Lines describing a raw trace file."""
    reader = RawTraceReader(path)
    header = reader.header
    yield (
        f"# raw trace node={header.node_id} cpus={header.n_cpus} "
        f"base_local_ts={header.base_local_ts}"
    )
    for i, event in enumerate(reader):
        if limit is not None and i >= limit:
            yield f"# ... truncated at {limit} events"
            return
        args = " ".join(str(a) for a in event.args)
        text = f" {event.text!r}" if event.text else ""
        yield (
            f"{event.local_ts:>14} {event.name:<24} tid={event.system_tid} "
            f"cpu={event.cpu}{(' args=' + args) if args else ''}{text}"
        )


def format_record(record: IntervalRecord, profile: Profile) -> str:
    """One interval record as a labeled text line."""
    try:
        name = profile.record_name(record.itype)
    except FormatError:
        name = f"type{record.itype}"
    extras = " ".join(f"{k}={v}" for k, v in sorted(record.extra.items()))
    return (
        f"{record.start:>14} +{record.duration:<10} {name:<16} "
        f"[{record.bebits.name.lower():<12}] n{record.node} cpu{record.cpu} "
        f"t{record.thread}{(' ' + extras) if extras else ''}"
    )


def _select_frames(frames, frame: int | None, window_ticks, path) -> list:
    """The frame entries a seek-limited dump decodes — chosen from the
    frame directory alone, before any record bytes are touched."""
    frames = list(frames)
    if frame is not None:
        if not 0 <= frame < len(frames):
            raise FormatError(
                f"{path}: frame {frame} out of range 0..{len(frames) - 1}"
            )
        frames = [frames[frame]]
    if window_ticks is not None:
        t0, t1 = window_ticks
        frames = [
            f for f in frames if overlaps_window(f.start_time, f.end_time, t0, t1)
        ]
    return frames


def _in_window(record: IntervalRecord, window_ticks) -> bool:
    if window_ticks is None:
        return True
    t0, t1 = window_ticks
    return overlaps_window(record.start, record.end, t0, t1)


def _window_ticks(window, ticks_per_sec: float):
    if window is None:
        return None
    return window_to_ticks(window, ticks_per_sec)


def dump_interval(
    path: str | Path,
    profile: Profile,
    *,
    limit: int | None = None,
    frame: int | None = None,
    window: tuple[float | None, float | None] | None = None,
) -> Iterator[str]:
    """Lines describing an interval file: header, tables, then records.

    ``frame`` restricts the dump to one frame by ordinal; ``window`` (in
    seconds) to the frames overlapping a time range — both seek via the
    frame directory, decoding only the selected frames.
    """
    reader = IntervalReader(path, profile)
    header = reader.header
    count, first, last = reader.totals()
    yield (
        f"# interval file profile={header.profile_version:#010x} "
        f"mask={header.field_mask:#x} records={count} "
        f"span=[{first}, {last}] ticks"
    )
    yield f"# threads ({len(reader.thread_table)}):"
    for entry in reader.thread_table:
        yield (
            f"#   n{entry.node} ltid={entry.logical_tid} task={entry.mpi_task} "
            f"pid={entry.pid} stid={entry.system_tid} "
            f"type={entry.thread_type} {entry.name!r}"
        )
    if reader.markers:
        yield f"# markers ({len(reader.markers)}):"
        for marker_id, text in sorted(reader.markers.items()):
            yield f"#   {marker_id} = {text!r}"
    if reader.node_cpus:
        yield f"# nodes: " + ", ".join(
            f"n{n}:{c}cpus" for n, c in sorted(reader.node_cpus.items())
        )
    ticks = _window_ticks(window, header.ticks_per_sec)
    frames = _select_frames(reader.frames(), frame, ticks, path)
    if frame is not None or window is not None:
        yield f"# selection: {len(frames)} frame(s)"
    emitted = 0
    for entry in frames:
        for record in reader.read_frame(entry):
            if not _in_window(record, ticks):
                continue
            if limit is not None and emitted >= limit:
                yield f"# ... truncated at {limit} records"
                return
            yield format_record(record, profile)
            emitted += 1


def dump_slog(
    path: str | Path,
    *,
    limit: int | None = None,
    frame: int | None = None,
    window: tuple[float | None, float | None] | None = None,
) -> Iterator[str]:
    """Lines describing a SLOG file: frame index, preview summary, records.

    ``frame`` / ``window`` seek via the flat frame index, like
    :func:`dump_interval` does via the frame directory.
    """
    from repro.utils.slog import SlogFile

    slog = SlogFile(path)
    yield (
        f"# SLOG frames={len(slog.frames)} threads={len(slog.thread_table)} "
        f"time_range={slog.time_range} bins={slog.preview_bins}"
    )
    for i, entry in enumerate(slog.frames):
        yield (
            f"# frame {i}: [{entry.start_time}, {entry.end_time}] "
            f"{entry.n_records} records ({entry.n_pseudo} pseudo) "
            f"@{entry.offset}+{entry.size}"
        )
    ticks = _window_ticks(window, slog.ticks_per_sec)
    frames = _select_frames(slog.frames, frame, ticks, path)
    if frame is not None or window is not None:
        yield f"# selection: {len(frames)} frame(s)"
    emitted = 0
    for entry in frames:
        for record in slog.read_frame(entry):
            if not _in_window(record, ticks):
                continue
            if limit is not None and emitted >= limit:
                yield f"# ... truncated at {limit} records"
                return
            yield format_record(record, slog.profile)
            emitted += 1


def dump_any(
    path: str | Path,
    profile: Profile,
    *,
    limit: int | None = None,
    frame: int | None = None,
    window: tuple[float | None, float | None] | None = None,
) -> Iterator[str]:
    """Dispatch on the file's magic bytes."""
    magic = Path(path).open("rb").read(8)
    if magic == b"UTERAW1\x00":
        if frame is not None or window is not None:
            raise FormatError(
                f"{path}: raw trace files have no frame directory; "
                "--frame/--window need an interval or SLOG file"
            )
        yield from dump_raw(path, limit=limit)
    elif magic == b"UTEIVL1\x00":
        yield from dump_interval(
            path, profile, limit=limit, frame=frame, window=window
        )
    elif magic == b"UTESLOG1":
        yield from dump_slog(path, limit=limit, frame=frame, window=window)
    else:
        raise FormatError(f"{path}: unrecognized magic {magic!r}")
