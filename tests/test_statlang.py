"""Tests for the statistics table language: lexer, parser, evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatsError
from repro.utils.statlang import (
    Bin,
    BinOp,
    Field,
    Literal,
    TableProgram,
    parse_program,
    tokenize,
)

PAPER_EXAMPLE = """
table name=sample condition=(start < 2)
      x=("node", node) x=("processor", cpu)
      y=("avg(duration)", dura, avg)
"""


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize('table name=t x=("a", node)')
        kinds = [t.kind for t in tokens]
        assert kinds == ["name", "name", "op", "name", "name", "op", "op",
                         "string", "op", "name", "op"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 .75 100")
        assert [t.text for t in tokens] == ["1", "2.5", ".75", "100"]

    def test_operators(self):
        tokens = tokenize("<= >= == != < > + - * /")
        assert [t.text for t in tokens] == ["<=", ">=", "==", "!=", "<", ">",
                                            "+", "-", "*", "/"]

    def test_unknown_character_rejected(self):
        with pytest.raises(StatsError, match="unexpected character"):
            tokenize("table @ x")


class TestParser:
    def test_paper_example(self):
        (table,) = parse_program(PAPER_EXAMPLE)
        assert table.name == "sample"
        assert table.x_labels() if hasattr(table, "x_labels") else True
        assert [label for label, _ in table.xs] == ["node", "processor"]
        assert [(label, agg) for label, _, agg in table.ys] == [("avg(duration)", "avg")]
        assert isinstance(table.condition, BinOp)
        assert table.condition.op == "<"

    def test_multiple_tables(self):
        program = """
        table name=a x=("n", node) y=("c", dura, count)
        table name=b x=("t", thread) y=("s", dura, sum)
        """
        tables = parse_program(program)
        assert [t.name for t in tables] == ["a", "b"]

    def test_condition_optional(self):
        (table,) = parse_program('table name=t x=("n", node) y=("c", dura, count)')
        assert table.condition is None

    def test_missing_name_rejected(self):
        with pytest.raises(StatsError, match="needs a name"):
            parse_program('table x=("n", node) y=("c", dura, count)')

    def test_missing_x_rejected(self):
        with pytest.raises(StatsError, match="at least one x"):
            parse_program('table name=t y=("c", dura, count)')

    def test_missing_y_rejected(self):
        with pytest.raises(StatsError, match="at least one y"):
            parse_program('table name=t x=("n", node)')

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(StatsError, match="unknown aggregate"):
            parse_program('table name=t x=("n", node) y=("c", dura, median)')

    def test_unquoted_label_rejected(self):
        with pytest.raises(StatsError, match="quoted label"):
            parse_program("table name=t x=(n, node) y=(c, dura, count)")

    def test_empty_program_rejected(self):
        with pytest.raises(StatsError, match="empty"):
            parse_program("   ")

    def test_fields_collected(self):
        (table,) = parse_program(
            'table name=t condition=(start < 2 and type == 1) '
            'x=("n", node) y=("s", dura * 2, sum)'
        )
        assert table.fields() == {"start", "type", "node", "dura"}


class TestExpressionEvaluation:
    ENV = {"start": 1.5, "dura": 0.25, "node": 2, "cpu": 1, "type": 7}

    def eval_expr(self, text):
        (table,) = parse_program(f'table name=t x=("v", {text}) y=("c", dura, count)')
        return table.xs[0][1].eval(self.ENV)

    def test_arithmetic(self):
        assert self.eval_expr("1 + 2 * 3") == 7
        assert self.eval_expr("(1 + 2) * 3") == 9
        assert self.eval_expr("10 / 4") == 2.5
        assert self.eval_expr("7 - 2 - 1") == 4  # left associative

    def test_unary_minus(self):
        assert self.eval_expr("-node") == -2
        assert self.eval_expr("3 - -2") == 5

    def test_comparisons(self):
        assert self.eval_expr("start < 2") is True
        assert self.eval_expr("start >= 2") is False
        assert self.eval_expr("node == 2") is True
        assert self.eval_expr("node != 2") is False

    def test_boolean_logic(self):
        assert self.eval_expr("start < 2 and node == 2") is True
        assert self.eval_expr("start < 1 or node == 2") is True
        assert self.eval_expr("not (node == 2)") is False

    def test_field_lookup(self):
        assert self.eval_expr("dura") == 0.25

    def test_unknown_field_raises(self):
        (table,) = parse_program('table name=t x=("v", bogus) y=("c", dura, count)')
        with pytest.raises(StatsError, match="no field"):
            table.xs[0][1].eval(self.ENV)

    def test_division_by_zero_reported(self):
        with pytest.raises(StatsError, match="division by zero"):
            self.eval_expr("1 / (node - 2)")

    def test_bin_function(self):
        assert self.eval_expr("bin(start, 0, 3, 3)") == 1
        assert self.eval_expr("bin(start, 0, 2, 50)") == 37

    def test_bin_clamps(self):
        assert self.eval_expr("bin(start, 0, 1, 10)") == 9
        assert self.eval_expr("bin(start - 10, 0, 1, 10)") == 0

    def test_bad_bin_parameters(self):
        with pytest.raises(StatsError, match="bad bin"):
            self.eval_expr("bin(start, 5, 5, 10)")

    @given(
        a=st.floats(min_value=-100, max_value=100),
        b=st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=100)
    def test_arith_matches_python(self, a, b):
        (table,) = parse_program(
            'table name=t x=("v", start + dura * start - dura) y=("c", dura, count)'
        )
        got = table.xs[0][1].eval({"start": a, "dura": b})
        assert got == pytest.approx(a + b * a - b, nan_ok=True)


class TestDiagnostics:
    """Failure modes must point at the offending line and column."""

    def test_tokenizer_reports_line_and_column(self):
        with pytest.raises(StatsError, match=r"line 2, column 8"):
            tokenize("table\nname=t @")

    def test_malformed_table_clause(self):
        with pytest.raises(StatsError, match=r"line \d+, column \d+"):
            parse_program("table name=t x=(")

    def test_unknown_table_keyword_located(self):
        with pytest.raises(StatsError, match=r"line 1, column \d+"):
            parse_program('table name=t z=("a", node)')

    def test_unknown_aggregate_located(self):
        with pytest.raises(StatsError) as excinfo:
            parse_program('table name=t x=("a", node) y=("y", dura, median)')
        message = str(excinfo.value)
        assert "unknown aggregate" in message
        assert "line 1" in message and "column" in message

    def test_unterminated_condition(self):
        program = "table name=t condition=(start <\n"
        with pytest.raises(StatsError) as excinfo:
            parse_program(program)
        message = str(excinfo.value)
        assert "line" in message and "column" in message

    def test_unterminated_string_located(self):
        with pytest.raises(StatsError, match=r"line 1, column \d+"):
            tokenize('table name=t x=("oops')

    def test_unknown_field_reports_location(self):
        (table,) = parse_program('table name=t\n  x=("a", no_such_field)\n'
                                 '  y=("c", dura, count)')
        with pytest.raises(StatsError) as excinfo:
            table.xs[0][1].eval({"start": 1})
        message = str(excinfo.value)
        assert "no field 'no_such_field'" in message
        assert "line 2" in message
