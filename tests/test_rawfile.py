"""Round-trip and property tests for the raw trace file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.tracing.events import RawEvent, dispatch_event, global_clock_event
from repro.tracing.hooks import HookId
from repro.tracing.rawfile import RawFileHeader, RawTraceReader, RawTraceWriter


def test_header_roundtrip():
    header = RawFileHeader(node_id=3, n_cpus=8, base_local_ts=123456)
    decoded = RawFileHeader.decode(header.encode())
    assert decoded == header


def test_header_rejects_bad_magic():
    blob = b"X" * RawFileHeader.size()
    with pytest.raises(TraceError, match="magic"):
        RawFileHeader.decode(blob)


def test_event_roundtrip_simple():
    ev = dispatch_event(1000, 42, 3)
    decoded, size = RawEvent.decode(ev.encode())
    assert decoded == ev
    assert size == len(ev.encode())


def test_event_roundtrip_with_args_and_text():
    ev = RawEvent(HookId.MARKER_DEFINE, 5, 7, 0, (12,), "Initial Phase")
    decoded, _ = RawEvent.decode(ev.encode())
    assert decoded.args == (12,)
    assert decoded.text == "Initial Phase"


hook_ids = st.sampled_from(
    [int(h) for h in HookId] + [0x100, 0x105, 0x200, 0x211]
)


@given(
    hook=hook_ids,
    ts=st.integers(min_value=0, max_value=2**63 - 1),
    tid=st.integers(min_value=0, max_value=2**32 - 1),
    cpu=st.integers(min_value=0, max_value=2**16 - 1),
    args=st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=8),
    text=st.text(max_size=64),
)
@settings(max_examples=250)
def test_event_roundtrip_property(hook, ts, tid, cpu, args, text):
    ev = RawEvent(hook, ts, tid, cpu, tuple(args), text)
    decoded, consumed = RawEvent.decode(ev.encode())
    assert decoded == ev
    assert consumed == len(ev.encode())


@given(
    events=st.lists(
        st.tuples(
            hook_ids,
            st.integers(min_value=0, max_value=2**40),
            st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=4),
        ),
        max_size=30,
    )
)
@settings(max_examples=50)
def test_file_roundtrip_property(tmp_path_factory, events):
    path = tmp_path_factory.mktemp("raw") / "t.raw"
    header = RawFileHeader(node_id=1, n_cpus=4, base_local_ts=0)
    originals = [RawEvent(h, ts, 9, 1, tuple(a)) for h, ts, a in events]
    with RawTraceWriter(path, header) as writer:
        for ev in originals:
            writer.write(ev)
    reader = RawTraceReader(path)
    assert reader.header.node_id == 1
    assert reader.events() == originals


def test_writer_flushes_on_buffer_full(tmp_path):
    path = tmp_path / "t.raw"
    header = RawFileHeader(node_id=0, n_cpus=1, base_local_ts=0)
    writer = RawTraceWriter(path, header, buffer_bytes=256)
    for i in range(100):
        writer.write(dispatch_event(i, 1, 0))
    assert writer.records_written > 0  # flushed before close
    writer.close()
    assert len(RawTraceReader(path).events()) == 100


def test_wrap_mode_keeps_only_recent_records(tmp_path):
    path = tmp_path / "t.raw"
    header = RawFileHeader(node_id=0, n_cpus=1, base_local_ts=0)
    writer = RawTraceWriter(path, header, buffer_bytes=512, wrap=True)
    for i in range(200):
        writer.write(dispatch_event(i, 1, 0))
    writer.close()
    events = RawTraceReader(path).events()
    assert writer.records_dropped > 0
    assert len(events) < 200
    # Survivors are the most recent, still in order.
    timestamps = [e.local_ts for e in events]
    assert timestamps == sorted(timestamps)
    assert timestamps[-1] == 199


def test_write_after_close_rejected(tmp_path):
    path = tmp_path / "t.raw"
    writer = RawTraceWriter(path, RawFileHeader(0, 1, 0))
    writer.close()
    with pytest.raises(TraceError):
        writer.write(dispatch_event(0, 1, 0))


def test_tiny_buffer_rejected(tmp_path):
    with pytest.raises(TraceError):
        RawTraceWriter(tmp_path / "t.raw", RawFileHeader(0, 1, 0), buffer_bytes=8)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "t.raw"
    path.write_bytes(b"\x01\x02")
    with pytest.raises(TraceError, match="truncated"):
        RawTraceReader(path)


def test_global_clock_event_payload():
    ev = global_clock_event(local_ts=1_000_018, global_ts=1_000_000)
    assert ev.hook_id == HookId.GLOBAL_CLOCK
    assert ev.local_ts == 1_000_018
    assert ev.args == (1_000_000,)
