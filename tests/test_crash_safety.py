"""Crash injection: killed writers must never leave a partial final file.

Every writer commits via write-to-temp + fsync + atomic rename
(core/atomicio.py), so a process dying mid-write — simulated here by
forking and ``os._exit`` with no cleanup — leaves either no output or the
complete, valid output; anything else on disk is a recognizable temp
artifact (``is_temp_artifact``) a sweeper may delete.
"""

import os

import pytest

from repro.core import IntervalFileWriter, IntervalReader, standard_profile
from repro.core.atomicio import AtomicFile, atomic_write_bytes, is_temp_artifact, temp_path_for
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.errors import FormatError
from repro.utils.merge import merge_interval_files
from repro.utils.slog import SlogFile, SlogWriter

PROFILE = standard_profile()
TABLE = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])


def _record(i: int) -> IntervalRecord:
    return IntervalRecord(
        IntervalType.RUNNING, BeBits.COMPLETE, i * 100, 50, 0, 0, 0
    )


def _run_in_child(fn) -> int:
    """Fork, run ``fn`` in the child (which must ``os._exit``), and return
    the child's exit status."""
    pid = os.fork()
    if pid == 0:
        try:
            fn()
        finally:
            os._exit(1)  # fn is expected to _exit itself; never fall through
    _pid, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


def _leftovers(directory) -> list:
    return sorted(p.name for p in directory.iterdir())


class TestAtomicFile:
    def test_commit_is_atomic(self, tmp_path):
        target = tmp_path / "out.bin"
        fh = AtomicFile(target)
        fh.write(b"payload")
        assert not target.exists()  # nothing visible before commit
        fh.commit()
        assert target.read_bytes() == b"payload"
        assert _leftovers(tmp_path) == ["out.bin"]  # temp gone

    def test_abort_leaves_nothing(self, tmp_path):
        target = tmp_path / "out.bin"
        fh = AtomicFile(target)
        fh.write(b"partial")
        fh.abort()
        assert _leftovers(tmp_path) == []

    def test_context_manager_aborts_on_exception(self, tmp_path):
        target = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            with AtomicFile(target) as fh:
                fh.write(b"partial")
                raise RuntimeError("boom")
        assert _leftovers(tmp_path) == []

    def test_write_after_commit_rejected(self, tmp_path):
        fh = AtomicFile(tmp_path / "out.bin")
        fh.commit()
        with pytest.raises(FormatError):
            fh.write(b"late")

    def test_temp_artifacts_are_recognizable(self, tmp_path):
        temp = temp_path_for(tmp_path / "out.bin")
        assert is_temp_artifact(temp)
        assert not is_temp_artifact(tmp_path / "out.bin")
        assert str(os.getpid()) in temp.name  # no cross-process collisions

    def test_atomic_write_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"x" * 100)
        assert target.read_bytes() == b"x" * 100
        assert _leftovers(tmp_path) == ["blob.bin"]


class TestKilledWriters:
    def test_killed_mid_interval_write(self, tmp_path):
        target = tmp_path / "out.ute"

        def child():
            writer = IntervalFileWriter(
                target, PROFILE, TABLE,
                field_mask=MASK_ALL_PER_NODE, frame_bytes=256,
            )
            for i in range(50):
                writer.write(_record(i))
            os._exit(3)  # die without close()

        assert _run_in_child(child) == 3
        assert not target.exists()
        assert all(is_temp_artifact(tmp_path / n) for n in _leftovers(tmp_path))

    def test_killed_mid_slog_spill(self, tmp_path):
        target = tmp_path / "out.slog"

        def child():
            writer = SlogWriter(
                target, PROFILE, TABLE, field_mask=MASK_ALL_PER_NODE,
                time_range=(0, 10000), frame_bytes=256,
            )
            for i in range(80):
                writer.write(_record(i))  # several frames spilled to disk
            os._exit(3)

        assert _run_in_child(child) == 3
        assert not target.exists()
        assert all(is_temp_artifact(tmp_path / n) for n in _leftovers(tmp_path))

    def test_killed_mid_merge(self, tmp_path):
        inputs = []
        for node in range(2):
            path = tmp_path / f"node{node}.ute"
            table = ThreadTable([ThreadEntry(0, 1, 1, node, 0, 0, "t")])
            with IntervalFileWriter(
                path, PROFILE, table,
                field_mask=MASK_ALL_PER_NODE, frame_bytes=256,
            ) as writer:
                for i in range(40):
                    writer.write(
                        IntervalRecord(
                            IntervalType.RUNNING, BeBits.COMPLETE,
                            i * 100, 50, node, 0, 0,
                        )
                    )
            inputs.append(path)
        merged = tmp_path / "merged.ute"
        before = _leftovers(tmp_path)

        def child():
            calls = {"n": 0}
            original = IntervalFileWriter.write

            def crashing(self, record):
                calls["n"] += 1
                if calls["n"] == 10:
                    os._exit(3)  # die mid-merge, output half-written
                return original(self, record)

            IntervalFileWriter.write = crashing
            merge_interval_files(inputs, merged, PROFILE)
            os._exit(0)  # not reached

        assert _run_in_child(child) == 3
        assert not merged.exists()
        leftovers = [n for n in _leftovers(tmp_path) if n not in before]
        assert all(is_temp_artifact(tmp_path / n) for n in leftovers)

        # Stale temps are ignorable: the same merge re-run normally
        # succeeds and produces a valid file (temp names carry the pid,
        # so the dead child's leftovers never collide).
        result = merge_interval_files(inputs, merged, PROFILE)
        assert merged.exists() and result.records_out >= 80
        with IntervalReader(merged, PROFILE) as reader:
            assert sum(1 for _ in reader.intervals()) == result.records_out

    def test_exception_mid_write_cleans_up(self, tmp_path):
        """The no-fork sibling: an exception inside the writer context
        aborts the temp — no final file, no litter."""
        target = tmp_path / "out.ute"
        with pytest.raises(RuntimeError):
            with IntervalFileWriter(
                target, PROFILE, TABLE, field_mask=MASK_ALL_PER_NODE,
            ) as writer:
                writer.write(_record(0))
                raise RuntimeError("boom")
        assert _leftovers(tmp_path) == []

    def test_exception_mid_slog_cleans_up(self, tmp_path):
        target = tmp_path / "out.slog"
        with pytest.raises(RuntimeError):
            with SlogWriter(
                target, PROFILE, TABLE, field_mask=MASK_ALL_PER_NODE,
                time_range=(0, 10000), frame_bytes=256,
            ) as writer:
                for i in range(80):
                    writer.write(_record(i))
                raise RuntimeError("boom")
        assert _leftovers(tmp_path) == []

    def test_successful_close_replaces_atomically(self, tmp_path):
        """A slow reader holding the *old* bytes is unaffected by a
        concurrent rewrite: rename swaps the directory entry only."""
        target = tmp_path / "out.slog"
        for generation in (10, 20):
            writer = SlogWriter(
                target, PROFILE, TABLE, field_mask=MASK_ALL_PER_NODE,
                time_range=(0, 10000), frame_bytes=256,
            )
            for i in range(generation):
                writer.write(_record(i))
            writer.close()
        with SlogFile(target) as slog:
            assert len(slog.records()) == 20
        assert _leftovers(tmp_path) == ["out.slog"]


class TestKilledLiveWriter:
    """A live writer killed mid-append: the epoch pins what readers see.

    The live protocol's crash window is between ``flush_data`` (durable
    appended bytes) and ``publish`` (the epoch naming them).  A writer
    dying inside that window leaves a torn tail in ``data`` that no epoch
    references — a strict reader must see the previous epoch byte-for-
    byte, and a salvaging reader must find nothing to repair."""

    def test_killed_between_flush_and_publish(self, tmp_path):
        from repro.live import LiveReader
        from repro.live.container import data_path, live_dir_for, read_manifest

        target = tmp_path / "run.slog"

        def child():
            from repro.live import LiveSlogWriter

            writer = LiveSlogWriter(
                target, PROFILE, TABLE, field_mask=MASK_ALL_PER_NODE,
                frame_bytes=256,
            )
            for i in range(20):
                writer.write(_record(i))
            writer.publish(seal=True)  # epoch 1: 20 records visible
            for i in range(20, 40):
                writer.write(_record(i))
            writer.seal_frame()
            writer.flush_data()  # durable bytes the epoch never names
            os._exit(3)

        assert _run_in_child(child) == 3
        live_dir = live_dir_for(target)
        manifest = read_manifest(live_dir)
        assert manifest.seq == 1 and not manifest.finalized
        # The torn tail is really on disk — and really invisible.
        assert data_path(live_dir).stat().st_size > manifest.data_size

        strict = LiveReader(target)
        records = [r for e in strict.frames for r in strict.read_frame(e)]
        assert [
            (r.start, r.duration) for r in records
        ] == [(i * 100, 50) for i in range(20)]
        strict.close()

        salvage = LiveReader(target, errors="salvage")
        seen = [r for e in salvage.frames for r in salvage.read_frame(e)]
        assert seen == records  # zero loss, zero repair
        salvage.close()

    def test_killed_before_first_publish_of_data(self, tmp_path):
        """Dying before any frame is published leaves epoch 0: a valid,
        empty live trace — not an error, not a partial file."""
        from repro.live import LiveReader
        from repro.live.container import live_dir_for, read_manifest

        target = tmp_path / "run.slog"

        def child():
            from repro.live import LiveSlogWriter

            writer = LiveSlogWriter(
                target, PROFILE, TABLE, field_mask=MASK_ALL_PER_NODE,
                frame_bytes=256,
            )
            for i in range(10):
                writer.write(_record(i))
            writer.seal_frame()
            writer.flush_data()
            os._exit(3)

        assert _run_in_child(child) == 3
        assert read_manifest(live_dir_for(target)).seq == 0
        assert not target.exists()
        with LiveReader(target) as reader:
            assert reader.frames == []
