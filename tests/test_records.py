"""Tests for interval record encoding: bebits, length prefixes, masks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fields import MASK_ALL_MERGED, MASK_ALL_PER_NODE, MASK_CORE
from repro.core.profilefmt import standard_profile
from repro.core.records import (
    BeBits,
    IntervalRecord,
    IntervalType,
    decode_length,
    encode_length,
    pack_type_word,
    skip_record,
    unpack_type_word,
)
from repro.errors import FormatError
from repro.tracing.hooks import MPI_FN_IDS

PROFILE = standard_profile()


def send_record(**overrides):
    base = dict(
        itype=IntervalType.for_mpi_fn(MPI_FN_IDS["MPI_Send"]),
        bebits=BeBits.COMPLETE,
        start=1000,
        duration=250,
        node=2,
        cpu=1,
        thread=3,
        extra={"peer": 5, "tag": 9, "msgSizeSent": 4096, "seqno": 77, "addr": 0xDEAD},
    )
    base.update(overrides)
    return IntervalRecord(**base)


class TestTypeWord:
    @pytest.mark.parametrize("bebits", list(BeBits))
    def test_roundtrip_all_bebits(self, bebits):
        word = pack_type_word(42, bebits)
        assert unpack_type_word(word) == (42, bebits)

    def test_bebits_values_match_paper_variants(self):
        # complete, begin, continuation, end — four variants.
        assert {b.name for b in BeBits} == {"COMPLETE", "BEGIN", "CONTINUATION", "END"}


class TestLengthPrefix:
    def test_short_record_one_byte(self):
        assert encode_length(100) == bytes([100])
        assert decode_length(bytes([100]) + b"x" * 100, 0) == (100, 1)

    def test_long_record_escapes_to_two_bytes(self):
        blob = encode_length(300)
        assert blob[0] == 0
        assert decode_length(blob, 0) == (300, 3)

    def test_boundary_255(self):
        assert encode_length(255) == bytes([255])

    def test_boundary_256(self):
        assert encode_length(256)[0] == 0

    def test_oversized_rejected(self):
        with pytest.raises(FormatError):
            encode_length(70000)

    @given(st.integers(min_value=1, max_value=65535))
    @settings(max_examples=200)
    def test_roundtrip_property(self, n):
        blob = encode_length(n)
        length, offset = decode_length(blob, 0)
        assert length == n
        assert offset == len(blob)


class TestRecordEncoding:
    def test_roundtrip_per_node_mask(self):
        rec = send_record()
        blob = rec.encode(PROFILE, MASK_ALL_PER_NODE)
        decoded, consumed = IntervalRecord.decode(blob, 0, PROFILE, MASK_ALL_PER_NODE)
        assert consumed == len(blob)
        assert decoded.itype == rec.itype
        assert decoded.bebits == rec.bebits
        assert (decoded.start, decoded.duration) == (1000, 250)
        assert (decoded.node, decoded.cpu, decoded.thread) == (2, 1, 3)
        assert decoded.extra["msgSizeSent"] == 4096
        assert decoded.extra["seqno"] == 77

    def test_core_mask_drops_extras(self):
        rec = send_record()
        blob = rec.encode(PROFILE, MASK_CORE)
        decoded, _ = IntervalRecord.decode(blob, 0, PROFILE, MASK_CORE)
        assert decoded.extra == {}
        assert len(blob) < len(rec.encode(PROFILE, MASK_ALL_PER_NODE))

    def test_merged_mask_adds_local_start(self):
        rec = send_record(extra={"peer": 5, "tag": 9, "msgSizeSent": 1, "seqno": 1,
                                 "addr": 0, "localStart": 999})
        blob = rec.encode(PROFILE, MASK_ALL_MERGED)
        decoded, _ = IntervalRecord.decode(blob, 0, PROFILE, MASK_ALL_MERGED)
        assert decoded.extra["localStart"] == 999

    def test_mask_mismatch_detected(self):
        """Decoding with the wrong mask must fail loudly, not misparse."""
        rec = send_record()
        blob = rec.encode(PROFILE, MASK_ALL_PER_NODE)
        with pytest.raises(FormatError, match="length mismatch"):
            IntervalRecord.decode(blob, 0, PROFILE, MASK_CORE)

    def test_missing_extra_fields_default_to_zero(self):
        rec = send_record(extra={})
        blob = rec.encode(PROFILE, MASK_ALL_PER_NODE)
        decoded, _ = IntervalRecord.decode(blob, 0, PROFILE, MASK_ALL_PER_NODE)
        assert decoded.extra["msgSizeSent"] == 0
        assert decoded.extra["peer"] == 0

    def test_running_record_minimal(self):
        rec = IntervalRecord(IntervalType.RUNNING, BeBits.BEGIN, 0, 10, 0, 0, 0)
        blob = rec.encode(PROFILE, MASK_ALL_PER_NODE)
        decoded, _ = IntervalRecord.decode(blob, 0, PROFILE, MASK_ALL_PER_NODE)
        assert decoded.bebits is BeBits.BEGIN
        assert decoded.itype == IntervalType.RUNNING

    def test_skip_record_without_decoding(self):
        rec = send_record()
        blob = rec.encode(PROFILE, MASK_ALL_PER_NODE) + b"TRAILER"
        assert blob[skip_record(blob, 0):] == b"TRAILER"

    @given(
        itype=st.sampled_from(PROFILE.record_types()),
        bebits=st.sampled_from(list(BeBits)),
        start=st.integers(min_value=0, max_value=2**62),
        duration=st.integers(min_value=0, max_value=2**32),
        node=st.integers(min_value=0, max_value=65535),
        cpu=st.integers(min_value=0, max_value=255),
        thread=st.integers(min_value=0, max_value=511),
    )
    @settings(max_examples=200)
    def test_roundtrip_property_all_types(self, itype, bebits, start, duration, node, cpu, thread):
        rec = IntervalRecord(itype, bebits, start, duration, node, cpu, thread)
        for mask in (MASK_CORE, MASK_ALL_PER_NODE, MASK_ALL_MERGED):
            decoded, _ = IntervalRecord.decode(rec.encode(PROFILE, mask), 0, PROFILE, mask)
            assert (decoded.itype, decoded.bebits) == (itype, bebits)
            assert (decoded.start, decoded.duration) == (start, duration)
            assert (decoded.node, decoded.cpu, decoded.thread) == (node, cpu, thread)


class TestRecordAccessors:
    def test_end_property(self):
        assert send_record().end == 1250

    def test_get_common_and_extra(self):
        rec = send_record()
        assert rec.get("start") == 1000
        assert rec.get("dura") == 250
        assert rec.get("node") == 2
        assert rec.get("cpu") == 1
        assert rec.get("thread") == 3
        assert rec.get("peer") == 5
        assert rec.get("rectype") == pack_type_word(rec.itype, rec.bebits)

    def test_get_unknown_field_raises(self):
        with pytest.raises(FormatError, match="no field"):
            send_record().get("bogus")

    def test_has(self):
        rec = send_record()
        assert rec.has("start") and rec.has("peer") and rec.has("rectype")
        assert not rec.has("bogus")
