"""Tests for the indexed query subsystem (``repro.query`` + ``ute-query``).

The contract under test everywhere: the sidecar index changes **bytes
read**, never results.  Indexed and unindexed executions of the same query
must render byte-identical output — including over damaged corpus files
read in salvage mode, and after the trace is atomically replaced under a
now-stale sidecar.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main_dump, main_query, main_stats
from repro.core import IntervalFileWriter, standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.profilefmt import Profile
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.errors import FormatError
from repro.query import (
    MODE_FULL_SCAN,
    MODE_INDEXED,
    Aggregate,
    Query,
    ThreadSel,
    TraceIndex,
    build_index,
    index_path_for,
    load_fresh_index,
    open_trace,
    plan_query,
    run_query,
    write_index,
)

PROFILE = standard_profile()
MARKER = IntervalType.MARKER
RUNNING = IntervalType.RUNNING


def _records(n=240):
    """A deterministic workload: 3 nodes x 2 threads, two record types,
    time increasing so frames get disjoint windows."""
    out = []
    for i in range(n):
        node = i % 3
        thread = i % 2
        itype = MARKER if i % 5 == 0 else RUNNING
        extra = {"markerId": 1} if itype == MARKER else {}
        out.append(
            IntervalRecord(
                itype, BeBits.COMPLETE, i * 100_000, 60_000, node, 0, thread, extra
            )
        )
    return out


def make_ivl(path, records=None, *, frame_bytes=512):
    table = ThreadTable(
        [
            ThreadEntry(n * 2 + t, 100 + n, 5000 + n * 10 + t, n, t, 0, f"n{n}t{t}")
            for n in range(3)
            for t in range(2)
        ]
    )
    with IntervalFileWriter(
        path, PROFILE, table, field_mask=MASK_ALL_MERGED,
        markers={1: "phase"}, frame_bytes=frame_bytes,
    ) as writer:
        for record in records if records is not None else _records():
            writer.write(record)
    return path


@pytest.fixture()
def ivl(tmp_path):
    return make_ivl(tmp_path / "q.ute")


@pytest.fixture()
def indexed_ivl(ivl):
    with open_trace(ivl, PROFILE) as handle:
        write_index(build_index(handle), index_path_for(ivl))
    return ivl


def run_cli(fn, argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = fn(argv)
    return code, out.getvalue(), err.getvalue()


# ---------------------------------------------------------------------------
# Sidecar format.


class TestIndexFile:
    def test_roundtrip(self, ivl):
        with open_trace(ivl, PROFILE) as handle:
            index = build_index(handle)
        decoded = TraceIndex.decode(index.encode())
        assert decoded.source_size == index.source_size
        assert decoded.source_sha256 == index.source_sha256
        assert decoded.t_min == index.t_min and decoded.t_max == index.t_max
        assert decoded.bins == index.bins
        assert decoded.postings == index.postings
        assert [f.thread_keys for f in decoded.frames] == [
            f.thread_keys for f in index.frames
        ]
        assert [f.type_bits for f in decoded.frames] == [
            f.type_bits for f in index.frames
        ]

    def test_build_deterministic(self, ivl, tmp_path):
        """Same input file -> bit-identical sidecar, across two builds."""
        with open_trace(ivl, PROFILE) as handle:
            first = build_index(handle).encode()
        with open_trace(ivl, PROFILE) as handle:
            second = build_index(handle).encode()
        assert first == second
        a, b = tmp_path / "a.uteidx", tmp_path / "b.uteidx"
        write_index(TraceIndex.decode(first), a)
        write_index(TraceIndex.decode(second), b)
        assert a.read_bytes() == b.read_bytes()

    def test_summary_counts(self, ivl):
        with open_trace(ivl, PROFILE) as handle:
            index = build_index(handle)
            total = sum(f.n_records for f in handle.frames)
        info = index.summary()
        assert info["records"] == total == 240
        assert info["frames"] == len(index.frames) > 1
        assert info["threads"] == 6  # 3 nodes x 2 threads

    def test_corrupt_sidecar_rejected(self, indexed_ivl):
        sidecar = index_path_for(indexed_ivl)
        data = bytearray(sidecar.read_bytes())
        data[len(data) // 2] ^= 0xFF
        sidecar.write_bytes(bytes(data))
        index, reason = load_fresh_index(indexed_ivl)
        assert index is None and reason.startswith("corrupt:")

    def test_truncated_sidecar_rejected(self, indexed_ivl):
        sidecar = index_path_for(indexed_ivl)
        sidecar.write_bytes(sidecar.read_bytes()[:40])
        index, reason = load_fresh_index(indexed_ivl)
        assert index is None and reason.startswith("corrupt:")

    def test_index_path_for(self):
        assert index_path_for("d/run.slog").name == "run.slog.uteidx"
        assert index_path_for("d/run.ute").name == "run.ute.uteidx"


# ---------------------------------------------------------------------------
# Freshness / staleness.


class TestStaleness:
    def test_missing(self, ivl):
        index, reason = load_fresh_index(ivl)
        assert index is None and reason == "missing"

    def test_fresh(self, indexed_ivl):
        index, reason = load_fresh_index(indexed_ivl)
        assert index is not None and reason == "fresh"

    def test_atomic_replace_detected_and_results_identical(self, indexed_ivl, tmp_path):
        """The staleness contract end to end: replace the trace under its
        sidecar, the planner must fall back to full scan, and the query
        answer must be correct for the NEW content."""
        query = ["--window", "0:0.01", "--thread", "1"]
        # Atomically replace the trace with different content (fewer records).
        replacement = make_ivl(tmp_path / "new.ute", _records(120))
        os.replace(replacement, indexed_ivl)
        index, reason = load_fresh_index(indexed_ivl)
        assert index is None and reason.startswith("stale:")
        code, stale_out, err = run_cli(
            main_query, [str(indexed_ivl), *query, "--explain"]
        )
        assert code == 0
        assert "full-scan" in err
        # Ground truth: the same query with the index explicitly disabled.
        code, plain_out, _ = run_cli(
            main_query, [str(indexed_ivl), *query, "--no-index"]
        )
        assert code == 0
        assert stale_out == plain_out

    def test_atomic_replace_same_bytes_stays_fresh(self, indexed_ivl, tmp_path):
        """An atomic rewrite of identical bytes keeps the sidecar valid even
        though the mtime moved (content hash re-verified)."""
        clone = tmp_path / "clone.ute"
        clone.write_bytes(Path(indexed_ivl).read_bytes())
        os.replace(clone, indexed_ivl)
        index, reason = load_fresh_index(indexed_ivl)
        assert index is not None and reason == "fresh"

    def test_size_change_detected(self, indexed_ivl):
        with open(indexed_ivl, "ab") as fh:
            fh.write(b"\x00" * 16)
        index, reason = load_fresh_index(indexed_ivl)
        assert index is None and reason == "stale:size"


# ---------------------------------------------------------------------------
# Planner.


class TestPlanner:
    @pytest.fixture()
    def setup(self, ivl):
        handle = open_trace(ivl, PROFILE)
        index = build_index(handle)
        yield handle, index
        handle.close()

    def test_no_index_full_scan(self, setup):
        handle, _ = setup
        plan = plan_query(Query(), handle.frames, None, index_reason="missing")
        assert plan.mode == MODE_FULL_SCAN
        assert plan.frames == list(range(len(handle.frames)))
        assert plan.frames_pruned == 0

    def test_window_prunes(self, setup):
        handle, index = setup
        t_mid = handle.frames[-1].end_time // 2
        plan = plan_query(Query(t0=0, t1=t_mid // 4), handle.frames, index)
        assert plan.mode == MODE_INDEXED
        assert 0 < len(plan.frames) < len(handle.frames)
        assert ("time-window", len(plan.frames)) in plan.steps

    def test_unknown_thread_prunes_everything(self, setup):
        handle, index = setup
        plan = plan_query(
            Query(threads=(ThreadSel(7, 99),)), handle.frames, index
        )
        assert plan.mode == MODE_INDEXED and plan.frames == []

    def test_node_and_type_steps(self, setup):
        handle, index = setup
        plan = plan_query(
            Query(nodes=frozenset({0}), types=frozenset({int(MARKER)})),
            handle.frames, index,
        )
        assert plan.mode == MODE_INDEXED
        names = [name for name, _ in plan.steps]
        assert "node-sets" in names and "type-bitmaps" in names

    def test_unknown_type_prunes_everything(self, setup):
        handle, index = setup
        plan = plan_query(Query(types=frozenset({200})), handle.frames, index)
        assert plan.frames == []

    def test_frame_count_mismatch_forces_full_scan(self, setup):
        handle, index = setup
        index.frames.pop()
        plan = plan_query(Query(), handle.frames, index)
        assert plan.mode == MODE_FULL_SCAN

    def test_conservative_never_loses_records(self, setup):
        """Every record a full scan admits must live in a planned frame."""
        handle, index = setup
        query = Query(
            t0=3_000_000, t1=15_000_000,
            threads=(ThreadSel(None, 1),),
            types=frozenset({int(RUNNING)}),
        )
        plan = plan_query(query, handle.frames, index)
        planned = set(plan.frames)
        for frame in handle.frames:
            for record in handle.read_frame(frame.ordinal):
                if query.matches(record):
                    assert frame.ordinal in planned


# ---------------------------------------------------------------------------
# Executor parity + model parsing.


QUERIES = [
    {},
    {"window": (0.0, 0.008)},
    {"threads": (ThreadSel(None, 1),)},
    {"threads": (ThreadSel(2, 0),), "window": (0.002, 0.02)},
    {"nodes": frozenset({0, 2})},
    {"types": frozenset({int(MARKER)})},
    {
        "window": (0.0, 0.01),
        "nodes": frozenset({1}),
        "types": frozenset({int(RUNNING)}),
    },
]


class TestExecutorParity:
    @pytest.mark.parametrize("spec", QUERIES)
    def test_indexed_equals_full_scan(self, indexed_ivl, spec):
        window = spec.pop("window", None)
        query = Query(**spec)
        indexed = run_query(indexed_ivl, query, profile=PROFILE, window=window)
        plain = run_query(
            indexed_ivl, query, profile=PROFILE, index=False, window=window
        )
        assert indexed.plan.mode == MODE_INDEXED
        assert plain.plan.mode == MODE_FULL_SCAN
        assert indexed.to_tsv() == plain.to_tsv()
        assert indexed.io["bytes_read"] <= plain.io["bytes_read"]

    def test_grouped_parity(self, indexed_ivl):
        query = Query(
            group_by=("node", "type"),
            aggregates=(Aggregate.parse("count"), Aggregate.parse("sum:dura")),
        )
        indexed = run_query(indexed_ivl, query, profile=PROFILE)
        plain = run_query(indexed_ivl, query, profile=PROFILE, index=False)
        assert indexed.to_tsv() == plain.to_tsv()
        assert indexed.columns == ("node", "type", "count", "sum(dura)")
        total = sum(row[2] for row in indexed.rows)
        assert total == 240

    def test_limit(self, indexed_ivl):
        result = run_query(indexed_ivl, Query(limit=5), profile=PROFILE)
        assert len(result.rows) == 5

    def test_projection(self, indexed_ivl):
        result = run_query(
            indexed_ivl, Query(columns=("start", "thread")), profile=PROFILE
        )
        assert result.columns == ("start", "thread")
        assert all(len(row) == 2 for row in result.rows)


class TestModelParsing:
    def test_thread_sel(self):
        assert ThreadSel.parse("3") == ThreadSel(None, 3)
        assert ThreadSel.parse("1:3") == ThreadSel(1, 3)
        with pytest.raises(FormatError):
            ThreadSel.parse("a:b")

    def test_aggregate(self):
        assert Aggregate.parse("count").fn == "count"
        agg = Aggregate.parse("avg:dura")
        assert (agg.fn, agg.source, agg.label) == ("avg", "dura", "avg(dura)")
        with pytest.raises(FormatError):
            Aggregate.parse("median:dura")
        with pytest.raises(FormatError):
            Aggregate.parse("sum")

    def test_query_validation(self):
        with pytest.raises(FormatError):
            Query(t0=10, t1=5)
        with pytest.raises(FormatError):
            Query(group_by=("node",))
        with pytest.raises(FormatError):
            Query(aggregates=(Aggregate.parse("count"),))
        with pytest.raises(FormatError):
            Query(limit=-1)


# ---------------------------------------------------------------------------
# CLI.


class TestQueryCli:
    def test_build_index_writes_sidecar(self, ivl):
        code, out, err = run_cli(main_query, [str(ivl), "--build-index"])
        assert code == 0
        sidecar = Path(out.strip())
        assert sidecar == index_path_for(ivl) and sidecar.exists()
        assert "indexed" in err

    def test_build_index_deterministic_bytes(self, ivl):
        run_cli(main_query, [str(ivl), "--build-index"])
        first = index_path_for(ivl).read_bytes()
        run_cli(main_query, [str(ivl), "--build-index"])
        assert index_path_for(ivl).read_bytes() == first

    def test_query_tsv_and_parity(self, indexed_ivl):
        argv = [str(indexed_ivl), "--window", "0:0.01", "--thread", "1"]
        code, indexed_out, err = run_cli(main_query, [*argv, "--explain"])
        assert code == 0
        assert "plan: indexed" in err
        code, plain_out, _ = run_cli(main_query, [*argv, "--no-index"])
        assert code == 0
        assert indexed_out == plain_out
        header = indexed_out.splitlines()[0].split("\t")
        assert header[:3] == ["start", "end", "dura"]

    def test_query_json(self, indexed_ivl):
        code, out, _ = run_cli(
            main_query,
            [str(indexed_ivl), "--group-by", "node", "--agg", "count",
             "--format", "json"],
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["columns"] == ["node", "count"]
        assert doc["plan"]["mode"] == MODE_INDEXED
        assert doc["io"]["bytes_read"] > 0
        assert sum(row[1] for row in doc["rows"]) == 240

    def test_type_by_name(self, indexed_ivl):
        code, by_name, _ = run_cli(
            main_query, [str(indexed_ivl), "--type", "marker"]
        )
        assert code == 0
        code, by_id, _ = run_cli(
            main_query, [str(indexed_ivl), "--type", str(int(MARKER))]
        )
        assert by_name == by_id
        assert len(by_name.splitlines()) == 1 + 48  # 240 / 5 markers

    def test_bad_window(self, ivl):
        code, _, err = run_cli(main_query, [str(ivl), "--window", "zzz"])
        assert code == 2 and "window" in err

    def test_unknown_type_name(self, ivl):
        code, _, err = run_cli(main_query, [str(ivl), "--type", "bogus"])
        assert code == 2 and "bogus" in err

    def test_missing_input(self, tmp_path):
        code, _, err = run_cli(main_query, [str(tmp_path / "none.ute")])
        assert code == 2 and "not found" in err


class TestDumpSeek:
    def test_frame_flag_matches_full_dump(self, ivl):
        code, full, _ = run_cli(main_dump, [str(ivl)])
        assert code == 0
        code, framed, _ = run_cli(main_dump, [str(ivl), "--frame", "0"])
        assert code == 0
        assert "# selection: 1 frame(s)" in framed
        body = [l for l in framed.splitlines() if not l.startswith("#")]
        assert body and all(line in full for line in body)

    def test_window_flag(self, ivl):
        code, out, _ = run_cli(main_dump, [str(ivl), "--window", "0:0.003"])
        assert code == 0
        body = [l for l in out.splitlines() if not l.startswith("#")]
        full_body = [
            l for l in run_cli(main_dump, [str(ivl)])[1].splitlines()
            if not l.startswith("#")
        ]
        assert 0 < len(body) < len(full_body)

    def test_frame_out_of_range(self, ivl):
        code, _, err = run_cli(main_dump, [str(ivl), "--frame", "9999"])
        assert code == 2 and "out of range" in err

    def test_raw_rejects_seek_flags(self, tmp_path, corpus):
        code, _, err = run_cli(
            main_dump, [str(corpus.path("good.raw")), "--frame", "0"]
        )
        assert code == 2 and "frame directory" in err

    def test_slog_window(self, corpus):
        code, out, _ = run_cli(
            main_dump, [str(corpus.path("good.slog")), "--window", "0:1"]
        )
        assert code == 0 and "# selection:" in out


class TestStatsJson:
    def test_per_file_io(self, tmp_path):
        """Multi-file --json runs must report each file's own accounting."""
        a = make_ivl(tmp_path / "a.ute")
        b = make_ivl(tmp_path / "b.ute", _records(120))
        code, out, _ = run_cli(main_stats, [str(a), str(b), "--json"])
        assert code == 0
        doc = json.loads(out)
        assert set(doc["io"]) == {str(a), str(b)}
        for stats in doc["io"].values():
            assert stats["bytes_fetched"] > 0
            assert stats["frames_decoded"] == stats["frames_total"]
            assert stats["plan"] == MODE_FULL_SCAN
        # Different files, different sizes -> independent numbers.
        assert doc["io"][str(a)]["bytes_fetched"] != doc["io"][str(b)]["bytes_fetched"]
        assert doc["tables"]

    def test_windowed_json_uses_index(self, tmp_path):
        path = make_ivl(tmp_path / "w.ute")
        run_cli(main_query, [str(path), "--build-index"])
        code, out, _ = run_cli(
            main_stats, [str(path), "--json", "--window", "0:0.005"]
        )
        assert code == 0
        doc = json.loads(out)
        stats = doc["io"][str(path)]
        assert stats["plan"] == MODE_INDEXED
        assert stats["frames_decoded"] < stats["frames_total"]


# ---------------------------------------------------------------------------
# Salvage-mode parity over the damaged corpus (hypothesis).

#: Corpus files that salvage cleanly, with the profile each needs.
SALVAGEABLE = [
    ("cut-254.ute", "boundary"),
    ("cut-255.ute", "boundary"),
    ("cut-256.ute", "boundary"),
    ("flip-dirlink.ute", "standard"),
    ("trunc-tail.ute", "standard"),
    ("flip-frame.slog", "standard"),
]


@pytest.fixture(scope="module")
def salvage_corpus(tmp_path_factory):
    """Corpus copies with sidecar indexes built through salvage reads."""
    import shutil

    from tests.conftest import DATA_DIR

    tmp = tmp_path_factory.mktemp("salvage-idx")
    boundary = Profile.read(DATA_DIR / "boundary.profile")
    prepared = {}
    for name, profile_kind in SALVAGEABLE:
        dest = tmp / name
        shutil.copyfile(DATA_DIR / name, dest)
        profile = boundary if profile_kind == "boundary" else PROFILE
        with open_trace(dest, profile, errors="salvage") as handle:
            write_index(build_index(handle), index_path_for(dest))
        prepared[name] = (dest, profile)
    return prepared


@given(
    pick=st.sampled_from([name for name, _ in SALVAGEABLE]),
    frac0=st.floats(min_value=0.0, max_value=1.0),
    span=st.floats(min_value=0.0, max_value=1.0),
    thread=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    node=st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
)
@settings(max_examples=40, deadline=None)
def test_salvage_parity_indexed_vs_full(salvage_corpus, pick, frac0, span, thread, node):
    """Property: over damaged-but-salvageable files, an indexed query and a
    full scan render byte-identical rows (salvage reads are deterministic,
    and the planner is conservative)."""
    path, profile = salvage_corpus[pick]
    with open_trace(path, profile, errors="salvage") as handle:
        t_hi = max((f.end_time for f in handle.frames), default=1)
        tps = handle.ticks_per_sec
    t0 = frac0 * t_hi / tps
    t1 = t0 + span * (t_hi / tps - t0)
    query = Query(
        threads=(ThreadSel(None, thread),) if thread is not None else (),
        nodes=frozenset({node}) if node is not None else frozenset(),
    )
    indexed = run_query(
        path, query, profile=profile, errors="salvage", window=(t0, t1)
    )
    plain = run_query(
        path, query, profile=profile, errors="salvage", index=False,
        window=(t0, t1),
    )
    assert indexed.plan.mode == MODE_INDEXED
    assert indexed.to_tsv() == plain.to_tsv()
    assert indexed.io["bytes_read"] <= plain.io["bytes_read"]


# ---------------------------------------------------------------------------
# Index extension (live-epoch republish / grown-file staleness).


class TestIndexExtension:
    """A sidecar whose bytes are a verified prefix of the grown trace is
    extended over the tail, never rebuilt from scratch — the staleness
    rule live-epoch republishes rely on."""

    @staticmethod
    def _prefix_base(path, k):
        """The sidecar a shorter, byte-prefix version of ``path`` would
        have had: index the first ``k`` frames, stamp size/sha of the
        prefix they cover."""
        import dataclasses

        from repro.query.indexfile import hash_file

        with open_trace(path, PROFILE) as handle:
            all_frames = list(handle.frames)
            handle.frames = all_frames[:k]
            base = build_index(handle)
        size = all_frames[k - 1].offset + all_frames[k - 1].size
        return dataclasses.replace(
            base, source_size=size, source_sha256=hash_file(path, limit=size)
        )

    def test_prefix_verdict_and_extension(self, ivl):
        from repro.query.indexfile import extend_index, load_index_for_extension

        base = self._prefix_base(ivl, 2)
        write_index(base, index_path_for(ivl))

        # The planner's freshness check refuses it...
        index, reason = load_fresh_index(ivl)
        assert index is None and reason == "stale:size"
        # ...but the extension check recognizes the intact prefix.
        loaded, reason = load_index_for_extension(ivl)
        assert reason == "prefix"
        assert loaded.source_size == base.source_size

        with open_trace(ivl, PROFILE) as handle:
            extended = extend_index(handle, loaded)
            full = build_index(handle)
        assert extended.source_size == full.source_size
        assert extended.source_sha256 == full.source_sha256
        assert extended.frames == full.frames
        assert extended.postings == full.postings
        # Absolute-grid aggregates make extension exact, not approximate:
        # the extended sidecar is the rebuild, bit for bit.
        assert extended.bins == full.bins
        assert extended.encode() == full.encode()
        # Published, it is fresh for the grown file.
        write_index(extended, index_path_for(ivl))
        _, reason = load_fresh_index(ivl)
        assert reason == "fresh"

    def test_diverged_prefix_rejected(self, ivl):
        """Same length story, different bytes: the sha check catches a
        replace that is not a pure extension."""
        from repro.query.indexfile import load_index_for_extension

        base = self._prefix_base(ivl, 2)
        base = type(base)(
            source_size=base.source_size,
            source_sha256=b"\x00" * 32,
            t_min=base.t_min, t_max=base.t_max, n_bins=base.n_bins,
            bins=base.bins, frames=base.frames, postings=base.postings,
        )
        write_index(base, index_path_for(ivl))
        index, reason = load_index_for_extension(ivl)
        assert index is None and reason == "stale:content"

    def test_registry_extends_instead_of_rebuilding(self, ivl):
        from repro.repository import Repository

        base = self._prefix_base(ivl, 2)
        write_index(base, index_path_for(ivl))
        repo = Repository(None, build_indexes=True)
        dataset = repo.attach("grown", ivl)
        repo._build_index(dataset)
        assert dataset.index_status == "ready"
        assert dataset.index_extended is True
        _, reason = load_fresh_index(ivl)
        assert reason == "fresh"

    def test_same_content_replace_skips_rebuild(self, indexed_ivl):
        """An atomic same-bytes replace bumps the mtime only; the sidecar
        stays fresh and the build path does no work at all."""
        from repro.core.atomicio import atomic_write_bytes
        from repro.repository import Repository

        sidecar = index_path_for(indexed_ivl)
        before = sidecar.stat().st_mtime_ns
        os.utime(
            indexed_ivl, ns=(before + 2_000_000_000, before + 2_000_000_000)
        )
        atomic_write_bytes(indexed_ivl, indexed_ivl.read_bytes())
        _, reason = load_fresh_index(indexed_ivl)
        assert reason == "fresh"

        repo = Repository(None, build_indexes=True)
        dataset = repo.attach("same", indexed_ivl)
        assert dataset.index_status == "ready"
        repo._build_index(dataset)
        assert dataset.index_extended is False
        assert sidecar.stat().st_mtime_ns == before  # never rewritten
