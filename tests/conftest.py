"""Shared fixtures: the golden corpus and hypothesis CI profiles.

The corpus (``tests/data/``) is a set of committed known-good and
known-damaged trace artifacts with a manifest describing each file's
damage and expected recovery outcome — see ``tests/data/generate_corpus.py``
for how it was built and how to regenerate it.

Hypothesis profiles: the default settings run on every PR; the scheduled
fuzz job selects the deeper ``ci-long`` profile with
``--hypothesis-profile=ci-long``.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import settings

settings.register_profile("ci-long", max_examples=1500, deadline=None)

DATA_DIR = Path(__file__).resolve().parent / "data"


@dataclass(frozen=True)
class Corpus:
    """The golden corpus: artifact paths plus their manifest entries."""

    root: Path
    manifest: dict

    def path(self, name: str) -> Path:
        """Absolute path of one committed artifact."""
        target = self.root / name
        assert target.exists(), f"corpus artifact missing: {name}"
        return target

    def damaged(self, kind: str | None = None) -> list[str]:
        """Names of damaged artifacts, optionally of one kind."""
        return sorted(
            name
            for name, info in self.manifest.items()
            if info["damage"] is not None
            and (kind is None or info["kind"] == kind)
        )


@pytest.fixture(scope="session")
def corpus() -> Corpus:
    """The committed golden corpus (read-only — copy before mutating)."""
    manifest = json.loads((DATA_DIR / "manifest.json").read_text())
    return Corpus(DATA_DIR, manifest)


@pytest.fixture()
def corpus_copy(corpus, tmp_path):
    """Copy one corpus artifact into ``tmp_path`` for tests that write."""

    def _copy(name: str) -> Path:
        dest = tmp_path / name
        shutil.copyfile(corpus.path(name), dest)
        return dest

    return _copy
