"""Tests for trace sessions, options, and the cluster-wide facility."""

import pytest

from repro.cluster import Cluster, ClusterSpec, Compute
from repro.errors import TraceError
from repro.tracing import RawTraceReader, TraceFacility, TraceOptions
from repro.tracing.hooks import HookId


def run_traced(tmp_path, options=None, nodes=2, body=None, spawn_on=(0,)):
    cl = Cluster(ClusterSpec(n_nodes=nodes, cpus_per_node=2))
    fac = TraceFacility(cl, tmp_path, options or TraceOptions())
    if body is None:

        def body():
            yield Compute(3_000_000)

    for node_id in spawn_on:
        cl.nodes[node_id].scheduler.spawn(body, name=f"t{node_id}")
    cl.run()
    paths = fac.close()
    return cl, fac, [RawTraceReader(p) for p in paths]


def test_one_raw_file_per_node(tmp_path):
    _, _, readers = run_traced(tmp_path, nodes=3)
    assert len(readers) == 3
    assert [r.header.node_id for r in readers] == [0, 1, 2]


def test_dispatch_events_recorded(tmp_path):
    _, _, readers = run_traced(tmp_path)
    hooks = [e.hook_id for e in readers[0].events()]
    assert HookId.DISPATCH in hooks
    assert HookId.UNDISPATCH in hooks


def test_thread_info_emitted_once_before_first_dispatch(tmp_path):
    _, _, readers = run_traced(tmp_path)
    events = readers[0].events()
    infos = [e for e in events if e.hook_id == HookId.THREAD_INFO]
    assert len(infos) == 1
    info_pos = events.index(infos[0])
    first_dispatch = next(
        i for i, e in enumerate(events) if e.hook_id == HookId.DISPATCH
    )
    assert info_pos < first_dispatch
    assert infos[0].text == "t0"


def test_timestamps_use_local_clock(tmp_path):
    """Node 1's default clock has a 1 ms offset: its records must too."""
    _, _, readers = run_traced(tmp_path, spawn_on=(0, 1))
    for reader, base in zip(readers, (0, 1_000_000)):
        dispatches = [e for e in reader.events() if e.hook_id == HookId.DISPATCH]
        assert dispatches[0].local_ts >= base


def test_event_filtering_with_enabled_hooks(tmp_path):
    options = TraceOptions(enabled_hooks=frozenset({int(HookId.DISPATCH)}))
    _, _, readers = run_traced(tmp_path, options)
    hooks = {e.hook_id for e in readers[0].events()}
    assert hooks == {HookId.DISPATCH}


def test_delayed_start_traces_nothing_until_enabled(tmp_path):
    cl = Cluster(ClusterSpec(n_nodes=1, cpus_per_node=1))
    fac = TraceFacility(cl, tmp_path, TraceOptions(start_enabled=False))

    def body():
        yield Compute(2_000_000)

    cl.nodes[0].scheduler.spawn(body, name="early")
    cl.run()
    # Nothing recorded during the disabled phase.
    assert fac.sessions[0].events_cut == 0
    fac.enable()
    cl.nodes[0].scheduler.spawn(body, name="late")
    cl.run()
    paths = fac.close()
    events = RawTraceReader(paths[0]).events()
    names = {e.text for e in events if e.hook_id == HookId.THREAD_INFO}
    assert names == {"late"}
    assert events[0].hook_id == HookId.TRACE_ON


def test_disable_cuts_trace_off(tmp_path):
    cl = Cluster(ClusterSpec(n_nodes=1, cpus_per_node=1))
    fac = TraceFacility(cl, tmp_path)
    fac.disable()
    paths = fac.close()
    hooks = [e.hook_id for e in RawTraceReader(paths[0]).events()]
    assert hooks[-1] == HookId.TRACE_OFF


def test_global_clock_records_sampled_periodically(tmp_path):
    options = TraceOptions(global_clock_period_ns=1_000_000)

    def body():
        yield Compute(5_500_000)

    _, fac, readers = run_traced(tmp_path, options, nodes=1, body=body)
    clocks = [e for e in readers[0].events() if e.hook_id == HookId.GLOBAL_CLOCK]
    # Samples at 0,1,2,3,4,5 ms plus the final stop() sample.
    assert len(clocks) == 7
    globals_ = [e.args[0] for e in clocks]
    assert globals_ == [0, 1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000, 5_500_000]


def test_global_clock_pairs_reflect_drift(tmp_path):
    options = TraceOptions(global_clock_period_ns=1_000_000_000)

    def body():
        yield Compute(2_000_000_000)

    cl = Cluster(ClusterSpec(n_nodes=2, cpus_per_node=1))
    fac = TraceFacility(cl, tmp_path, options)
    cl.nodes[1].scheduler.spawn(body)
    cl.run()
    paths = fac.close()
    clocks = [
        e for e in RawTraceReader(paths[1]).events() if e.hook_id == HookId.GLOBAL_CLOCK
    ]
    # Node 1: offset 1 ms, drift +18 ppm.
    for e in clocks:
        g = e.args[0]
        expected_local = 1_000_000 + round(g * (1 + 18e-6))
        assert abs(e.local_ts - expected_local) <= 1


def test_jitter_injects_outliers_deterministically(tmp_path):
    options = TraceOptions(
        global_clock_period_ns=1_000_000,
        clock_sample_jitter_ns=500_000,
        jitter_probability=0.5,
        seed=7,
    )

    def body():
        yield Compute(20_000_000)

    _, fac, readers = run_traced(tmp_path, options, nodes=1, body=body)
    assert fac.samplers[0].jittered_samples > 0
    # Determinism: same seed, same jitter count.
    _, fac2, _ = run_traced(tmp_path / "again", options, nodes=1, body=body)
    assert fac2.samplers[0].jittered_samples == fac.samplers[0].jittered_samples


def test_double_close_rejected(tmp_path):
    cl = Cluster(ClusterSpec(n_nodes=1))
    fac = TraceFacility(cl, tmp_path)
    fac.close()
    with pytest.raises(TraceError):
        fac.close()


def test_events_cut_counter(tmp_path):
    _, fac, readers = run_traced(tmp_path)
    assert fac.sessions[0].events_cut == len(readers[0].events())
