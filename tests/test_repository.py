"""Tests for the multi-trace repository behind ``ute-serve``.

Covers the dataset registry (register/attach/manifest/crash sweep), the
lazy session pool and its global memory budget (LRU eviction, monotonic
aggregate counters, per-dataset ETags), per-tenant quotas, the upload
endpoint, legacy route aliasing, background index builds, and the remote
``--server`` mode of ``ute-query``/``ute-stats``.
"""

import json
import os
import socket
import threading
import urllib.parse

import pytest

from repro import cli
from repro.core import standard_profile
from repro.core.atomicio import AtomicFile, is_temp_artifact
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.repository import (
    DEFAULT_DATASET,
    INDEX_FAILED,
    INDEX_NONE,
    INDEX_READY,
    DatasetExists,
    Repository,
    RepositoryError,
    TenantQuotas,
    check_dataset_name,
)
from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.utils.slog import SlogWriter

PROFILE = standard_profile()
SEND = IntervalType.for_mpi_fn(0)
RECV = IntervalType.for_mpi_fn(1)


def rec(itype=IntervalType.RUNNING, start=0, dura=100, **extra):
    return IntervalRecord(itype, BeBits.COMPLETE, start, dura, 0, 0, 0, extra)


def make_slog(path, *, n=40, bins=10, frame_bytes=512):
    records = []
    for i in range(n):
        t = i * 250
        records.append(rec(SEND, start=t, dura=90, msgSizeSent=64, seqno=i + 1))
        records.append(rec(RECV, start=t + 100, dura=80, msgSizeRecv=64, seqno=i + 1))
        records.append(rec(IntervalType.RUNNING, start=t + 190, dura=50))
    t1 = max(r.end for r in records)
    writer = SlogWriter(
        path, PROFILE,
        ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0")]),
        field_mask=MASK_ALL_MERGED, time_range=(0, t1),
        preview_bins=bins, frame_bytes=frame_bytes, node_cpus={0: 2},
    )
    for record in sorted(records, key=lambda r: r.end):
        writer.write(record)
    return writer.close()


@pytest.fixture(scope="module")
def slog_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("repo-src") / "run.slog"
    make_slog(path)
    return path.read_bytes()


def _walk_all_frames(session) -> int:
    """Decode every frame through the serving path; return frame count."""
    count = session.frame_count()
    for i in range(count):
        session.frame_payload(i)
    return count


def _run_in_child(fn) -> int:
    """Fork, run ``fn`` in the child (which must ``os._exit``), and return
    the child's exit status."""
    pid = os.fork()
    if pid == 0:
        try:
            fn()
        finally:
            os._exit(1)  # fn is expected to _exit itself; never fall through
    _pid, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


# --------------------------------------------------------------- registry


class TestRegistry:
    def test_register_names_info(self, tmp_path, slog_bytes):
        repo = Repository(tmp_path / "root", build_indexes=False)
        repo.register("alpha", data=slog_bytes)
        repo.register("beta", data=slog_bytes)
        assert repo.names() == ["alpha", "beta"]
        assert repo.has("alpha") and not repo.has("gamma")
        info = {d["name"]: d for d in repo.info()}
        assert info["alpha"]["bytes"] == len(slog_bytes)
        assert info["alpha"]["managed"] is True
        assert info["alpha"]["open"] is False
        assert (tmp_path / "root" / "alpha" / "trace.slog").is_file()
        repo.close()

    def test_register_duplicate(self, tmp_path, slog_bytes):
        repo = Repository(tmp_path / "root", build_indexes=False)
        repo.register("alpha", data=slog_bytes)
        with pytest.raises(DatasetExists):
            repo.register("alpha", data=slog_bytes)
        repo.close()

    @pytest.mark.parametrize(
        "name", ["", ".hidden", "../escape", "a/b", "sp ace", "x" * 101]
    )
    def test_bad_names(self, name):
        with pytest.raises(RepositoryError):
            check_dataset_name(name)

    def test_rootless_rejects_register(self, slog_bytes):
        repo = Repository(None)
        with pytest.raises(RepositoryError, match="no root"):
            repo.register("alpha", data=slog_bytes)
        repo.close()

    def test_register_rejects_garbage(self, tmp_path):
        repo = Repository(tmp_path / "root", build_indexes=False)
        with pytest.raises(RepositoryError):
            repo.register("junk", data=b"this is not a slog file")
        assert repo.names() == []
        assert not (tmp_path / "root" / "junk").exists()
        repo.close()

    def test_register_from_source(self, tmp_path, slog_bytes):
        src = tmp_path / "copy-me.slog"
        src.write_bytes(slog_bytes)
        repo = Repository(tmp_path / "root", build_indexes=False)
        dataset = repo.register("alpha", source=src)
        assert dataset.managed and dataset.bytes == len(slog_bytes)
        repo.close()

    def test_attach_missing_file(self, tmp_path):
        repo = Repository(None)
        with pytest.raises(RepositoryError, match="not found"):
            repo.attach("alpha", tmp_path / "nope.slog")
        repo.close()

    def test_manifest_survives_reopen(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        repo.register("alpha", data=slog_bytes)
        repo.register("beta", data=slog_bytes)
        repo.close()
        reopened = Repository(root, build_indexes=False)
        assert reopened.names() == ["alpha", "beta"]
        session = reopened.session("alpha")
        assert session.frame_count() >= 2
        reopened.close()

    def test_default_resolution(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        assert repo.default is None
        repo.register("zeta", data=slog_bytes)
        repo.register("alpha", data=slog_bytes)
        assert repo.default == "alpha"  # sorted-first fallback
        repo.register(DEFAULT_DATASET, data=slog_bytes)
        assert repo.default == DEFAULT_DATASET
        repo.close()
        pinned = Repository(root, build_indexes=False, default_dataset="zeta")
        assert pinned.default == "zeta"
        pinned.close()


# ----------------------------------------------------------- crash safety


class TestCrashSafety:
    def test_startup_sweeps_upload_debris(self, tmp_path, slog_bytes):
        """An upload killed between its data commit and its manifest
        commit leaves an unmanifested dataset directory (plus whatever
        temp artifacts were in flight); the next startup removes both
        without touching the surviving dataset."""
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        repo.register("alpha", data=slog_bytes)
        repo.close()

        def child():
            crashing = Repository(root, build_indexes=False)
            # Die exactly between the data commit and the manifest
            # commit — the window register() closes via ordering.
            crashing._save_manifest = lambda: os._exit(3)
            # Also leave an uncommitted temp sibling, as a killed
            # atomic write would.
            AtomicFile(root / "alpha" / "stray.bin").write(b"half")
            crashing.register("beta", data=slog_bytes)
            os._exit(4)  # not reached: _save_manifest exits first

        assert _run_in_child(child) == 3
        # The debris is on disk before the sweep...
        assert (root / "beta" / "trace.slog").is_file()
        assert any(is_temp_artifact(p) for p in root.rglob("*") if p.is_file())
        # ...and gone after it, with the survivor intact.
        swept = Repository(root, build_indexes=False)
        assert swept.names() == ["alpha"]
        assert not (root / "beta").exists()
        assert not any(is_temp_artifact(p) for p in root.rglob("*") if p.is_file())
        assert swept.session("alpha").frame_count() >= 2
        swept.close()

    def test_manifest_entry_with_missing_data_is_dropped(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        repo.register("alpha", data=slog_bytes)
        repo.register("beta", data=slog_bytes)
        repo.close()
        (root / "beta" / "trace.slog").unlink()
        reopened = Repository(root, build_indexes=False)
        assert reopened.names() == ["alpha"]
        reopened.close()


# --------------------------------------------- session pool + memory budget


class TestSessionBudget:
    @pytest.fixture()
    def roots(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        for name in ("d0", "d1", "d2", "d3"):
            repo.register(name, data=slog_bytes)
        repo.close()
        return root

    def _full_session_bytes(self, roots) -> int:
        repo = Repository(roots, build_indexes=False)
        session = repo.session("d0")
        _walk_all_frames(session)
        resident = session.resident_bytes()
        repo.close()
        assert resident > 0
        return resident

    def test_lru_order_and_touch(self, roots):
        repo = Repository(roots, build_indexes=False)
        for name in ("d0", "d1", "d2"):
            repo.session(name)
        assert repo.open_sessions() == ["d0", "d1", "d2"]
        repo.session("d0")  # touch: hottest moves to the end
        assert repo.open_sessions() == ["d1", "d2", "d0"]
        repo.close()

    def test_budget_evicts_lru_sessions(self, roots):
        """Four datasets walked under a budget that fits roughly one
        session's frames: cold sessions are evicted in LRU order, the
        aggregate stays within budget, and every counter is monotonic."""
        one = self._full_session_bytes(roots)
        repo = Repository(roots, budget_bytes=int(one * 1.5), build_indexes=False)
        names = ["d0", "d1", "d2", "d3"]
        frames = 0
        for name in names:
            session = repo.acquire(name)
            try:
                frames += _walk_all_frames(session)
            finally:
                repo.release(name)
            # The admission governor keeps the aggregate under budget at
            # every instant, so certainly at request boundaries.
            assert repo.resident_bytes() <= repo.budget_bytes
        assert repo.sessions_evicted >= 2
        # Survivors are the most recently used.
        survivors = repo.open_sessions()
        assert survivors == names[len(names) - len(survivors):]
        stats = repo.aggregate_stats()
        assert stats["misses"] == frames  # every frame decoded once
        assert stats["evictions"] > 0  # evicted sessions published theirs
        # Monotonic: folding retired counters means re-opening an evicted
        # dataset never makes an aggregate go backwards.
        before = repo.aggregate_stats()
        session = repo.acquire("d0")  # was evicted; re-opens on demand
        try:
            session.frame_payload(0)
        finally:
            repo.release("d0")
        after = repo.aggregate_stats()
        for key in ("hits", "misses", "evictions", "fetch_count", "bytes_fetched"):
            assert after[key] >= before[key], key
        repo.close()

    def test_pinned_session_survives_enforcement(self, roots):
        one = self._full_session_bytes(roots)
        repo = Repository(roots, budget_bytes=max(1, one // 2), build_indexes=False)
        session = repo.acquire("d0")
        try:
            _walk_all_frames(session)
            # d0 is pinned: enforcement may shrink its cache but must not
            # close it while the request is in flight.
            repo.enforce_budget()
            assert "d0" in repo.open_sessions()
            session.frame_payload(0)  # still usable
        finally:
            repo.release("d0")
        repo.close()

    def test_eviction_metrics_via_server(self, roots):
        one = self._full_session_bytes(roots)
        config = ServerConfig(port=0, memory_budget_bytes=int(one * 1.2))
        with ServerThread(Repository(roots, budget_bytes=int(one * 1.2),
                                     build_indexes=False), config) as srv:
            client = ServeClient(srv.base_url)
            for name in ("d0", "d1", "d2", "d3"):
                scoped = client.for_dataset(name)
                count = scoped.frames()["count"]
                for i in range(count):
                    scoped.frame(i)
                resident = client.metric_value("ute_serve_frame_cache_resident_bytes")
                assert resident <= client.metric_value("ute_serve_memory_budget_bytes")
            assert client.metric_value("ute_serve_sessions_evicted_total") >= 1
            assert client.metric_value("ute_serve_frame_cache_evictions_total") > 0
            assert client.metric_value("ute_serve_sessions_open") < 4


# ------------------------------------------------------------------ ETags


class TestDatasetEtags:
    def test_identical_files_get_distinct_etags(self, tmp_path, slog_bytes):
        """Two datasets with byte-identical files and identical mtimes
        must not share validators: an If-None-Match for one dataset's
        frames can never 304 against the other's."""
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        repo.register("a", data=slog_bytes)
        repo.register("b", data=slog_bytes)
        when = 1_700_000_000
        os.utime(root / "a" / "trace.slog", (when, when))
        os.utime(root / "b" / "trace.slog", (when, when))
        with ServerThread(repo, ServerConfig(port=0)) as srv:
            client = ServeClient(srv.base_url)
            etag_a = client.request("/api/d/a/frames").headers["etag"]
            etag_b = client.request("/api/d/b/frames").headers["etag"]
            assert etag_a != etag_b
            assert etag_a.strip('"').startswith("a-")
            assert etag_b.strip('"').startswith("b-")
            # Cross-replay: one dataset's validator never matches the other.
            crossed = client.request(
                "/api/d/b/frames", headers={"If-None-Match": etag_a}
            )
            assert crossed.status == 200


# ----------------------------------------------------------------- quotas


class TestQuotas:
    def test_bucket_paces_and_reports_wait(self):
        quotas = TenantQuotas(default_rps=10.0, burst=2)
        assert quotas.enabled
        now = 100.0
        assert quotas.try_acquire("t", now=now) is None
        assert quotas.try_acquire("t", now=now) is None
        wait = quotas.try_acquire("t", now=now)
        assert wait is not None and 0 < wait <= 0.1
        # Tokens regenerate with time; other tenants are independent.
        assert quotas.try_acquire("t", now=now + 0.2) is None
        assert quotas.try_acquire("other", now=now) is None

    def test_disabled_by_default(self):
        quotas = TenantQuotas()
        assert not quotas.enabled
        assert quotas.rate_for("anyone") == 0.0

    def test_overrides(self):
        quotas = TenantQuotas(default_rps=100.0, overrides={"slow": 1.0})
        assert quotas.rate_for("slow") == 1.0
        assert quotas.rate_for("fast") == 100.0

    def test_server_sheds_429_with_retry_after(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        repo.register("a", data=slog_bytes)
        config = ServerConfig(port=0, quota_rps=0.0,
                              quota_overrides={"greedy": 2.0}, quota_burst=2)
        with ServerThread(repo, config) as srv:
            greedy = ServeClient(srv.base_url, tenant="greedy", use_etags=False)
            statuses = [greedy.request("/api/frames").status for _ in range(6)]
            assert 429 in statuses
            rejected = next(
                r for r in (greedy.request("/api/frames") for _ in range(6))
                if r.status == 429
            )
            assert float(rejected.headers["retry-after"]) > 0
            # Unlimited tenants are untouched while greedy is shedding.
            calm = ServeClient(srv.base_url, use_etags=False)
            assert calm.request("/api/frames").status == 200
            # And a retrying client rides out the pacing transparently.
            patient = ServeClient(srv.base_url, tenant="greedy",
                                  use_etags=False, retries=4)
            assert patient.request("/api/frames").status == 200
            metrics = calm.metrics()
            assert 'ute_serve_quota_rejected_total{tenant="greedy"}' in metrics


# ---------------------------------------------------------------- uploads


class TestUploadEndpoint:
    @pytest.fixture()
    def served(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        repo.register("seed", data=slog_bytes)
        with ServerThread(repo, ServerConfig(port=0)) as srv:
            yield srv, ServeClient(srv.base_url)

    def test_upload_register_and_serve(self, served, slog_bytes):
        srv, client = served
        response = client.upload_dataset("fresh", slog_bytes)
        assert response.status == 201
        body = response.json()
        assert body["name"] == "fresh" and body["bytes"] == len(slog_bytes)
        listing = client.datasets()
        assert "fresh" in {d["name"] for d in listing["datasets"]}
        assert client.for_dataset("fresh").frames()["count"] >= 2

    def test_upload_conflict(self, served, slog_bytes):
        _, client = served
        assert client.upload_dataset("seed", slog_bytes).status == 409

    def test_upload_rejects_garbage(self, served):
        _, client = served
        response = client.upload_dataset("junk", b"not a slog")
        assert response.status == 400
        assert "junk" in response.text

    def test_upload_requires_name_and_body(self, served, slog_bytes):
        _, client = served
        assert client.request("/api/datasets", method="POST",
                              body=slog_bytes).status == 400
        assert client.request("/api/datasets?name=empty", method="POST",
                              body=b"").status == 400

    def test_post_elsewhere_is_405(self, served):
        _, client = served
        assert client.request("/api/frames", method="POST", body=b"x").status == 405

    def test_post_without_content_length_is_411(self, served):
        srv, _ = served
        parts = urllib.parse.urlsplit(srv.base_url)
        with socket.create_connection((parts.hostname, parts.port), timeout=10) as sock:
            sock.sendall(
                b"POST /api/datasets?name=x HTTP/1.1\r\n"
                b"Host: test\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
            status = sock.recv(4096).split(b"\r\n", 1)[0]
        assert b"411" in status

    def test_upload_to_rootless_server_is_rejected(self, tmp_path, slog_bytes):
        path = tmp_path / "run.slog"
        path.write_bytes(slog_bytes)
        with ServerThread(path, ServerConfig(port=0)) as srv:
            client = ServeClient(srv.base_url)
            response = client.upload_dataset("new", slog_bytes)
            assert response.status == 400
            assert "disabled" in response.text


# -------------------------------------------------------------- aliasing


class TestRouteAliasing:
    @pytest.fixture()
    def served(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        repo.register(DEFAULT_DATASET, data=slog_bytes)
        repo.register("other", data=slog_bytes)
        with ServerThread(repo, ServerConfig(port=0)) as srv:
            yield srv, ServeClient(srv.base_url, use_etags=False)

    def test_legacy_routes_alias_default_dataset(self, served):
        _, client = served
        legacy = client.get_json("/api/preview")
        scoped = client.get_json(f"/api/d/{DEFAULT_DATASET}/preview")
        assert legacy == scoped
        legacy_frame = client.get_json("/api/frame/0")
        scoped_frame = client.get_json(f"/api/d/{DEFAULT_DATASET}/frame/0")
        assert legacy_frame == scoped_frame

    def test_unknown_dataset_404(self, served):
        _, client = served
        response = client.request("/api/d/nope/preview")
        assert response.status == 404
        assert "nope" in response.text

    def test_viewer_pages(self, served):
        _, client = served
        root_page = client.request("/")
        assert root_page.status == 200
        assert 'const API = "/api"' in root_page.text
        scoped = client.request("/d/other/")
        assert scoped.status == 200
        assert 'const API = "/api/d/other"' in scoped.text
        landing = client.request("/datasets")
        assert landing.status == 200
        assert "other" in landing.text


# ----------------------------------------------------------- index builds


class TestIndexBuilds:
    def test_background_build_reaches_ready(self, tmp_path, slog_bytes):
        repo = Repository(tmp_path / "root", build_indexes=True)
        repo.register("a", data=slog_bytes)
        assert repo.wait_index("a") == INDEX_READY
        assert (tmp_path / "root" / "a" / "trace.slog.uteidx").is_file()
        # The session sees the index whether the build finished before or
        # after it opened (reload_index covers the latter).
        assert repo.session("a").index is not None
        assert repo.any_index_loaded()
        info = {d["name"]: d for d in repo.info()}
        assert info["a"]["index"] == INDEX_READY
        repo.close()

    def test_failed_build_degrades(self, tmp_path, slog_bytes, monkeypatch):
        def boom(handle):
            raise RuntimeError("synthetic build failure")

        monkeypatch.setattr("repro.query.build_index", boom)
        repo = Repository(tmp_path / "root", build_indexes=True)
        repo.register("a", data=slog_bytes)
        assert repo.wait_index("a") == INDEX_FAILED
        dataset = repo.get("a")
        assert "synthetic build failure" in dataset.index_error
        assert repo.index_builds_failed == 1
        # The dataset still serves — full scans, no index.
        session = repo.session("a")
        assert session.index is None
        assert session.frame_count() >= 2
        repo.close()

    def test_builds_disabled(self, tmp_path, slog_bytes):
        repo = Repository(tmp_path / "root", build_indexes=False)
        repo.register("a", data=slog_bytes)
        assert repo.wait_index("a") == INDEX_NONE
        assert not (tmp_path / "root" / "a" / "trace.slog.uteidx").exists()
        repo.close()

    def test_reopen_adopts_existing_sidecar(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=True)
        repo.register("a", data=slog_bytes)
        repo.wait_index("a")
        repo.close()
        reopened = Repository(root, build_indexes=True)
        # No rebuild needed: the fresh sidecar is adopted immediately.
        assert reopened.get("a").index_status == INDEX_READY
        assert reopened.builds_pending() == 0
        reopened.close()


# --------------------------------------------------------- remote CLI mode


class TestRemoteCLI:
    @pytest.fixture()
    def served(self, tmp_path, slog_bytes):
        root = tmp_path / "root"
        repo = Repository(root, build_indexes=False)
        repo.register("a", data=slog_bytes)
        with ServerThread(repo, ServerConfig(port=0)) as srv:
            yield srv

    def test_remote_query_tsv(self, served, capsys):
        assert cli.main_query([
            "--server", served.base_url, "--dataset", "a",
            "--group-by", "type", "--agg", "count",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("type\tcount")

    def test_remote_query_json_and_explain(self, served, capsys):
        assert cli.main_query([
            "--server", served.base_url, "--dataset", "a",
            "--limit", "2", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 2
        assert cli.main_query([
            "--server", served.base_url, "--limit", "2", "--explain",
        ]) == 0
        captured = capsys.readouterr()
        assert "start\tend" in captured.out
        assert "plan:" in captured.err  # the explain line goes to stderr

    def test_remote_query_rejects_local_flags(self, served, capsys):
        assert cli.main_query([
            "trace.slog", "--server", served.base_url,
        ]) == 2
        assert cli.main_query([
            "--server", served.base_url, "--build-index",
        ]) == 2
        capsys.readouterr()

    def test_remote_stats(self, served, tmp_path, capsys):
        program = tmp_path / "prog.stats"
        program.write_text('table name=n x=("node", node) y=("c", dura, count)\n')
        assert cli.main_stats([
            "--server", served.base_url, "--dataset", "a",
            "--program", str(program),
        ]) == 0
        assert "# table n" in capsys.readouterr().out
        assert cli.main_stats([
            "--server", served.base_url, "--dataset", "a",
            "--program", str(program), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tables"][0]["name"] == "n"

    def test_remote_stats_rejects_local_flags(self, served, tmp_path, capsys):
        program = tmp_path / "prog.stats"
        program.write_text('table name=n x=("node", node) y=("c", dura, count)\n')
        assert cli.main_stats(["--server", served.base_url]) == 2
        assert cli.main_stats([
            "local.intervals", "--server", served.base_url,
            "--program", str(program),
        ]) == 2
        assert cli.main_stats([
            "--server", served.base_url, "--program", str(program),
            "--svg", "out.svg",
        ]) == 2
        capsys.readouterr()

    def test_remote_query_unknown_dataset(self, served, capsys):
        assert cli.main_query([
            "--server", served.base_url, "--dataset", "nope", "--limit", "1",
        ]) == 2
        assert "nope" in capsys.readouterr().err
