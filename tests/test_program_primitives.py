"""Tests for the workload-authoring primitives and cluster defaults."""

import pytest

from repro.cluster.clocks import ClockSpec
from repro.cluster.engine import NS_PER_SEC
from repro.cluster.machine import Cluster, ClusterSpec, default_clock_spec
from repro.cluster.program import Compute, Sleep, Spawn, busy_loop, compute_seconds
from repro.errors import SimulationError
from repro.tracing.hooks import (
    HookId,
    MPI_FN_IDS,
    MPI_FN_NAMES,
    decode_hookword,
    encode_hookword,
    hook_name,
    is_mpi_begin,
    is_mpi_end,
    mpi_fn_of_hook,
)


class TestPrimitives:
    def test_compute_seconds_conversion(self):
        assert Compute.seconds(0.5).ns == 500_000_000

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-5)

    def test_compute_truncates_to_int(self):
        assert Compute(10.7).ns == 10

    def test_compute_seconds_generator(self):
        gen = compute_seconds(0.001)
        request = next(gen)
        assert isinstance(request, Compute)
        assert request.ns == 1_000_000

    def test_busy_loop_yields_n_computes(self):
        requests = list(busy_loop(3, 100))
        assert len(requests) == 3
        assert all(isinstance(r, Compute) and r.ns == 100 for r in requests)

    def test_spawn_defaults(self):
        spawn = Spawn(lambda: iter(()))
        assert spawn.args == ()
        assert spawn.category == "user"


class TestClusterDefaults:
    def test_default_clock_specs_distinct(self):
        specs = [default_clock_spec(i) for i in range(12)]
        drifts = [s.drift_ppm for s in specs]
        assert len(set(drifts)) == len(drifts)  # all different
        offsets = [s.offset_ns for s in specs]
        assert offsets == sorted(offsets)

    def test_cluster_spec_explicit_clocks_win(self):
        spec = ClusterSpec(clocks=(ClockSpec(offset_ns=42),))
        assert spec.clock_spec(0).offset_ns == 42
        # Beyond the explicit list: the default family.
        assert spec.clock_spec(1) == default_clock_spec(1)

    def test_zero_node_cluster_rejected(self):
        with pytest.raises(SimulationError):
            Cluster(ClusterSpec(n_nodes=0))

    def test_node_local_time(self):
        cluster = Cluster(ClusterSpec(n_nodes=2))
        assert cluster.nodes[1].local_time(0) == 1_000_000  # 1 ms offset

    def test_run_until(self):
        cluster = Cluster(ClusterSpec(n_nodes=1))
        cluster.engine.schedule(5 * NS_PER_SEC, lambda: None)
        cluster.run(until_ns=NS_PER_SEC)
        assert cluster.engine.now == NS_PER_SEC


class TestHookwords:
    def test_encode_decode_roundtrip(self):
        word = encode_hookword(0x105, 48)
        assert decode_hookword(word) == (0x105, 48)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_hookword(0, 10)
        with pytest.raises(ValueError):
            encode_hookword(0x10000, 10)
        with pytest.raises(ValueError):
            encode_hookword(5, 0x10000 + 1)

    def test_mpi_hook_ranges(self):
        for fn_id, name in enumerate(MPI_FN_NAMES):
            begin = 0x100 + fn_id
            end = 0x200 + fn_id
            assert is_mpi_begin(begin) and not is_mpi_end(begin)
            assert is_mpi_end(end) and not is_mpi_begin(end)
            assert mpi_fn_of_hook(begin) == fn_id
            assert mpi_fn_of_hook(end) == fn_id
            assert hook_name(begin) == f"{name}:begin"
            assert hook_name(end) == f"{name}:end"

    def test_non_mpi_hook_names(self):
        assert hook_name(HookId.DISPATCH) == "DISPATCH"
        assert hook_name(HookId.IO_BEGIN) == "IO_BEGIN"
        assert hook_name(0xBEE) == "hook_0xbee"

    def test_mpi_fn_of_non_mpi_rejected(self):
        with pytest.raises(ValueError):
            mpi_fn_of_hook(int(HookId.DISPATCH))

    def test_fn_ids_consistent(self):
        for name, fn_id in MPI_FN_IDS.items():
            assert MPI_FN_NAMES[fn_id] == name


class TestEngineDeterminism:
    def test_identical_runs_identical_traces(self, tmp_path):
        """The whole stack is deterministic: same spec, same events."""
        from repro.tracing import RawTraceReader
        from repro.workloads import run_sppm
        from repro.workloads.sppm import SppmConfig

        runs = []
        for tag in ("a", "b"):
            run = run_sppm(tmp_path / tag, SppmConfig(iterations=2))
            # System tids come from a process-global counter, so normalize
            # them to first-appearance indices before comparing runs.
            tid_index: dict[int, int] = {}
            events = []
            for p in run.raw_paths:
                for e in RawTraceReader(p):
                    tid = tid_index.setdefault(e.system_tid, len(tid_index))
                    events.append((e.hook_id, e.local_ts, tid, e.cpu, e.args))
            runs.append(events)
        assert runs[0] == runs[1]
