"""Tests for the preview model, interesting-range detection, and the
Jumpshot viewer."""

import numpy as np
import pytest

from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.errors import FormatError
from repro.utils.slog import SlogFile, SlogWriter
from repro.viz.jumpshot import Jumpshot
from repro.viz.preview import Preview, interesting_ranges

PROFILE = standard_profile()
SEND = IntervalType.for_mpi_fn(0)


def make_slog(path, records, *, bins=10, frame_bytes=512):
    t1 = max((r.end for r in records), default=1)
    writer = SlogWriter(
        path, PROFILE,
        ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0")]),
        field_mask=MASK_ALL_MERGED, time_range=(0, max(t1, 1)),
        preview_bins=bins, frame_bytes=frame_bytes, node_cpus={0: 2},
    )
    for rec in sorted(records, key=lambda r: r.end):
        writer.write(rec)
    return writer.close()


def rec(itype=IntervalType.RUNNING, start=0, dura=100, **extra):
    return IntervalRecord(itype, BeBits.COMPLETE, start, dura, 0, 0, 0, extra)


def phased_records():
    """Busy MPI at both ends, quiet Running in the middle."""
    records = []
    for i in range(10):  # bins 0-0.9 of [0, 10000)
        records.append(rec(SEND, start=i * 100, dura=90, msgSizeSent=1, seqno=i + 1))
    records.append(rec(IntervalType.RUNNING, start=1000, dura=8000))
    for i in range(10):
        records.append(
            rec(SEND, start=9000 + i * 100, dura=90, msgSizeSent=1, seqno=100 + i)
        )
    return records


class TestPreview:
    def test_from_slog(self, tmp_path):
        path = make_slog(tmp_path / "a.slog", phased_records())
        preview = Preview.from_slog(SlogFile(path))
        assert preview.bins == 10
        assert SEND in preview.itypes
        assert preview.state_names[SEND] == "MPI_Send"

    def test_interesting_excludes_running(self, tmp_path):
        path = make_slog(tmp_path / "b.slog", phased_records())
        preview = Preview.from_slog(SlogFile(path))
        interesting = preview.interesting_per_bin()
        # First and last bins busy; middle quiet.
        assert interesting[0] > 0 and interesting[-1] > 0
        assert np.all(interesting[2:8] == 0)

    def test_interesting_ranges_detection(self, tmp_path):
        path = make_slog(tmp_path / "c.slog", phased_records())
        preview = Preview.from_slog(SlogFile(path))
        ranges = interesting_ranges(preview, threshold=0.5)
        assert len(ranges) == 2
        (lo1, hi1), (lo2, hi2) = ranges
        assert lo1 == pytest.approx(0.0)
        assert hi2 == pytest.approx(preview.bin_edges_seconds()[-1])

    def test_all_quiet_returns_empty(self, tmp_path):
        path = make_slog(tmp_path / "d.slog", [rec(start=0, dura=1000)])
        preview = Preview.from_slog(SlogFile(path))
        assert interesting_ranges(preview) == []

    def test_render_svg(self, tmp_path):
        path = make_slog(tmp_path / "e.slog", phased_records())
        preview = Preview.from_slog(SlogFile(path))
        svg = preview.render_svg(tmp_path / "p.svg")
        assert svg.exists()
        assert "<svg" in svg.read_text()


class TestJumpshot:
    def test_locate_and_frame_records(self, tmp_path):
        records = [rec(start=i * 100, dura=90) for i in range(100)]
        path = make_slog(tmp_path / "f.slog", records, frame_bytes=512)
        viewer = Jumpshot(path)
        frame = viewer.locate(0.0000050)  # 5000 ticks
        assert frame.contains_time(5000)
        recs = viewer.frame_records(frame)
        assert recs

    def test_locate_outside_run_raises(self, tmp_path):
        path = make_slog(tmp_path / "g.slog", [rec(dura=100)])
        with pytest.raises(FormatError, match="no frame"):
            Jumpshot(path).locate(99.0)

    def test_render_frame_at(self, tmp_path):
        records = [rec(start=i * 100, dura=90) for i in range(200)]
        path = make_slog(tmp_path / "h.slog", records, frame_bytes=512)
        viewer = Jumpshot(path)
        svg = viewer.render_frame_at(0.0000050, tmp_path / "frame.svg")
        assert svg.exists()

    def test_all_view_kinds_render(self, tmp_path):
        records = phased_records()
        path = make_slog(tmp_path / "i.slog", records)
        viewer = Jumpshot(path)
        for kind in ("thread", "thread-connected", "processor",
                     "thread-processor", "processor-thread"):
            svg = viewer.render_whole_run(tmp_path / f"{kind}.svg", kind=kind)
            assert svg.exists()

    def test_unknown_view_kind_rejected(self, tmp_path):
        path = make_slog(tmp_path / "j.slog", [rec()])
        viewer = Jumpshot(path)
        with pytest.raises(FormatError, match="unknown view kind"):
            viewer.build_view([], "pie-chart")

    def test_cpus_per_node_from_slog(self, tmp_path):
        path = make_slog(tmp_path / "k.slog", [rec()])
        viewer = Jumpshot(path)
        view = viewer.build_view(viewer.slog.records(), "processor")
        assert len(view.rows) == 2  # node_cpus={0: 2}


class TestStatViewer:
    def test_binned_table_svg(self, tmp_path):
        from repro.utils.stats import generate_tables
        from repro.viz.statviewer import render_binned_table_svg

        records = phased_records()
        program = (
            'table name=hot condition=(type != 0) '
            'x=("node", node) x=("bin", bin(start, 0, 0.00001, 10)) '
            'y=("sum", dura, sum)'
        )
        (table,) = generate_tables(records, program)
        svg = render_binned_table_svg(table, tmp_path / "b.svg", total_seconds=0.00001)
        assert svg.exists()

    def test_binned_requires_two_x(self, tmp_path):
        from repro.utils.stats import StatsTable
        from repro.viz.statviewer import render_binned_table_svg

        table = StatsTable("t", ("only",), ("y",), {(1,): (2.0,)})
        with pytest.raises(ValueError, match="needs"):
            render_binned_table_svg(table, tmp_path / "x.svg")

    def test_bar_table_svg(self, tmp_path):
        from repro.utils.stats import StatsTable
        from repro.viz.statviewer import render_table_svg

        table = StatsTable(
            "by_type", ("type",), ("total",),
            {(0,): (1.5,), (1,): (0.5,)},
        )
        svg = render_table_svg(
            table, tmp_path / "bar.svg", name_of={0: "Running", 1: "MPI_Send"}
        )
        assert "Running" in svg.read_text()
