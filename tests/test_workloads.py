"""Tests for the traceable workloads: each runs, traces, and exhibits the
structure its figure depends on."""

import pytest

from repro.core import IntervalReader, standard_profile
from repro.core.records import IntervalType
from repro.core.threadtable import THREAD_TYPE_MPI, THREAD_TYPE_SYSTEM, THREAD_TYPE_USER
from repro.tracing.hooks import MPI_FN_IDS, hook_for_mpi_begin, is_mpi_begin
from repro.tracing.rawfile import RawTraceReader
from repro.utils.convert import convert_traces
from repro.workloads import (
    run_flash,
    run_pingpong,
    run_sppm,
    run_stencil,
    run_synthetic,
)
from repro.workloads.flash import FlashConfig
from repro.workloads.pingpong import PingPongConfig
from repro.workloads.sppm import SppmConfig
from repro.workloads.stencil import StencilConfig
from repro.workloads.synthetic import SyntheticConfig

PROFILE = standard_profile()


class TestPingPong:
    def test_produces_balanced_sends_and_recvs(self, tmp_path):
        run = run_pingpong(tmp_path, PingPongConfig(repeats=3, sizes=(64,)))
        events = [e for p in run.raw_paths for e in RawTraceReader(p)]
        sends = sum(
            1 for e in events if e.hook_id == hook_for_mpi_begin(MPI_FN_IDS["MPI_Send"])
        )
        recvs = sum(
            1 for e in events if e.hook_id == hook_for_mpi_begin(MPI_FN_IDS["MPI_Recv"])
        )
        assert sends == recvs == 6  # 3 repeats x 2 directions

    def test_one_raw_file_per_node(self, tmp_path):
        run = run_pingpong(tmp_path)
        assert len(run.raw_paths) == 2


class TestStencil:
    def test_nonblocking_ops_traced(self, tmp_path):
        run = run_stencil(tmp_path, StencilConfig(iterations=2))
        events = [e for p in run.raw_paths for e in RawTraceReader(p)]
        hooks = {e.hook_id for e in events}
        for fn in ("MPI_Isend", "MPI_Irecv", "MPI_Waitall"):
            assert hook_for_mpi_begin(MPI_FN_IDS[fn]) in hooks

    def test_all_ranks_finish(self, tmp_path):
        run = run_stencil(tmp_path, StencilConfig(iterations=2))
        from repro.cluster.scheduler import ThreadState

        assert all(t.state is ThreadState.DONE for t in run.runtime.main_threads)


class TestSppm:
    @pytest.fixture(scope="class")
    def converted(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("sppm")
        run = run_sppm(tmp / "raw", SppmConfig(iterations=2))
        result = convert_traces(run.raw_paths, tmp / "ivl")
        readers = [IntervalReader(p, PROFILE) for p in result.interval_paths]
        return run, result, readers

    def test_thread_categories(self, converted):
        _, _, readers = converted
        for reader in readers:
            table = reader.thread_table
            assert len(table.of_type(THREAD_TYPE_MPI)) == 1
            assert len(table.of_type(THREAD_TYPE_USER)) == 3  # 2 active + idle
            assert len(table.of_type(THREAD_TYPE_SYSTEM)) == 2

    def test_one_idle_user_thread_per_node(self, converted):
        _, _, readers = converted
        for reader in readers:
            busy = {}
            for r in reader.intervals():
                if r.duration > 0:
                    busy[r.thread] = busy.get(r.thread, 0) + r.duration
            user_tids = {e.logical_tid for e in reader.thread_table.of_type(THREAD_TYPE_USER)}
            idle = [t for t in user_tids if busy.get(t, 0) == 0]
            assert len(idle) == 1

    def test_mpi_calls_only_on_mpi_thread(self, converted):
        _, _, readers = converted
        for reader in readers:
            mpi_tid = reader.thread_table.of_type(THREAD_TYPE_MPI)[0].logical_tid
            for r in reader.intervals():
                if IntervalType.is_mpi(r.itype):
                    assert r.thread == mpi_tid

    def test_markers_present(self, converted):
        _, result, _ = converted
        assert set(result.marker_table.values()) == {"sppm:init", "sppm:timestep"}


class TestFlash:
    def test_phase_markers_defined(self, tmp_path):
        run = run_flash(tmp_path, FlashConfig(iterations=10))
        result = convert_traces(run.raw_paths, tmp_path / "ivl")
        assert set(result.marker_table.values()) == {
            "flash:init", "flash:refine", "flash:checkpoint", "flash:termination",
        }

    def test_refinement_happens_on_schedule(self, tmp_path):
        config = FlashConfig(iterations=10, refine_every=5, checkpoint_every=10)
        run = run_flash(tmp_path, config)
        events = [e for p in run.raw_paths for e in RawTraceReader(p)]
        allgathers = sum(
            1 for e in events
            if e.hook_id == hook_for_mpi_begin(MPI_FN_IDS["MPI_Allgather"])
        )
        # 2 refinements x 4 tasks.
        assert allgathers == 2 * config.n_tasks


class TestSynthetic:
    def test_event_count_scales_linearly_with_rounds(self, tmp_path):
        counts = {}
        for rounds in (20, 80):
            run = run_synthetic(
                tmp_path / str(rounds), SyntheticConfig(rounds=rounds)
            )
            counts[rounds] = sum(len(RawTraceReader(p)) for p in run.raw_paths)
        ratio = counts[80] / counts[20]
        assert 3.2 < ratio < 4.8  # linear-ish in rounds

    def test_deterministic(self, tmp_path):
        """Two identical runs produce byte-identical traces."""
        a = run_synthetic(tmp_path / "a", SyntheticConfig(rounds=15))
        b = run_synthetic(tmp_path / "b", SyntheticConfig(rounds=15))
        for pa, pb in zip(a.raw_paths, b.raw_paths):
            ea = [
                (e.hook_id, e.local_ts, e.cpu, e.args, e.text)
                for e in RawTraceReader(pa)
            ]
            eb = [
                (e.hook_id, e.local_ts, e.cpu, e.args, e.text)
                for e in RawTraceReader(pb)
            ]
            assert ea == eb
