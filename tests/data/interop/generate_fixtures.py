"""Regenerate the interop golden fixtures (deterministic).

Run from the repository root::

    PYTHONPATH=src python tests/data/interop/generate_fixtures.py

Produces, next to this script:

==========================  ===============================================
``golden.ute``              a small hand-verifiable interval file covering
                            every record shape the adapters must carry
                            (plain states, a send/recv pair, a Waitall
                            seqnos vector, markers, IO, a zero-duration
                            interval, and a BEGIN/CONT/END piece chain)
``golden.chrome.json``      its Chrome trace-event export
``golden.otf2.txt``         its OTF2-style text export
``foreign.chrome.json``     a hand-written foreign Chrome trace (no
                            otherData block, float timestamps)
``foreign.otf2.txt``        a hand-written foreign OTF2-style stream with
                            nesting and unknown event types
``salvage.otf2.txt``        the foreign stream plus injected defects, for
                            pinning salvage counters
``manifest.json``           exact record/event counts for every file
==========================  ===============================================

Everything is derived from fixed literals — no randomness, no clocks — so
a rerun is byte-stable and any diff in review is a real behavior change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.fields import MASK_ALL_MERGED
from repro.core.profilefmt import standard_profile
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.core.writer import IntervalFileWriter
from repro.interop import export_chrome_json, export_otf2_text, import_otf2_text

HERE = Path(__file__).resolve().parent
PROFILE = standard_profile()

R = IntervalRecord
C, B, K, E = BeBits.COMPLETE, BeBits.BEGIN, BeBits.CONTINUATION, BeBits.END
SEND = IntervalType.for_mpi_fn(0)       # MPI_Send
RECV = IntervalType.for_mpi_fn(1)       # MPI_Recv
WAITALL = IntervalType.for_mpi_fn(8)    # MPI_Waitall

#: The golden records, in ascending end-time order.  Times are plain
#: ticks at 1 GHz; every adapter-relevant shape appears at least once.
GOLDEN_RECORDS = [
    # An interrupted Running state: BEGIN / CONTINUATION / END pieces.
    R(IntervalType.RUNNING, B, 0, 1_000, 0, 0, 0, {}),
    R(IntervalType.RUNNING, K, 1_500, 500, 0, 0, 0, {}),
    # A zero-duration interval (legal; must survive both formats).
    R(IntervalType.IO, C, 1_800, 0, 0, 0, 0, {"addr": 64}),
    # A send/recv pair across nodes, matched by seqno 9.
    R(SEND, C, 1_000, 1_200, 0, 1, 0,
      {"peer": 1, "tag": 42, "msgSizeSent": 8_192, "seqno": 9, "addr": 4096}),
    R(RECV, C, 900, 1_500, 1, 0, 0,
      {"peer": 0, "tag": 42, "msgSizeRecv": 8_192, "seqno": 9, "addr": 4096}),
    R(IntervalType.RUNNING, E, 2_000, 500, 0, 0, 0, {}),
    # Overlapping marker on the same thread as the Running pieces.
    R(IntervalType.MARKER, C, 200, 2_400, 0, 0, 0,
      {"markerId": 7, "beginAddr": 1 << 40, "endAddr": (1 << 40) + 8}),
    # A Waitall completing two receives at once (vector field).
    R(WAITALL, C, 2_500, 300, 1, 0, 0, {"seqnos": [11, 12], "addr": 0}),
    R(IntervalType.PAGEFAULT, C, 2_850, 10, 1, 0, 1, {"addr": 1 << 20}),
]

GOLDEN_THREADS = ThreadTable([
    ThreadEntry(0, 4_001, 9_001, 0, 0, 0, "rank0"),
    ThreadEntry(1, 4_002, 9_002, 1, 0, 0, "rank1"),
    ThreadEntry(-1, 4_002, 9_003, 1, 1, 1, "worker"),
])

FOREIGN_CHROME = {
    "displayTimeUnit": "ms",
    "traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 7,
         "args": {"name": "solver"}},
        {"name": "compute", "cat": "app", "ph": "X", "pid": 7, "tid": 70,
         "ts": 1.5, "dur": 10.0, "args": {}},
        {"name": "MPI_Send", "cat": "mpi", "ph": "X", "pid": 7, "tid": 70,
         "ts": 12.0, "dur": 3.25, "args": {"peer": 1}},
        {"name": "compute", "cat": "app", "ph": "X", "pid": 8, "tid": 80,
         "ts": 2.0, "dur": 9.5, "args": {}},
        # A counter event the importer must skip (not an X phase).
        {"name": "mem", "ph": "C", "pid": 7, "ts": 5.0,
         "args": {"resident": 123}},
    ],
}

FOREIGN_OTF2 = """\
# a foreign otf2-print-style stream: two locations, nested regions,
# unknown event types, no ute:: attributes anywhere
ENTER 0 100 Region: "main"
ENTER 0 250 Region: "MPI_Send"
MPI_SEND 0 260 Receiver: 1, Tag: 3, Length: 64
LEAVE 0 400 Region: "MPI_Send"
METRIC 0 410 Value: 17
ENTER 1 120 Region: "main"
LEAVE 1 480 Region: "main"
LEAVE 0 500 Region: "main"
"""

#: The foreign stream with injected defects: a malformed line, a LEAVE
#: that matches nothing, and a truncated (never-left) region.
SALVAGE_OTF2 = FOREIGN_OTF2 + """\
this line is not an event at all
LEAVE 1 600 Region: "never_entered"
ENTER 0 700 Region: "truncated_phase"
"""


def main() -> None:
    golden = HERE / "golden.ute"
    with IntervalFileWriter(
        golden, PROFILE, GOLDEN_THREADS, markers={7: "timestep"},
        node_cpus={0: 2, 1: 2}, field_mask=MASK_ALL_MERGED,
        frame_bytes=512, ticks_per_sec=1e9,
    ) as writer:
        for record in sorted(GOLDEN_RECORDS, key=lambda r: r.end):
            writer.write(record)

    chrome = export_chrome_json(golden, HERE / "golden.chrome.json")
    otf2 = export_otf2_text(golden, HERE / "golden.otf2.txt")

    (HERE / "foreign.chrome.json").write_text(
        json.dumps(FOREIGN_CHROME, indent=1) + "\n"
    )
    (HERE / "foreign.otf2.txt").write_text(FOREIGN_OTF2)
    (HERE / "salvage.otf2.txt").write_text(SALVAGE_OTF2)

    foreign_result = import_otf2_text(
        HERE / "foreign.otf2.txt", HERE / "_probe.ute", errors="strict"
    )
    salvage_result = import_otf2_text(
        HERE / "salvage.otf2.txt", HERE / "_probe.ute", errors="salvage"
    )
    (HERE / "_probe.ute").unlink()

    manifest = {
        "golden.ute": {
            "kind": "interval",
            "records": len(GOLDEN_RECORDS),
            "pseudo_records": 0,
            "threads": len(GOLDEN_THREADS),
            "markers": 1,
        },
        "golden.chrome.json": {
            "kind": "chrome-json",
            "source": "golden.ute",
            "x_events": chrome.records,
            "events_total": chrome.events,
        },
        "golden.otf2.txt": {
            "kind": "otf2-text",
            "source": "golden.ute",
            "records": otf2.records,
            "events": otf2.events,
            "lines": otf2.lines,
        },
        "foreign.chrome.json": {
            "kind": "chrome-json",
            "source": "hand-written",
            "x_events": 3,
            "events_total": len(FOREIGN_CHROME["traceEvents"]),
        },
        "foreign.otf2.txt": {
            "kind": "otf2-text",
            "source": "hand-written",
            "records": foreign_result.records_written,
            "salvage": foreign_result.salvage.as_dict(),
        },
        "salvage.otf2.txt": {
            "kind": "otf2-text",
            "source": "hand-written",
            "records": salvage_result.records_written,
            "salvage": salvage_result.salvage.as_dict(),
        },
    }
    (HERE / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    for name, info in manifest.items():
        print(f"{name}: {info}")


if __name__ == "__main__":
    main()
