"""Regenerate the golden corpus (``python tests/data/generate_corpus.py``).

The corpus is a set of small committed trace artifacts — known-good files
plus known-damaged variants with precisely placed corruption — that pin
the salvage and recovery behaviour byte-for-byte:

==========================  ===============================================
artifact                    damage
==========================  ===============================================
``good.ute``                none (100 records, 6 frames, 2 directories)
``trunc-tail.ute``          final 150 bytes cut (mid-frame truncation)
``flip-dirlink.ute``        first directory's next pointer overwritten
``cut-254.ute``             file cut mid-record; records encode to exactly
``cut-255.ute``             254 / 255 / 256 bytes — the 1-byte-prefix /
``cut-256.ute``             escaped-length boundary (needs boundary.profile)
``good.raw``                none (51 events)
``trunc.raw``               final 25 bytes cut (mid-event truncation)
``midflip.raw``             30 bytes smashed mid-file
``good.slog``               none
``flip-frame.slog``         one frame's first record type word smashed
``boundary.profile``        the tunable-length profile of the cut-* files
``manifest.json``           per-artifact damage notes + expected recovery
==========================  ===============================================

Damage targets *structure* (length prefixes, type words, directory links,
truncation), not record values — value flips decode as different-but-valid
records and exercise nothing.  Regenerating rewrites every artifact and
``manifest.json``; the files are deterministic, so an unchanged generator
reproduces identical bytes.
"""

from __future__ import annotations

import json
import struct
import sys
from pathlib import Path

DATA_DIR = Path(__file__).resolve().parent

sys.path.insert(0, str(DATA_DIR.parents[1] / "src"))

from repro.core import IntervalFileWriter, IntervalReader, standard_profile
from repro.core.fields import DataType, FieldSpec, MASK_ALL_PER_NODE, MASK_CORE
from repro.core.frames import FrameDirectory
from repro.core.profilefmt import Profile, RecordSpec
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.tracing.events import RawEvent, dispatch_event
from repro.tracing.hooks import HookId
from repro.tracing.rawfile import RawFileHeader, RawTraceReader, RawTraceWriter
from repro.utils.recover import recover_file
from repro.utils.slog import SlogFile, SlogWriter

PROFILE = standard_profile()
TABLE = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])

#: Fixed body bytes of the boundary profile's record (six common fields
#: plus the label vector's 2-byte counter) — see tests/test_length_escape.py.
_FIXED_BODY = 28


def boundary_profile() -> Profile:
    """Single record type with a char-vector label: encoded length tunable
    byte-by-byte, so records can sit exactly on the length-escape edge."""
    names = ["rectype", "start", "dura", "node", "cpu", "thread", "label"]
    f = names.index
    u64 = dict(dtype=DataType.UINT, elem_len=8)
    u16 = dict(dtype=DataType.UINT, elem_len=2)
    fields = (
        FieldSpec(f("rectype"), dtype=DataType.UINT, elem_len=4),
        FieldSpec(f("start"), **u64),
        FieldSpec(f("dura"), **u64),
        FieldSpec(f("node"), **u16),
        FieldSpec(f("cpu"), **u16),
        FieldSpec(f("thread"), **u16),
        FieldSpec(f("label"), dtype=DataType.CHAR, elem_len=1, vector=True, counter_len=2),
    )
    return Profile(["Padded"], names, {0: RecordSpec(0, 0, fields)})


# ---------------------------------------------------------------- builders


def build_good_ute(path: Path) -> int:
    with IntervalFileWriter(
        path, PROFILE, TABLE, field_mask=MASK_ALL_PER_NODE,
        markers={1: "phase"}, frame_bytes=512, frames_per_dir=3,
    ) as writer:
        for i in range(100):
            writer.write(
                IntervalRecord(
                    IntervalType.MARKER if i % 5 else IntervalType.RUNNING,
                    BeBits.COMPLETE, i * 100, 50, 0, 0, 0,
                    {"markerId": 1} if i % 5 else {},
                )
            )
    return 100


def build_trunc_tail(good: Path, path: Path) -> None:
    data = good.read_bytes()
    path.write_bytes(data[:-150])


def build_flip_dirlink(good: Path, path: Path) -> None:
    with IntervalReader(good, PROFILE) as reader:
        first = next(iter(reader.directories()))
    data = bytearray(good.read_bytes())
    # A plausible-looking but wrong in-file offset: the chain walk must
    # reject it and resynchronize via the next directory's back link.
    struct.pack_into(
        "<q", data, FrameDirectory.next_offset_position(first.offset), len(data) // 2
    )
    path.write_bytes(bytes(data))


def build_cut(path: Path, profile: Profile, encoded_len: int) -> tuple[int, int]:
    """A boundary-profile file of records encoding to exactly
    ``encoded_len`` bytes, cut mid-way through a record in the last frame.
    Returns (records written, cut position)."""
    prefix = 1 if encoded_len <= 256 else 3
    body = encoded_len - prefix
    records = [
        IntervalRecord(
            0, BeBits.COMPLETE, i * 1000, 500, 0, 0, 0,
            {"label": chr(ord("a") + i % 26) * (body - _FIXED_BODY)},
        )
        for i in range(30)
    ]
    assert len(records[0].encode(profile, MASK_CORE)) == encoded_len
    with IntervalFileWriter(
        path, profile, TABLE, field_mask=MASK_CORE,
        frame_bytes=4 * encoded_len, frames_per_dir=3,
    ) as writer:
        for record in records:
            writer.write(record)
    with IntervalReader(path, profile) as reader:
        last_frame = list(reader.frames())[-1]
    # Cut one full record plus one byte into the last frame: the cut lands
    # mid-record, exactly one byte past the length-escape-sensitive edge.
    cut = last_frame.offset + encoded_len + 1
    path.write_bytes(path.read_bytes()[:cut])
    return len(records), cut


def build_good_raw(path: Path) -> int:
    with RawTraceWriter(path, RawFileHeader(0, 2, 0)) as writer:
        writer.write(RawEvent(HookId.MARKER_DEFINE, 0, 5, 0, (1,), "phase"))
        for i in range(50):
            writer.write(dispatch_event(i * 10, 5, i % 2))
    return 51


def build_trunc_raw(good: Path, path: Path) -> None:
    path.write_bytes(good.read_bytes()[:-25])


def build_midflip_raw(good: Path, path: Path) -> None:
    with RawTraceReader(good) as reader:
        offsets = [off for _hook, off, _len in reader.scan()]
    data = bytearray(good.read_bytes())
    target = offsets[len(offsets) // 2]
    data[target : target + 30] = b"\xaa" * 30
    path.write_bytes(bytes(data))


def build_good_slog(path: Path) -> int:
    writer = SlogWriter(
        path, PROFILE, TABLE, field_mask=MASK_ALL_PER_NODE,
        time_range=(0, 10000), frame_bytes=512,
    )
    for i in range(100):
        writer.write(
            IntervalRecord(IntervalType.RUNNING, BeBits.COMPLETE, i * 100, 50, 0, 0, 0)
        )
    writer.close()
    return 100


def build_flip_frame_slog(good: Path, path: Path) -> int:
    slog = SlogFile(good)
    target = slog.frames[1]
    slog.close()
    data = bytearray(good.read_bytes())
    # Smash the first record's type word (after its 1-byte length prefix):
    # an unknown record type fails strict decode without shifting offsets.
    data[target.offset + 1 : target.offset + 5] = b"\xff" * 4
    path.write_bytes(bytes(data))
    return 1  # index of the damaged frame


# -------------------------------------------------------------------- main


def main() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    boundary = boundary_profile()
    boundary_path = DATA_DIR / "boundary.profile"
    boundary.write(boundary_path)

    good_ute = DATA_DIR / "good.ute"
    good_raw = DATA_DIR / "good.raw"
    good_slog = DATA_DIR / "good.slog"
    n_ute = build_good_ute(good_ute)
    n_raw = build_good_raw(good_raw)
    n_slog = build_good_slog(good_slog)

    build_trunc_tail(good_ute, DATA_DIR / "trunc-tail.ute")
    build_flip_dirlink(good_ute, DATA_DIR / "flip-dirlink.ute")
    build_trunc_raw(good_raw, DATA_DIR / "trunc.raw")
    build_midflip_raw(good_raw, DATA_DIR / "midflip.raw")
    damaged_frame = build_flip_frame_slog(good_slog, DATA_DIR / "flip-frame.slog")

    artifacts: dict[str, dict] = {
        "good.ute": {"kind": "interval", "damage": None, "records": n_ute},
        "good.raw": {"kind": "raw", "damage": None, "records": n_raw},
        "good.slog": {"kind": "slog", "damage": None, "records": n_slog},
        "trunc-tail.ute": {
            "kind": "interval", "source": "good.ute", "profile": "standard",
            "damage": "final 150 bytes cut (mid-frame truncation)",
        },
        "flip-dirlink.ute": {
            "kind": "interval", "source": "good.ute", "profile": "standard",
            "damage": "first directory next pointer overwritten with a bogus offset",
        },
        "trunc.raw": {
            "kind": "raw", "source": "good.raw",
            "damage": "final 25 bytes cut (mid-event truncation)",
        },
        "midflip.raw": {
            "kind": "raw", "source": "good.raw",
            "damage": "30 bytes smashed mid-file",
        },
        "flip-frame.slog": {
            "kind": "slog", "source": "good.slog",
            "damage": "first record type word of one frame smashed",
            "damaged_frame": damaged_frame,
        },
    }
    for encoded_len in (254, 255, 256):
        name = f"cut-{encoded_len}.ute"
        n, cut = build_cut(DATA_DIR / name, boundary, encoded_len)
        artifacts[name] = {
            "kind": "interval", "profile": "boundary.profile",
            "records": n, "encoded_record_len": encoded_len,
            "damage": f"cut mid-record at byte {cut} "
                      f"({encoded_len}-byte records, length-escape boundary)",
        }

    # Record the expected recovery outcome of every damaged artifact: the
    # files are frozen and salvage is deterministic, so tests assert these
    # counts exactly.
    scratch = DATA_DIR / ".scratch"
    scratch.mkdir(exist_ok=True)
    for name, info in artifacts.items():
        if info["damage"] is None:
            continue
        profile = None
        if info.get("profile") == "standard":
            profile = PROFILE
        elif info.get("profile"):
            profile = Profile.read(DATA_DIR / info["profile"])
        report = recover_file(
            DATA_DIR / name, scratch / (name + ".rec"), profile=profile
        )
        assert report.ok, f"{name}: recovery must validate clean"
        info["recovered_records"] = report.records_out
    for leftover in scratch.iterdir():
        leftover.unlink()
    scratch.rmdir()

    manifest = DATA_DIR / "manifest.json"
    manifest.write_text(json.dumps(artifacts, indent=2, sort_keys=True) + "\n")
    for name in sorted([*artifacts, "boundary.profile", "manifest.json"]):
        print(f"  {name}: {(DATA_DIR / name).stat().st_size} bytes")


if __name__ == "__main__":
    main()
