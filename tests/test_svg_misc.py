"""Unit tests for the SVG builder, MPI timing model, and ute-profile CLI."""

import xml.etree.ElementTree as ET

import pytest

from repro.mpi.timing import MpiTiming
from repro.viz.svg import SvgCanvas


class TestSvgCanvas:
    def test_document_structure(self, tmp_path):
        canvas = SvgCanvas(200, 100)
        canvas.rect(10, 10, 50, 20, fill="#2a78d6", rx=2)
        canvas.line(0, 0, 200, 100, stroke="#e8e7e4", dash="2,2")
        canvas.text(5, 95, "label", size=10)
        canvas.polyline([(0, 0), (10, 10), (20, 5)], stroke="#1baf7a")
        canvas.polygon([(0, 0), (5, 5), (0, 5)], fill="#0b0b0b")
        path = canvas.write(tmp_path / "c.svg")
        root = ET.parse(path).getroot()
        assert root.attrib["width"] == "200"
        tags = [el.tag.split("}")[-1] for el in root]
        assert tags.count("rect") == 2  # background + ours
        assert "line" in tags and "text" in tags
        assert "polyline" in tags and "polygon" in tags

    def test_text_is_escaped(self):
        canvas = SvgCanvas(10, 10)
        canvas.text(0, 0, "<&>")
        assert "&lt;&amp;&gt;" in canvas.to_string()

    def test_tooltip_title_nested(self):
        canvas = SvgCanvas(10, 10)
        canvas.rect(0, 0, 5, 5, fill="#fff", title='say "hi" <now>')
        out = canvas.to_string()
        assert "<title>" in out
        assert "&lt;now&gt;" in out

    def test_negative_sizes_clamped(self):
        canvas = SvgCanvas(10, 10)
        canvas.rect(0, 0, -5, -5, fill="#fff")
        # Width/height never negative in the output.
        assert 'width="-' not in canvas.to_string().split("svg", 1)[1]

    def test_valid_xml_even_with_odd_labels(self, tmp_path):
        canvas = SvgCanvas(50, 50)
        canvas.text(0, 10, "a & b < c > d \" e ' f")
        path = canvas.write(tmp_path / "x.svg")
        ET.parse(path)  # raises on malformed XML


class TestMpiTiming:
    def test_copy_time_scales_with_size(self):
        timing = MpiTiming(copy_bytes_per_ns=2.0)
        assert timing.copy_ns(2000) == 1000
        assert timing.copy_ns(0) == 0

    def test_custom_overheads_respected(self, tmp_path):
        """A slower MPI library makes the same program take longer."""
        from repro.cluster import Cluster, ClusterSpec
        from repro.mpi import MpiRuntime

        def elapsed(timing):
            cl = Cluster(ClusterSpec(n_nodes=2, cpus_per_node=1))
            rt = MpiRuntime(cl, timing=timing)

            def body(ctx):
                for _ in range(10):
                    if ctx.rank == 0:
                        yield from ctx.send(1, 1024)
                    else:
                        yield from ctx.recv(0)

            rt.launch(2, body)
            rt.run()
            return cl.engine.now

        fast = elapsed(MpiTiming(call_overhead_ns=100))
        slow = elapsed(MpiTiming(call_overhead_ns=1_000_000))
        assert slow > fast + 9 * 1_000_000


class TestProfileCli:
    def test_ute_profile_output(self, tmp_path, capsys):
        from repro import cli
        from repro.core import standard_profile
        from repro.utils.convert import convert_traces
        from repro.utils.merge import merge_interval_files
        from repro.workloads import run_pingpong

        run = run_pingpong(tmp_path / "raw")
        conv = convert_traces(run.raw_paths, tmp_path / "ivl")
        merged = merge_interval_files(
            conv.interval_paths, tmp_path / "m.ute", standard_profile()
        )
        assert cli.main_profile([str(merged.merged_path)]) == 0
        out = capsys.readouterr().out
        assert "MPI_Recv" in out
        assert "blocked" in out.splitlines()[0]
        # Marker regions named by their strings.
        assert "pingpong:size-sweep" in out

    def test_include_running_flag(self, tmp_path, capsys):
        from repro import cli
        from repro.core import standard_profile
        from repro.utils.convert import convert_traces
        from repro.workloads import run_pingpong

        run = run_pingpong(tmp_path / "raw")
        conv = convert_traces(run.raw_paths, tmp_path / "ivl")
        assert cli.main_profile(
            [str(p) for p in conv.interval_paths] + ["--include-running"]
        ) == 0
        assert "Running" in capsys.readouterr().out
