"""Tests for the performance-analysis applications (spans, blocking,
utilization, message stats)."""

import pytest

from repro.analysis import (
    MessageStats,
    call_profile,
    cpu_utilization,
    message_stats,
    state_spans,
    thread_utilization,
)
from repro.analysis.blocking import format_call_profile
from repro.analysis.messages import latency_by_size
from repro.core import standard_profile
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.viz.arrows import MessageArrow

PROFILE = standard_profile()
SEND = IntervalType.for_mpi_fn(0)
RECV = IntervalType.for_mpi_fn(1)


def rec(itype=IntervalType.RUNNING, bebits=BeBits.COMPLETE, start=0, dura=100,
        node=0, cpu=0, thread=0, **extra):
    return IntervalRecord(itype, bebits, start, dura, node, cpu, thread, extra)


class TestStateSpans:
    def test_complete_record_is_one_span(self):
        (span,) = state_spans([rec(itype=SEND, start=100, dura=50)])
        assert (span.begin, span.end) == (100, 150)
        assert span.on_cpu == 50
        assert span.blocked == 0
        assert span.pieces == 1

    def test_pieces_fold_into_span_with_blocked_time(self):
        pieces = [
            rec(itype=RECV, bebits=BeBits.BEGIN, start=0, dura=10),
            rec(itype=RECV, bebits=BeBits.CONTINUATION, start=100, dura=10),
            rec(itype=RECV, bebits=BeBits.END, start=200, dura=10),
        ]
        (span,) = state_spans(pieces)
        assert (span.begin, span.end) == (0, 210)
        assert span.on_cpu == 30
        assert span.blocked == 180
        assert span.pieces == 3

    def test_running_excluded_by_default(self):
        spans = list(state_spans([rec(), rec(itype=SEND, start=200, dura=10)]))
        assert [s.itype for s in spans] == [SEND]
        spans = list(
            state_spans(
                [rec(), rec(itype=SEND, start=200, dura=10)], include_running=True
            )
        )
        assert {s.itype for s in spans} == {IntervalType.RUNNING, SEND}

    def test_markers_keyed_by_id(self):
        records = [
            rec(itype=IntervalType.MARKER, bebits=BeBits.BEGIN, start=0, dura=5,
                markerId=1),
            rec(itype=IntervalType.MARKER, bebits=BeBits.BEGIN, start=10, dura=5,
                thread=1, markerId=2),
            rec(itype=IntervalType.MARKER, bebits=BeBits.END, start=20, dura=5,
                markerId=1),
            rec(itype=IntervalType.MARKER, bebits=BeBits.END, start=30, dura=5,
                thread=1, markerId=2),
        ]
        spans = sorted(state_spans(records), key=lambda s: s.marker_id)
        assert [s.marker_id for s in spans] == [1, 2]
        assert spans[0].end == 25

    def test_pseudo_interval_folds_harmlessly(self):
        records = [
            rec(itype=SEND, bebits=BeBits.BEGIN, start=0, dura=10),
            rec(itype=SEND, bebits=BeBits.CONTINUATION, start=50, dura=0),  # pseudo
            rec(itype=SEND, bebits=BeBits.END, start=80, dura=10),
        ]
        (span,) = state_spans(records)
        assert span.on_cpu == 20
        assert span.end == 90

    def test_unclosed_state_still_reported(self):
        records = [rec(itype=SEND, bebits=BeBits.BEGIN, start=0, dura=10)]
        (span,) = state_spans(records)
        assert span.end == 10


class TestCallProfile:
    def test_blocked_ranking(self):
        records = [
            # A quick send.
            rec(itype=SEND, start=0, dura=10, node=0),
            # A recv blocked for 1000.
            rec(itype=RECV, bebits=BeBits.BEGIN, start=20, dura=5),
            rec(itype=RECV, bebits=BeBits.END, start=1020, dura=5),
        ]
        rows = call_profile(records, PROFILE)
        assert rows[0].name == "MPI_Recv"
        assert rows[0].blocked_ns == 995  # wall 1005 - on_cpu 10
        assert rows[0].blocked_fraction > 0.9
        assert rows[1].name == "MPI_Send"
        assert rows[1].blocked_ns == 0

    def test_marker_rows_named_by_string(self):
        records = [
            rec(itype=IntervalType.MARKER, start=0, dura=100, markerId=1),
        ]
        rows = call_profile(records, PROFILE, markers={1: "Main Loop"})
        assert rows[0].name == "Main Loop"

    def test_counts_and_avg(self):
        records = [rec(itype=SEND, start=i * 100, dura=10) for i in range(5)]
        (row,) = call_profile(records, PROFILE)
        assert row.calls == 5
        assert row.wall_ns == 50
        assert row.avg_wall_ns == 10
        assert row.max_wall_ns == 10

    def test_format_output(self):
        records = [rec(itype=SEND, start=0, dura=10)]
        text = format_call_profile(call_profile(records, PROFILE))
        assert "MPI_Send" in text
        assert "blocked" in text.splitlines()[0]

    def test_real_pipeline_blocking(self, tmp_path):
        """On a real ping-pong run, receives block more than sends."""
        from repro.core import IntervalReader
        from repro.utils.convert import convert_traces
        from repro.utils.merge import merge_interval_files
        from repro.workloads import run_pingpong

        run = run_pingpong(tmp_path / "raw")
        conv = convert_traces(run.raw_paths, tmp_path / "ivl")
        merged = merge_interval_files(conv.interval_paths, tmp_path / "m.ute", PROFILE)
        reader = IntervalReader(merged.merged_path, PROFILE)
        rows = {
            r.name: r
            for r in call_profile(
                list(reader.intervals()), PROFILE, markers=reader.markers
            )
        }
        assert rows["MPI_Recv"].blocked_ns > rows["MPI_Send"].blocked_ns
        assert rows["MPI_Recv"].blocked_fraction > 0.3


class TestUtilization:
    def test_thread_busy_fraction(self):
        records = [rec(start=0, dura=600), rec(thread=1, start=0, dura=200),
                   rec(start=600, dura=400)]
        utils = {u.key: u for u in thread_utilization(records)}
        assert utils[(0, 0)].fraction == 1.0
        assert utils[(0, 1)].fraction == pytest.approx(0.2)

    def test_cpu_idle_rows_present(self):
        records = [rec(cpu=0, dura=100)]
        utils = cpu_utilization(records, {0: 4})
        assert len(utils) == 4
        assert utils[0].fraction == 1.0
        assert all(u.fraction == 0 for u in utils[1:])

    def test_explicit_wall_interval(self):
        records = [rec(start=0, dura=100)]
        (u,) = thread_utilization(records, wall=(0, 1000))
        assert u.fraction == pytest.approx(0.1)


class TestMessageStats:
    def arrows(self):
        return [
            MessageArrow(1, (0, 0), (1, 0), 100, 300, 1024),
            MessageArrow(2, (1, 0), (0, 0), 400, 450, 1024),
            MessageArrow(3, (0, 0), (1, 0), 500, 2500, 65536),
        ]

    def test_summary(self):
        stats = message_stats(self.arrows())
        assert stats.count == 3
        assert stats.total_bytes == 1024 * 2 + 65536
        assert stats.min_latency_ns == 50
        assert stats.max_latency_ns == 2000
        assert stats.causality_violations == 0

    def test_from_records(self):
        records = [
            rec(itype=SEND, node=0, start=0, dura=10, msgSizeSent=64, seqno=9),
            rec(itype=RECV, node=1, start=5, dura=40, msgSizeRecv=64, seqno=9),
        ]
        stats = message_stats(records)
        assert stats.count == 1
        assert stats.min_latency_ns == 45

    def test_empty(self):
        assert message_stats([]) == MessageStats.empty()

    def test_latency_by_size(self):
        table = latency_by_size(self.arrows())
        assert table[1024][0] == 2
        assert table[65536] == (1, 2000.0)
