"""Tests for the interval-file validator and its CLI."""

import pytest

from repro.core import IntervalFileWriter, standard_profile
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.utils.validate import validate_files, validate_interval_file

PROFILE = standard_profile()


def table():
    return ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0")])


def rec(itype=IntervalType.RUNNING, bebits=BeBits.COMPLETE, start=0, dura=10,
        thread=0, **extra):
    return IntervalRecord(itype, bebits, start, dura, 0, 0, thread, extra)


def write(path, records, markers=None):
    with IntervalFileWriter(
        path, PROFILE, table(), field_mask=MASK_ALL_PER_NODE,
        markers=markers or {}, frame_bytes=512,
    ) as writer:
        for r in sorted(records, key=lambda x: x.end):
            writer.write(r)
    return path


class TestValidFiles:
    def test_clean_file_passes(self, tmp_path):
        path = write(tmp_path / "ok.ute", [rec(start=i * 20) for i in range(50)])
        report = validate_interval_file(path, PROFILE)
        assert report.ok, report.summary()
        assert report.records == 50
        assert report.frames >= 1
        assert "OK" in report.summary()

    def test_balanced_pieces_pass(self, tmp_path):
        records = [
            rec(bebits=BeBits.BEGIN, start=0, dura=10),
            rec(bebits=BeBits.CONTINUATION, start=20, dura=10),
            rec(bebits=BeBits.END, start=40, dura=10),
        ]
        report = validate_interval_file(write(tmp_path / "p.ute", records), PROFILE)
        assert report.ok

    def test_marker_with_table_entry_passes(self, tmp_path):
        records = [rec(itype=IntervalType.MARKER, markerId=1)]
        path = write(tmp_path / "m.ute", records, markers={1: "phase"})
        assert validate_interval_file(path, PROFILE).ok

    def test_real_pipeline_files_pass(self, tmp_path):
        from repro.utils.convert import convert_traces
        from repro.utils.merge import merge_interval_files
        from repro.workloads import run_pingpong

        run = run_pingpong(tmp_path / "raw")
        conv = convert_traces(run.raw_paths, tmp_path / "ivl")
        merged = merge_interval_files(
            conv.interval_paths, tmp_path / "m.ute", PROFILE, frame_bytes=2048
        )
        reports = validate_files(
            [*conv.interval_paths, merged.merged_path], PROFILE
        )
        for report in reports:
            assert report.ok, report.summary()


class TestViolations:
    def test_unknown_thread_flagged(self, tmp_path):
        path = write(tmp_path / "t.ute", [rec(thread=7)])
        report = validate_interval_file(path, PROFILE)
        assert not report.ok
        assert any("unknown thread" in e for e in report.errors)

    def test_unknown_marker_flagged(self, tmp_path):
        path = write(tmp_path / "um.ute", [rec(itype=IntervalType.MARKER, markerId=9)])
        report = validate_interval_file(path, PROFILE)
        assert any("unknown marker" in e for e in report.errors)

    def test_orphan_continuation_flagged(self, tmp_path):
        path = write(tmp_path / "oc.ute", [rec(bebits=BeBits.CONTINUATION, dura=5)])
        report = validate_interval_file(path, PROFILE)
        assert any("orphan continuation" in e for e in report.errors)

    def test_end_without_begin_flagged(self, tmp_path):
        path = write(tmp_path / "eb.ute", [rec(bebits=BeBits.END)])
        report = validate_interval_file(path, PROFILE)
        assert any("end without begin" in e for e in report.errors)

    def test_open_state_warned(self, tmp_path):
        path = write(tmp_path / "open.ute", [rec(bebits=BeBits.BEGIN)])
        report = validate_interval_file(path, PROFILE)
        assert report.ok  # warning, not error
        assert any("left open" in w for w in report.warnings)

    def test_zero_duration_continuation_counted_as_pseudo(self, tmp_path):
        records = [
            rec(bebits=BeBits.BEGIN, start=0, dura=10),
            rec(bebits=BeBits.CONTINUATION, start=20, dura=0),
            rec(bebits=BeBits.END, start=30, dura=10),
        ]
        report = validate_interval_file(write(tmp_path / "z.ute", records), PROFILE)
        assert report.ok
        assert report.pseudo_records == 1

    def test_corrupt_file_reported_not_raised(self, tmp_path):
        path = tmp_path / "junk.ute"
        path.write_bytes(b"not an interval file at all")
        report = validate_interval_file(path, PROFILE)
        assert not report.ok


class TestCli:
    def test_cli_ok_exit_zero(self, tmp_path, capsys):
        from repro import cli

        path = write(tmp_path / "ok.ute", [rec()])
        assert cli.main_validate([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_invalid_exit_one(self, tmp_path, capsys):
        from repro import cli

        path = write(tmp_path / "bad.ute", [rec(thread=9)])
        assert cli.main_validate([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out
