"""Parallel convert/merge determinism and the merge CLI's input checks.

The contract of ``--jobs`` is strong: output files are byte-identical to
the serial pass, for any job count, on every run.  Merge tie-breaking is
part of that contract — records with equal adjusted end times order by
(input-file index, record ordinal), not by AVL insertion timing.
"""

import pytest

from repro.core import IntervalFileWriter, IntervalReader, standard_profile
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.profilefmt import Profile
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.errors import MergeError

PROFILE = standard_profile()


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """A small multi-node synthetic run's raw trace files."""
    from repro.workloads import run_synthetic
    from repro.workloads.synthetic import SyntheticConfig

    out = tmp_path_factory.mktemp("run")
    run = run_synthetic(out, SyntheticConfig(rounds=12))
    assert len(run.raw_paths) > 1
    return run


class TestParallelConvert:
    def test_jobs_output_byte_identical(self, traced_run, tmp_path):
        serial = convert_traces(traced_run.raw_paths, tmp_path / "serial", jobs=1)
        for jobs in (2, 8):
            parallel = convert_traces(
                traced_run.raw_paths, tmp_path / f"jobs{jobs}", jobs=jobs
            )
            assert [p.name for p in parallel.interval_paths] == [
                p.name for p in serial.interval_paths
            ]
            for a, b in zip(serial.interval_paths, parallel.interval_paths):
                assert a.read_bytes() == b.read_bytes(), a.name
            assert parallel.marker_table == serial.marker_table
            assert parallel.events_processed == serial.events_processed
            assert parallel.records_written == serial.records_written

    def test_jobs_profile_identical(self, traced_run, tmp_path):
        serial = convert_traces(traced_run.raw_paths, tmp_path / "s", jobs=1)
        parallel = convert_traces(traced_run.raw_paths, tmp_path / "p", jobs=3)
        assert serial.profile_path.read_bytes() == parallel.profile_path.read_bytes()

    def test_cli_jobs_flag(self, traced_run, tmp_path, capsys):
        from repro.cli import main_convert

        raw = [str(p) for p in traced_run.raw_paths]
        assert main_convert(raw + ["-o", str(tmp_path / "cli-s")]) == 0
        assert main_convert(raw + ["-o", str(tmp_path / "cli-p"), "--jobs", "2"]) == 0
        capsys.readouterr()
        serial_files = sorted((tmp_path / "cli-s").glob("*.ute"))
        parallel_files = sorted((tmp_path / "cli-p").glob("*.ute"))
        assert [p.name for p in serial_files] == [p.name for p in parallel_files]
        for a, b in zip(serial_files, parallel_files):
            assert a.read_bytes() == b.read_bytes()


class TestMergeDeterminism:
    @pytest.fixture(scope="class")
    def intervals(self, traced_run, tmp_path_factory):
        out = tmp_path_factory.mktemp("ivl")
        result = convert_traces(traced_run.raw_paths, out)
        return result

    def test_byte_identical_across_runs_and_jobs(self, intervals, tmp_path):
        profile = Profile.read(intervals.profile_path)
        outputs = []
        for name, jobs in (("a", 1), ("b", 1), ("c", 2), ("d", 4)):
            merged = tmp_path / f"{name}.ute"
            slog = tmp_path / f"{name}.slog"
            merge_interval_files(
                intervals.interval_paths, merged, profile,
                slog_path=slog, jobs=jobs,
            )
            outputs.append((merged.read_bytes(), slog.read_bytes()))
        for other in outputs[1:]:
            assert other == outputs[0]

    def test_equal_end_times_order_by_file_index(self, tmp_path):
        """Records tying on adjusted end time come out grouped by input-file
        position, each file's records in ordinal order."""

        def write_input(name, node):
            table = ThreadTable([ThreadEntry(0, 1, 1, node, 0, 0, "t")])
            path = tmp_path / name
            with IntervalFileWriter(
                path, PROFILE, table, field_mask=MASK_ALL_PER_NODE,
            ) as writer:
                for i in range(8):
                    # Identical times in both files: every record ties.
                    writer.write(
                        IntervalRecord(
                            IntervalType.RUNNING, BeBits.COMPLETE,
                            i * 100, 50, node, 0, 0,
                        )
                    )
            return path

        first = write_input("n0.ute", 0)
        second = write_input("n1.ute", 1)
        merged = tmp_path / "tie.ute"
        merge_interval_files([first, second], merged, PROFILE)
        with IntervalReader(merged, PROFILE) as reader:
            nodes = [r.node for r in reader.intervals()]
        assert nodes == [0, 1] * 8  # at each end time: file 0, then file 1

        # Reversing the input list reverses the tie order — the file
        # *position* decides, not the path or node id.
        merged_rev = tmp_path / "tie-rev.ute"
        merge_interval_files([second, first], merged_rev, PROFILE)
        with IntervalReader(merged_rev, PROFILE) as reader:
            nodes = [r.node for r in reader.intervals()]
        assert nodes == [1, 0] * 8

    def test_thread_type_filter_applied_per_file(self, tmp_path):
        """Regression: the thread-category filter must use each file's own
        selection, not the last file's (the old generator-expression bug)."""
        from repro.core.threadtable import THREAD_TYPE_MPI, THREAD_TYPE_SYSTEM

        def write_input(name, node, thread_type):
            table = ThreadTable(
                [ThreadEntry(0, 1, 1, node, 0, thread_type, f"t{node}")]
            )
            path = tmp_path / name
            with IntervalFileWriter(
                path, PROFILE, table, field_mask=MASK_ALL_PER_NODE,
            ) as writer:
                for i in range(4):
                    writer.write(
                        IntervalRecord(
                            IntervalType.RUNNING, BeBits.COMPLETE,
                            i * 100, 50, node, 0, 0,
                        )
                    )
            return path

        # File 0's only thread is MPI-type; file 1's is system-type.  A
        # merge selecting MPI threads must keep file 0's records even
        # though file 1's selection set (the last bound) is empty.
        mpi_file = write_input("mpi.ute", 0, THREAD_TYPE_MPI)
        sys_file = write_input("sys.ute", 1, THREAD_TYPE_SYSTEM)
        merged = tmp_path / "filtered.ute"
        merge_interval_files(
            [mpi_file, sys_file], merged, PROFILE,
            thread_types={THREAD_TYPE_MPI},
        )
        with IntervalReader(merged, PROFILE) as reader:
            nodes = {r.node for r in reader.intervals()}
        assert nodes == {0}

    def test_duplicate_inputs_rejected(self, tmp_path):
        table = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])
        path = tmp_path / "one.ute"
        with IntervalFileWriter(
            path, PROFILE, table, field_mask=MASK_ALL_PER_NODE
        ) as writer:
            writer.write(
                IntervalRecord(IntervalType.RUNNING, BeBits.COMPLETE, 0, 50, 0, 0, 0)
            )
        with pytest.raises(MergeError, match="duplicate input"):
            merge_interval_files([path, path], tmp_path / "dup.ute", PROFILE)
        with pytest.raises(MergeError, match="nothing to merge"):
            merge_interval_files([], tmp_path / "none.ute", PROFILE)


class TestMergeCli:
    def test_duplicate_inputs_one_line_error(self, tmp_path, capsys):
        from repro.cli import main_merge

        with pytest.raises(SystemExit) as exc:
            main_merge(["a.ute", "a.ute", "-o", str(tmp_path / "out.ute")])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "duplicate input file: a.ute" in err

    def test_slogmerge_duplicate_inputs_rejected(self, tmp_path, capsys):
        from repro.cli import main_slogmerge

        with pytest.raises(SystemExit) as exc:
            main_slogmerge(["b.ute", "b.ute", "-o", str(tmp_path / "out.ute")])
        assert exc.value.code == 2
        assert "duplicate input file: b.ute" in capsys.readouterr().err

    def test_no_inputs_rejected(self, capsys):
        from repro.cli import main_merge

        with pytest.raises(SystemExit) as exc:
            main_merge([])
        assert exc.value.code == 2

    def test_globbed_profile_used_not_merged(self, traced_run, tmp_path, capsys):
        """``ute-merge ivl/*.ute`` sweeps in the convert output's
        profile.ute; the CLI must use it as the profile, not choke on it."""
        from repro.cli import main_merge

        result = convert_traces(traced_run.raw_paths, tmp_path / "ivl")
        inputs = sorted(str(p) for p in (tmp_path / "ivl").glob("*.ute"))
        assert str(result.profile_path) in inputs
        merged = tmp_path / "glob.ute"
        assert main_merge(inputs + ["-o", str(merged)]) == 0
        capsys.readouterr()
        # Identical to merging the interval files with an explicit profile.
        explicit = tmp_path / "explicit.ute"
        merge_interval_files(
            result.interval_paths, explicit, Profile.read(result.profile_path)
        )
        assert merged.read_bytes() == explicit.read_bytes()

    def test_conflicting_profiles_rejected(self, traced_run, tmp_path, capsys):
        from repro.cli import main_merge

        result = convert_traces(traced_run.raw_paths, tmp_path / "ivl")
        other = tmp_path / "other-profile.ute"
        other.write_bytes(result.profile_path.read_bytes())
        inputs = [str(p) for p in result.interval_paths]
        with pytest.raises(SystemExit) as exc:
            main_merge(
                inputs
                + [str(result.profile_path)]
                + ["--profile", str(other), "-o", str(tmp_path / "x.ute")]
            )
        assert exc.value.code == 2
        assert "conflicting profile files" in capsys.readouterr().err
