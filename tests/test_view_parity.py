"""View-construction parity and regression coverage for the view layer.

The four time-space diagrams derive from the same interval records, so
their answers must agree wherever they overlap: the connected view
covers exactly the time the piece view covers, a windowed view shows the
same bars the full view shows inside that window, and the aggregate
(utilization) view hands off to exact records below the density
threshold.  The regression classes pin the view-layer bugfixes: axis
labels stay distinct deep inside long runs, open states extend to the
window edge, and arrows clipped by the window render as stubs instead of
claiming delivery.
"""

import pytest

from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.query import build_index, open_trace
from repro.utils.slog import SlogFile, SlogWriter
from repro.viz.arrows import MessageArrow
from repro.viz.jumpshot import DENSITY_THRESHOLD, VIEW_KINDS, Jumpshot
from repro.viz.views import (
    TimelineView,
    _fmt_time,
    thread_activity_view,
    view_svg_string,
)

PROFILE = standard_profile()
TABLE = ThreadTable(
    [ThreadEntry(t, 100 + t, 5000 + t, 0, t, 0, f"t{t}") for t in range(2)]
)


def rec(start, dura, *, thread=0, itype=IntervalType.RUNNING,
        bebits=BeBits.COMPLETE, extra=None):
    return IntervalRecord(
        itype, bebits, start, dura, 0, thread % 2, thread, extra or {}
    )


def coverage(view: TimelineView) -> dict[tuple, int]:
    """Union of covered ticks per (row, state) — merge-overlap sweep."""
    out = {}
    for row in view.rows:
        spans = {}
        for bar in row.bars:
            spans.setdefault(bar.key, []).append((bar.start, bar.end))
        for key, pairs in spans.items():
            total, cur_lo, cur_hi = 0, None, None
            for lo, hi in sorted(pairs):
                if cur_hi is None or lo > cur_hi:
                    if cur_hi is not None:
                        total += cur_hi - cur_lo
                    cur_lo, cur_hi = lo, hi
                else:
                    cur_hi = max(cur_hi, hi)
            if cur_hi is not None:
                total += cur_hi - cur_lo
            out[(row.row_key, key)] = total
    return out


def pieces():
    """Two states split into begin/continuation/end pieces, plus a
    complete record, across two threads."""
    send = IntervalType.for_mpi_fn(0)
    return [
        rec(100, 200, bebits=BeBits.BEGIN, itype=send),
        rec(300, 150, bebits=BeBits.CONTINUATION, itype=send),
        rec(450, 250, bebits=BeBits.END, itype=send),
        rec(800, 400),
        rec(200, 300, thread=1, bebits=BeBits.BEGIN),
        rec(500, 100, thread=1, bebits=BeBits.END),
    ]


class TestPieceConnectedParity:
    def test_coverage_identical_per_row_and_state(self):
        piece = thread_activity_view(pieces(), TABLE, PROFILE.record_name)
        connected = thread_activity_view(
            pieces(), TABLE, PROFILE.record_name, connected=True
        )
        assert coverage(piece) == coverage(connected)

    def test_connected_unifies_pieces_into_one_bar(self):
        connected = thread_activity_view(
            pieces(), TABLE, PROFILE.record_name, connected=True
        )
        by_row = {row.row_key: row for row in connected.rows}
        send_bars = [
            b for b in by_row[(0, 0)].bars
            if b.key == IntervalType.for_mpi_fn(0)
        ]
        assert [(b.start, b.end) for b in send_bars] == [(100, 700)]


class TestWindowParity:
    def test_windowed_bars_match_full_view_inside_the_window(self):
        records = [rec(i * 100, 80, thread=i % 2) for i in range(30)]
        full = thread_activity_view(records, TABLE, PROFILE.record_name)
        w0, w1 = 500, 1500
        inside = [r for r in records if r.end > w0 and r.start < w1]
        windowed = thread_activity_view(
            inside, TABLE, PROFILE.record_name, window=(w0, w1)
        )
        want = {
            (row.row_key, bar.start, bar.end, bar.key)
            for row in full.rows for bar in row.bars
            if bar.end > w0 and bar.start < w1
        }
        got = {
            (row.row_key, bar.start, bar.end, bar.key)
            for row in windowed.rows for bar in row.bars
        }
        assert got == want


class TestCorpusViewsNeverRaise:
    @pytest.mark.parametrize("name", ["good.slog", "flip-frame.slog"])
    @pytest.mark.parametrize("kind", VIEW_KINDS)
    def test_every_kind_renders_over_salvaged_slogs(self, corpus, name, kind):
        slog = SlogFile(corpus.path(name), errors="salvage")
        viewer = Jumpshot(corpus.path(name), slog=slog)
        records = [r for f in viewer.slog.frames for r in viewer.frame_records(f)]
        view = viewer.build_view(records, kind)
        svg = view_svg_string(view, ticks_per_sec=viewer.slog.ticks_per_sec)
        assert svg.startswith("<svg")


class TestAggregateDrillDown:
    @pytest.fixture(scope="class")
    def dense(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("drill")
        path = tmp / "dense.slog"
        records = [rec(i * 50, 40, thread=i % 2) for i in range(12_000)]
        writer = SlogWriter(
            path, PROFILE, TABLE, field_mask=MASK_ALL_MERGED,
            time_range=(0, 12_000 * 50 + 50), frame_bytes=4096,
            node_cpus={0: 2},
        )
        for r in records:
            writer.write(r)
        writer.close()
        with open_trace(path, PROFILE) as handle:
            index = build_index(handle)
        return path, index

    def test_whole_run_answers_from_aggregates(self, dense):
        path, index = dense
        with Jumpshot(path) as viewer:
            tps = viewer.slog.ticks_per_sec
            t1 = max(f.end_time for f in viewer.slog.frames) / tps
            svg = viewer.view_svg_window(0.0, t1, kind="thread", index=index)
            assert viewer.last_view_aggregate
            assert svg.startswith("<svg")

    def test_narrow_window_drills_down_to_exact_records(self, dense):
        path, index = dense
        with Jumpshot(path) as viewer:
            tps = viewer.slog.ticks_per_sec
            # A window holding ~20 records is far below the density
            # threshold: the viewer must decode records, not aggregate.
            viewer.view_svg_window(0.0, 1000 / tps, kind="thread", index=index)
            assert not viewer.last_view_aggregate

    def test_threshold_is_records_per_pixel(self, dense):
        path, index = dense
        with Jumpshot(path) as viewer:
            tps = viewer.slog.ticks_per_sec
            frames = viewer.slog.frames
            n = sum(f.n_records for f in frames)
            t1 = max(f.end_time for f in frames) / tps
            assert n / 880 > DENSITY_THRESHOLD  # sanity: workload is dense
            viewer.view_svg_window(0.0, t1, kind="thread-processor", index=index)
            assert not viewer.last_view_aggregate  # kind has no aggregate path


class TestAxisLabelRegression:
    def test_deep_window_ticks_stay_distinct(self):
        # 1 us apart, 5000 s into the run: %.4g alone would render both
        # as "5000" — the span-derived precision must keep them distinct.
        tps = 1e9
        a = _fmt_time(5_000_000_001_000, tps, span=1_000)
        b = _fmt_time(5_000_000_002_000, tps, span=1_000)
        assert a != b

    def test_whole_run_ticks_stay_short(self):
        label = _fmt_time(1_500_000_000, 1e9, span=250_000_000)
        assert len(label) <= 6

    def test_no_span_falls_back_to_general_format(self):
        assert _fmt_time(1_500_000_000, 1e9) == "1.5"


class TestOpenStateRegression:
    def test_open_state_extends_to_window_edge(self):
        records = [rec(100, 200, bebits=BeBits.BEGIN)]
        view = thread_activity_view(
            records, TABLE, PROFILE.record_name, connected=True,
            window=(0, 5_000),
        )
        bars = [b for row in view.rows for b in row.bars]
        assert len(bars) == 1
        assert bars[0].end == 5_000
        assert "(open)" in bars[0].tooltip


class TestClippedArrowRegression:
    @staticmethod
    def view_with_arrow(recv_time):
        view = thread_activity_view(
            [rec(100, 200), rec(300, 200, thread=1)],
            TABLE, PROFILE.record_name,
        )
        view.arrows.append(
            MessageArrow(1, (0, 0), (0, 1), 150, recv_time, 64)
        )
        return view

    def test_inside_arrow_gets_a_head(self):
        svg = view_svg_string(self.view_with_arrow(450), window=(0, 600))
        assert "<polygon" in svg

    def test_clipped_arrow_renders_a_stub_not_a_head(self):
        svg = view_svg_string(self.view_with_arrow(9_000), window=(0, 600))
        assert "<polygon" not in svg
        assert "<line" in svg
