"""Tests for the convert utility: event matching, interval pieces, bebits,
Running synthesis, and marker unification."""

import pytest

from repro.core import IntervalReader, standard_profile
from repro.core.records import BeBits, IntervalType
from repro.errors import TraceError
from repro.tracing.events import RawEvent
from repro.tracing.hooks import HookId, MPI_FN_IDS, hook_for_mpi_begin, hook_for_mpi_end
from repro.tracing.rawfile import RawFileHeader, RawTraceWriter
from repro.utils.convert import MarkerUnifier, convert_one, convert_traces

PROFILE = standard_profile()
SEND = MPI_FN_IDS["MPI_Send"]
RECV = MPI_FN_IDS["MPI_Recv"]
TID = 500


def write_raw(tmp_path, events, node_id=0, n_cpus=2, name="t.raw"):
    path = tmp_path / name
    with RawTraceWriter(path, RawFileHeader(node_id, n_cpus, 0)) as writer:
        for ev in events:
            writer.write(ev)
    return path


def thread_info(ts=0, tid=TID, ltid=0, name="main"):
    return RawEvent(HookId.THREAD_INFO, ts, tid, 0, (1000, 0, 0, ltid), name)


def dispatch(ts, cpu=0, tid=TID):
    return RawEvent(HookId.DISPATCH, ts, tid, cpu)


def undispatch(ts, cpu=0, tid=TID):
    return RawEvent(HookId.UNDISPATCH, ts, tid, cpu)


def mpi_begin(ts, fn=SEND, args=(1, 0, 100, 7, 0), tid=TID, cpu=0):
    return RawEvent(hook_for_mpi_begin(fn), ts, tid, cpu, args)


def mpi_end(ts, fn=SEND, args=(), tid=TID, cpu=0):
    return RawEvent(hook_for_mpi_end(fn), ts, tid, cpu, args)


def convert(tmp_path, events, **kwargs):
    from repro.tracing.rawfile import RawTraceReader

    raw = write_raw(tmp_path, events, **kwargs)
    out = tmp_path / "out.ute"
    convert_one(RawTraceReader(raw), out, PROFILE, MarkerUnifier())
    reader = IntervalReader(out, PROFILE)
    return [r for r in reader.intervals() if r.itype != IntervalType.CLOCKPAIR], reader


class TestBasicMatching:
    def test_uninterrupted_call_is_complete(self, tmp_path):
        records, _ = convert(
            tmp_path,
            [
                thread_info(),
                dispatch(0),
                mpi_begin(100),
                mpi_end(250),
                undispatch(300),
            ],
        )
        send = [r for r in records if r.itype == IntervalType.for_mpi_fn(SEND)]
        assert len(send) == 1
        assert send[0].bebits is BeBits.COMPLETE
        assert (send[0].start, send[0].duration) == (100, 150)
        assert send[0].extra["msgSizeSent"] == 100
        assert send[0].extra["seqno"] == 7

    def test_descheduled_call_splits_into_pieces(self, tmp_path):
        """The paper's core example: a thread de-scheduled inside an MPI
        call produces begin / continuation / end pieces."""
        records, _ = convert(
            tmp_path,
            [
                thread_info(),
                dispatch(0),
                mpi_begin(100, RECV, args=(0, 0, 0, 0, 0)),
                undispatch(150),
                dispatch(300, cpu=1),
                undispatch(350, cpu=1),
                dispatch(500, cpu=0),
                mpi_end(600, RECV, args=(1, 0, 64, 9)),
                undispatch(650),
            ],
        )
        recv = [r for r in records if r.itype == IntervalType.for_mpi_fn(RECV)]
        assert [r.bebits for r in recv] == [BeBits.BEGIN, BeBits.CONTINUATION, BeBits.END]
        assert [(r.start, r.end) for r in recv] == [(100, 150), (300, 350), (500, 600)]
        # Pieces carry the CPU they actually ran on.
        assert [r.cpu for r in recv] == [0, 1, 0]
        # The recv end's message info lands on every piece.
        assert all(r.extra["seqno"] == 9 for r in recv)
        assert all(r.extra["msgSizeRecv"] == 64 for r in recv)

    def test_running_state_fills_gaps(self, tmp_path):
        records, _ = convert(
            tmp_path,
            [
                thread_info(),
                dispatch(0),
                mpi_begin(100),
                mpi_end(200),
                mpi_begin(400),
                mpi_end(500),
                undispatch(600),
            ],
        )
        running = [r for r in records if r.itype == IntervalType.RUNNING]
        spans = sorted((r.start, r.end) for r in running if r.duration > 0)
        assert spans == [(0, 100), (200, 400), (500, 600)]

    def test_running_survives_descheduling_as_pieces(self, tmp_path):
        records, _ = convert(
            tmp_path,
            [
                thread_info(),
                dispatch(0),
                undispatch(100),
                dispatch(200),
                undispatch(300),
            ],
        )
        running = [r for r in records if r.itype == IntervalType.RUNNING]
        assert [r.bebits for r in running] == [BeBits.BEGIN, BeBits.END]
        assert [(r.start, r.end) for r in running] == [(0, 100), (200, 300)]

    def test_mismatched_end_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="does not match"):
            convert(
                tmp_path,
                [thread_info(), dispatch(0), mpi_begin(10, SEND), mpi_end(20, RECV)],
            )

    def test_trace_cut_mid_state_closes_at_last_event(self, tmp_path):
        records, _ = convert(
            tmp_path,
            [thread_info(), dispatch(0), mpi_begin(100), undispatch(400)],
        )
        send = [r for r in records if r.itype == IntervalType.for_mpi_fn(SEND)]
        assert len(send) == 1
        assert send[0].end == 400


class TestNestedStates:
    def marker_events(self):
        """Section 3.3's example: marker 2 nested in marker 1, MPI inside 2."""
        return [
            thread_info(),
            RawEvent(HookId.MARKER_DEFINE, 0, TID, 0, (1,), "outer"),
            RawEvent(HookId.MARKER_DEFINE, 0, TID, 0, (2,), "inner"),
            dispatch(0),
            RawEvent(HookId.MARKER_BEGIN, 100, TID, 0, (1, 0)),
            RawEvent(HookId.MARKER_BEGIN, 200, TID, 0, (2, 0)),
            mpi_begin(300),
            mpi_end(400),
            RawEvent(HookId.MARKER_END, 500, TID, 0, (2, 0)),
            RawEvent(HookId.MARKER_END, 600, TID, 0, (1, 0)),
            undispatch(700),
        ]

    def test_outer_marker_has_begin_and_end_pieces(self, tmp_path):
        records, reader = convert(tmp_path, self.marker_events())
        outer_id = {v: k for k, v in reader.markers.items()}["outer"]
        outer = [
            r for r in records
            if r.itype == IntervalType.MARKER and r.extra["markerId"] == outer_id
        ]
        # Exactly the paper's description: begin piece and end piece, with
        # no coverage while the inner marker was active.
        assert [r.bebits for r in outer] == [BeBits.BEGIN, BeBits.END]
        assert [(r.start, r.end) for r in outer] == [(100, 200), (500, 600)]

    def test_inner_marker_split_by_mpi(self, tmp_path):
        records, reader = convert(tmp_path, self.marker_events())
        inner_id = {v: k for k, v in reader.markers.items()}["inner"]
        inner = [
            r for r in records
            if r.itype == IntervalType.MARKER and r.extra["markerId"] == inner_id
        ]
        assert [r.bebits for r in inner] == [BeBits.BEGIN, BeBits.END]
        assert [(r.start, r.end) for r in inner] == [(200, 300), (400, 500)]

    def test_mismatched_marker_end_rejected(self, tmp_path):
        events = [
            thread_info(),
            RawEvent(HookId.MARKER_DEFINE, 0, TID, 0, (1,), "a"),
            RawEvent(HookId.MARKER_DEFINE, 0, TID, 0, (2,), "b"),
            dispatch(0),
            RawEvent(HookId.MARKER_BEGIN, 10, TID, 0, (1, 0)),
            RawEvent(HookId.MARKER_END, 20, TID, 0, (2, 0)),
        ]
        with pytest.raises(TraceError, match="marker end"):
            convert(tmp_path, events)


class TestMarkerUnification:
    def test_same_string_same_global_id_across_files(self, tmp_path):
        """Different tasks define the same strings in different orders with
        different local ids; conversion unifies them."""
        events_a = [
            thread_info(),
            RawEvent(HookId.MARKER_DEFINE, 0, TID, 0, (1,), "Initial Phase"),
            RawEvent(HookId.MARKER_DEFINE, 0, TID, 0, (2,), "Main Loop"),
            dispatch(0),
            RawEvent(HookId.MARKER_BEGIN, 10, TID, 0, (1, 0)),
            RawEvent(HookId.MARKER_END, 20, TID, 0, (1, 0)),
            undispatch(30),
        ]
        events_b = [
            thread_info(tid=TID + 1),
            # Opposite definition order, colliding local ids.
            RawEvent(HookId.MARKER_DEFINE, 0, TID + 1, 0, (1,), "Main Loop"),
            RawEvent(HookId.MARKER_DEFINE, 0, TID + 1, 0, (2,), "Initial Phase"),
            dispatch(0, tid=TID + 1),
            RawEvent(HookId.MARKER_BEGIN, 10, TID + 1, 0, (2, 0)),
            RawEvent(HookId.MARKER_END, 20, TID + 1, 0, (2, 0)),
            undispatch(30, tid=TID + 1),
        ]
        raw_a = write_raw(tmp_path, events_a, node_id=0, name="a.raw")
        raw_b = write_raw(tmp_path, events_b, node_id=1, name="b.raw")
        result = convert_traces([raw_a, raw_b], tmp_path / "out")
        # One global id per string.
        assert sorted(result.marker_table.values()) == ["Initial Phase", "Main Loop"]
        ids = {v: k for k, v in result.marker_table.items()}
        for path in result.interval_paths:
            reader = IntervalReader(path, PROFILE)
            marker_recs = [
                r for r in reader.intervals() if r.itype == IntervalType.MARKER
            ]
            # Both files' "Initial Phase" records carry the same global id.
            assert {r.extra["markerId"] for r in marker_recs} == {ids["Initial Phase"]}

    def test_undefined_marker_rejected(self, tmp_path):
        events = [
            thread_info(),
            dispatch(0),
            RawEvent(HookId.MARKER_BEGIN, 10, TID, 0, (99, 0)),
        ]
        with pytest.raises(TraceError, match="undefined"):
            convert(tmp_path, events)


class TestOutputInvariants:
    def test_records_in_end_time_order(self, tmp_path):
        records, _ = convert(
            tmp_path,
            [
                thread_info(),
                dispatch(0),
                mpi_begin(100),
                mpi_end(300),
                mpi_begin(350, RECV, args=(0, 0, 0, 0, 0)),
                mpi_end(380, RECV, args=(1, 0, 8, 2)),
                undispatch(400),
            ],
        )
        ends = [r.end for r in records]
        assert ends == sorted(ends)

    def test_clock_pairs_become_records(self, tmp_path):
        from repro.tracing.events import global_clock_event

        records_and_reader = convert(
            tmp_path,
            [
                global_clock_event(5, 0),
                thread_info(),
                dispatch(0),
                undispatch(100),
                global_clock_event(1_000_005, 1_000_000),
            ],
        )
        reader = records_and_reader[1]
        pairs = [
            r for r in reader.intervals() if r.itype == IntervalType.CLOCKPAIR
        ]
        assert [(r.start, r.extra["globalTs"]) for r in pairs] == [
            (5, 0), (1_000_005, 1_000_000),
        ]

    def test_thread_table_built_from_thread_info(self, tmp_path):
        _, reader = convert(
            tmp_path,
            [thread_info(name="the-main"), dispatch(0), undispatch(10)],
        )
        entry = reader.thread_table.lookup(0, 0)
        assert entry.name == "the-main"
        assert entry.system_tid == TID
        assert entry.mpi_task == 0

    def test_conservation_of_on_cpu_time(self, tmp_path):
        """Total piece duration on a CPU equals total dispatched time."""
        events = [
            thread_info(),
            dispatch(0),
            mpi_begin(100),
            undispatch(200),
            dispatch(400, cpu=1),
            mpi_end(450),
            mpi_begin(500, RECV, args=(0, 0, 0, 0, 0)),
            mpi_end(550, RECV, args=(0, 0, 8, 1)),
            undispatch(700, cpu=1),
        ]
        records, _ = convert(tmp_path, events)
        total = sum(r.duration for r in records)
        dispatched = (200 - 0) + (700 - 400)
        assert total == dispatched
