"""Tests for the statistics utility: aggregation, TSV output, pre-defined
tables."""

import pytest

from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.errors import StatsError
from repro.utils.stats import (
    StatsTable,
    generate_tables,
    predefined_tables,
    record_env,
)


def rec(itype=IntervalType.RUNNING, bebits=BeBits.COMPLETE, start=0, dura=100,
        node=0, cpu=0, thread=0, **extra):
    return IntervalRecord(itype, bebits, start, dura, node, cpu, thread, extra)


SEND = IntervalType.for_mpi_fn(0)


class TestRecordEnv:
    def test_times_in_seconds(self):
        env = record_env(rec(start=2_500_000_000, dura=500_000_000), 1e9)
        assert env["start"] == 2.5
        assert env["dura"] == 0.5

    def test_type_and_bebits_synthesized(self):
        env = record_env(rec(itype=SEND, bebits=BeBits.BEGIN), 1e9)
        assert env["type"] == SEND
        assert env["bebits"] == 1

    def test_extra_fields_passed_through(self):
        env = record_env(rec(itype=SEND, msgSizeSent=4096, localStart=10**9), 1e9)
        assert env["msgSizeSent"] == 4096
        assert env["localStart"] == 1.0  # time-valued extra also in seconds


class TestAggregation:
    RECORDS = [
        rec(node=0, dura=100),
        rec(node=0, dura=300),
        rec(node=1, dura=500),
    ]

    def run_one(self, ys):
        program = f'table name=t x=("node", node) {ys}'
        (table,) = generate_tables(self.RECORDS, program, ticks_per_sec=1.0)
        return table

    def test_sum(self):
        table = self.run_one('y=("s", dura, sum)')
        assert table.rows == {(0,): (400.0,), (1,): (500.0,)}

    def test_avg(self):
        table = self.run_one('y=("a", dura, avg)')
        assert table.rows[(0,)] == (200.0,)

    def test_count(self):
        table = self.run_one('y=("c", dura, count)')
        assert table.rows == {(0,): (2,), (1,): (1,)}

    def test_min_max(self):
        table = self.run_one('y=("lo", dura, min) y=("hi", dura, max)')
        assert table.rows[(0,)] == (100.0, 300.0)

    def test_condition_filters(self):
        program = 'table name=t condition=(dura > 200) x=("node", node) y=("c", dura, count)'
        (table,) = generate_tables(self.RECORDS, program, ticks_per_sec=1.0)
        assert table.rows == {(0,): (1,), (1,): (1,)}

    def test_multiple_tables_one_pass(self):
        program = """
        table name=a x=("node", node) y=("c", dura, count)
        table name=b x=("one", 1) y=("total", dura, sum)
        """
        a, b = generate_tables(self.RECORDS, program, ticks_per_sec=1.0)
        assert a.name == "a" and len(a.rows) == 2
        assert b.rows == {(1,): (900.0,)}

    def test_records_missing_fields_skipped(self):
        """A table over msgSizeSent only sees records that carry it."""
        records = [rec(), rec(itype=SEND, msgSizeSent=1024)]
        program = 'table name=t x=("n", node) y=("bytes", msgSizeSent, sum)'
        (table,) = generate_tables(records, program, ticks_per_sec=1.0)
        assert table.rows == {(0,): (1024.0,)}

    def test_string_program_parsed(self):
        (table,) = generate_tables(
            self.RECORDS, 'table name=t x=("n", node) y=("c", dura, count)',
            ticks_per_sec=1.0,
        )
        assert isinstance(table, StatsTable)


class TestTsvOutput:
    def test_header_and_rows(self):
        records = [rec(node=1, dura=100), rec(node=0, dura=50)]
        (table,) = generate_tables(
            records, 'table name=t x=("node", node) y=("sum", dura, sum)',
            ticks_per_sec=1.0,
        )
        tsv = table.to_tsv()
        lines = tsv.strip().split("\n")
        assert lines[0] == "node\tsum"
        assert lines[1] == "0\t50"  # sorted by x tuple
        assert lines[2] == "1\t100"

    def test_write_creates_file(self, tmp_path):
        records = [rec()]
        (table,) = generate_tables(
            records, 'table name=t x=("n", node) y=("c", dura, count)',
            ticks_per_sec=1.0,
        )
        path = table.write(tmp_path / "t.tsv")
        assert path.read_text().startswith("n\tc\n")

    def test_column_accessor(self):
        records = [rec(node=0), rec(node=1)]
        (table,) = generate_tables(
            records, 'table name=t x=("n", node) y=("c", dura, count) y=("s", dura, sum)',
            ticks_per_sec=1.0,
        )
        assert table.column("c") == {(0,): 1, (1,): 1}


class TestPredefinedTables:
    def make_records(self):
        return [
            # Running: not interesting.
            rec(start=0, dura=10**9),
            # MPI on two nodes.
            rec(itype=SEND, node=0, start=10**8, dura=10**8, msgSizeSent=4096, seqno=1),
            rec(itype=SEND, node=0, start=5 * 10**8, dura=10**8, msgSizeSent=2048, seqno=2),
            rec(itype=IntervalType.for_mpi_fn(1), node=1, start=2 * 10**8, dura=10**8,
                msgSizeRecv=4096, seqno=1),
            # A split call: begin+end pieces must count once.
            rec(itype=IntervalType.for_mpi_fn(6), node=1, bebits=BeBits.BEGIN,
                start=7 * 10**8, dura=10**7),
            rec(itype=IntervalType.for_mpi_fn(6), node=1, bebits=BeBits.END,
                start=8 * 10**8, dura=10**7),
        ]

    def test_all_four_tables_produced(self):
        tables = predefined_tables(self.make_records(), total_seconds=1.0)
        assert [t.name for t in tables] == [
            "interesting_by_node_bin",
            "duration_by_type",
            "calls_by_node_type",
            "bytes_by_node",
        ]

    def test_interesting_excludes_running(self):
        tables = predefined_tables(self.make_records(), total_seconds=1.0)
        binned = tables[0]
        total_interesting = sum(v[0] for v in binned.rows.values())
        assert total_interesting == pytest.approx(0.32)  # MPI only, no Running

    def test_calls_counted_by_bebits(self):
        """Begin + end pieces of one call count as ONE call — the purpose
        of the bebits (section 1.2)."""
        tables = predefined_tables(self.make_records(), total_seconds=1.0)
        calls = tables[2].column("calls")
        barrier_type = IntervalType.for_mpi_fn(6)
        assert calls[(1, barrier_type)] == 1

    def test_bytes_by_node(self):
        tables = predefined_tables(self.make_records(), total_seconds=1.0)
        bytes_table = tables[3]
        assert bytes_table.column("bytesSent")[(0,)] == 4096 + 2048
        assert bytes_table.column("messages")[(0,)] == 2

    def test_bad_total_rejected(self):
        with pytest.raises(StatsError):
            predefined_tables([], total_seconds=0)
