"""Failure injection: corrupted files must fail with framework errors.

Hypothesis flips random bytes in valid artifacts; readers must either
(a) succeed (the corruption hit slack/ignored bytes or produced another
structurally valid file) or (b) raise ``ReproError`` — never an uncaught
``struct.error`` / ``IndexError`` / ``UnicodeDecodeError``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntervalFileWriter, IntervalReader, standard_profile
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.errors import ReproError
from repro.tracing.events import RawEvent, dispatch_event
from repro.tracing.hooks import HookId
from repro.tracing.rawfile import RawFileHeader, RawTraceReader, RawTraceWriter
from repro.utils.slog import SlogFile, SlogWriter

PROFILE = standard_profile()


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fuzz")
    # Interval file.
    ivl = tmp / "f.ute"
    table = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])
    with IntervalFileWriter(
        ivl, PROFILE, table, field_mask=MASK_ALL_PER_NODE,
        markers={1: "phase"}, frame_bytes=512,
    ) as writer:
        for i in range(60):
            writer.write(
                IntervalRecord(
                    IntervalType.MARKER if i % 5 else IntervalType.RUNNING,
                    BeBits.COMPLETE, i * 100, 50, 0, 0, 0,
                    {"markerId": 1} if i % 5 else {},
                )
            )
    # Raw trace.
    raw = tmp / "f.raw"
    with RawTraceWriter(raw, RawFileHeader(0, 2, 0)) as writer:
        writer.write(RawEvent(HookId.MARKER_DEFINE, 0, 5, 0, (1,), "phase"))
        for i in range(60):
            writer.write(dispatch_event(i * 10, 5, i % 2))
    # SLOG.
    slog = tmp / "f.slog"
    sw = SlogWriter(
        slog, PROFILE, table, field_mask=MASK_ALL_PER_NODE,
        time_range=(0, 6000), frame_bytes=512,
    )
    for i in range(60):
        sw.write(IntervalRecord(IntervalType.RUNNING, BeBits.COMPLETE, i * 100, 50, 0, 0, 0))
    sw.close()
    return {
        "interval": ivl.read_bytes(),
        "raw": raw.read_bytes(),
        "slog": slog.read_bytes(),
        "tmp": tmp,
    }


def corrupt(data: bytes, flips: list[tuple[int, int]]) -> bytes:
    out = bytearray(data)
    for pos, value in flips:
        out[pos % len(out)] ^= value or 0xFF
    return bytes(out)


flip_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**6), st.integers(0, 255)),
    min_size=1,
    max_size=8,
)


@given(flips=flip_strategy)
@settings(max_examples=120, deadline=None)
def test_interval_reader_never_crashes(artifacts, flips):
    path = artifacts["tmp"] / "c.ute"
    path.write_bytes(corrupt(artifacts["interval"], flips))
    try:
        reader = IntervalReader(path, PROFILE)
        for _ in reader.intervals():
            pass
        reader.totals()
    except ReproError:
        pass  # the acceptable failure mode


@given(flips=flip_strategy)
@settings(max_examples=120, deadline=None)
def test_raw_reader_never_crashes(artifacts, flips):
    path = artifacts["tmp"] / "c.raw"
    path.write_bytes(corrupt(artifacts["raw"], flips))
    try:
        for _ in RawTraceReader(path):
            pass
    except ReproError:
        pass


@given(flips=flip_strategy)
@settings(max_examples=120, deadline=None)
def test_slog_reader_never_crashes(artifacts, flips):
    path = artifacts["tmp"] / "c.slog"
    path.write_bytes(corrupt(artifacts["slog"], flips))
    try:
        slog = SlogFile(path)
        slog.records()
        slog.preview_matrix()
    except ReproError:
        pass


@given(flips=flip_strategy)
@settings(max_examples=80, deadline=None)
def test_validator_never_crashes(artifacts, flips):
    """The validator must *report* corruption, not die on it."""
    from repro.utils.validate import validate_interval_file

    path = artifacts["tmp"] / "v.ute"
    path.write_bytes(corrupt(artifacts["interval"], flips))
    validate_interval_file(path, PROFILE)  # must return a report, not raise


# --------------------------------------------------------------------------
# The streaming byte sources must honor the same contract as the legacy
# in-memory path: corruption surfaces as ReproError, never a low-level
# exception — whichever backend serves the bytes.

STREAMING_MODES = ("mmap", "file")


@given(flips=flip_strategy)
@settings(max_examples=60, deadline=None)
def test_streaming_interval_reader_never_crashes(artifacts, flips):
    path = artifacts["tmp"] / "cs.ute"
    path.write_bytes(corrupt(artifacts["interval"], flips))
    for mode in STREAMING_MODES:
        try:
            with IntervalReader(path, PROFILE, mode=mode) as reader:
                for _ in reader.intervals():
                    pass
                reader.totals()
        except ReproError:
            pass


@given(flips=flip_strategy)
@settings(max_examples=60, deadline=None)
def test_streaming_raw_reader_never_crashes(artifacts, flips):
    path = artifacts["tmp"] / "cs.raw"
    path.write_bytes(corrupt(artifacts["raw"], flips))
    for mode in STREAMING_MODES:
        try:
            with RawTraceReader(path, mode=mode) as reader:
                for _ in reader:
                    pass
        except ReproError:
            pass


@given(flips=flip_strategy)
@settings(max_examples=60, deadline=None)
def test_streaming_slog_reader_never_crashes(artifacts, flips):
    path = artifacts["tmp"] / "cs.slog"
    path.write_bytes(corrupt(artifacts["slog"], flips))
    for mode in STREAMING_MODES:
        try:
            with SlogFile(path, mode=mode) as slog:
                slog.records()
                slog.preview_matrix()
        except ReproError:
            pass


# --------------------------------------------------------------------------
# Recovery properties: whatever the corruption, ``recover_file`` must either
# refuse with ReproError (unrecoverable — e.g. a smashed header) or produce
# an output that validates with zero errors.  Truncation additionally
# guarantees the output is a subset of the original records: nothing is
# invented past the cut.


@given(flips=flip_strategy)
@settings(max_examples=60, deadline=None)
def test_recover_flipped_interval_validates_or_refuses(artifacts, flips):
    from repro.utils.recover import recover_file

    path = artifacts["tmp"] / "rf.ute"
    out = artifacts["tmp"] / "rf.rec.ute"
    path.write_bytes(corrupt(artifacts["interval"], flips))
    out.unlink(missing_ok=True)
    try:
        report = recover_file(path, out, profile=PROFILE)
    except ReproError:
        return  # unrecoverable damage must still be a framework error
    assert report.ok, report.summary()
    # The recovered file replays cleanly through the strict reader.
    with IntervalReader(out, PROFILE) as reader:
        assert sum(1 for _ in reader.intervals()) == report.records_out


@given(flips=flip_strategy)
@settings(max_examples=40, deadline=None)
def test_recover_flipped_slog_validates_or_refuses(artifacts, flips):
    from repro.utils.recover import recover_file

    path = artifacts["tmp"] / "rf.slog"
    out = artifacts["tmp"] / "rf.rec.slog"
    path.write_bytes(corrupt(artifacts["slog"], flips))
    out.unlink(missing_ok=True)
    try:
        report = recover_file(path, out)
    except ReproError:
        return
    assert report.ok, report.summary()
    with SlogFile(out) as slog:
        assert len(slog.records()) == report.records_out


@given(cut=st.integers(min_value=1, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_recover_truncated_interval_yields_record_subset(artifacts, cut):
    from repro.utils.recover import recover_file

    original_bytes = artifacts["interval"]
    path = artifacts["tmp"] / "rt.ute"
    out = artifacts["tmp"] / "rt.rec.ute"
    path.write_bytes(original_bytes[: cut % len(original_bytes)])
    out.unlink(missing_ok=True)
    try:
        report = recover_file(path, out, profile=PROFILE)
    except ReproError:
        return  # cut inside the header: nothing to recover
    assert report.ok, report.summary()
    full = artifacts["tmp"] / "rt-full.ute"
    full.write_bytes(original_bytes)
    with IntervalReader(full, PROFILE) as reader:
        original = set(map(repr, reader.intervals()))
    with IntervalReader(out, PROFILE) as reader:
        recovered = [repr(r) for r in reader.intervals()]
    assert all(r in original for r in recovered)


@given(flips=flip_strategy)
@settings(max_examples=40, deadline=None)
def test_salvage_readers_never_crash(artifacts, flips):
    """Salvage mode holds the same contract as strict: corruption may cost
    records, but never surfaces a low-level exception (header damage still
    raises ReproError)."""
    tmp = artifacts["tmp"]
    for name, blob in (("interval", "sv.ute"), ("raw", "sv.raw"), ("slog", "sv.slog")):
        path = tmp / blob
        path.write_bytes(corrupt(artifacts[name], flips))
        try:
            if name == "interval":
                with IntervalReader(path, PROFILE, errors="salvage") as reader:
                    list(reader.intervals())
            elif name == "raw":
                with RawTraceReader(path, errors="salvage") as reader:
                    reader.events()
            else:
                with SlogFile(path, errors="salvage") as slog:
                    slog.records()
        except ReproError:
            pass


# --------------------------------------------------------------------------
# Wrap-mode traces torn mid-record: a crash or buffer-window edge can cut
# the final record short.  That must surface as FormatError ("truncated
# event"), never IndexError / struct.error.


def _wrap_trace(tmp_path):
    from repro.errors import FormatError  # noqa: F401  (documented contract)

    path = tmp_path / "wrap.raw"
    with RawTraceWriter(
        path, RawFileHeader(0, 2, 0), buffer_bytes=512, wrap=True
    ) as writer:
        writer.write(RawEvent(HookId.MARKER_DEFINE, 0, 5, 0, (1,), "phase"))
        for i in range(120):
            writer.write(dispatch_event(i * 10, 5, i % 2))
    assert writer.records_dropped > 0  # the window really wrapped
    return path


@pytest.mark.parametrize("mode", ["memory", *STREAMING_MODES])
def test_wrap_trace_truncated_final_record_raises_formaterror(tmp_path, mode):
    from repro.errors import FormatError

    path = _wrap_trace(tmp_path)
    with RawTraceReader(path) as reader:
        offsets = [(off, length) for _hook, off, length in reader.scan()]
    data = path.read_bytes()
    last_off, last_len = offsets[-1]
    # Cut inside the hookword, just past it, and one byte short of the end.
    for cut in (last_off + 1, last_off + 3, last_off + 5, last_off + last_len - 1):
        torn = tmp_path / f"torn-{cut}.raw"
        torn.write_bytes(data[:cut])
        with pytest.raises(FormatError, match="truncated event"):
            with RawTraceReader(torn, mode=mode) as reader:
                for _ in reader:
                    pass


@pytest.mark.parametrize("mode", ["memory", *STREAMING_MODES])
def test_intact_wrap_trace_still_reads(tmp_path, mode):
    path = _wrap_trace(tmp_path)
    with RawTraceReader(path, mode=mode) as reader:
        events = reader.events()
    assert events  # the surviving window reads cleanly
