"""The record-length escape boundary (core/records.py).

A record body under 256 bytes gets a 1-byte length prefix; a zero first
byte escapes to a 2-byte length.  These tests pin the edge exactly — body
lengths 253..257, i.e. total encoded records of 254/255/256 bytes and the
first escaped sizes — at the unit level, through an interval-file round
trip, and through the full write → convert → merge → read pipeline (where
MPI_Waitall's variable-length seqnos vector crosses the boundary).
"""

import pytest

from repro.core import IntervalFileWriter, IntervalReader
from repro.core.fields import ATTRS, DataType, FieldSpec, MASK_CORE
from repro.core.profilefmt import Profile, RecordSpec, standard_profile
from repro.core.records import (
    BeBits,
    IntervalRecord,
    IntervalType,
    decode_length,
    encode_length,
    skip_record,
)
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.tracing.events import RawEvent, global_clock_event
from repro.tracing.hooks import HookId, MPI_FN_IDS, hook_for_mpi_begin, hook_for_mpi_end
from repro.tracing.rawfile import RawFileHeader, RawTraceWriter
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files

#: Fixed body bytes of the test profile's record: the six common fields
#: (4 + 8 + 8 + 2 + 2 + 2) plus the label vector's 2-byte counter.
_FIXED_BODY = 28


def boundary_profile() -> Profile:
    """A profile whose single record type carries a char-vector ``label``,
    making the encoded body length tunable byte-by-byte."""
    names = ["rectype", "start", "dura", "node", "cpu", "thread", "label"]
    f = names.index
    u64 = dict(dtype=DataType.UINT, elem_len=8)
    u16 = dict(dtype=DataType.UINT, elem_len=2)
    u32 = dict(dtype=DataType.UINT, elem_len=4)
    fields = (
        FieldSpec(f("rectype"), **u32),
        FieldSpec(f("start"), **u64),
        FieldSpec(f("dura"), **u64),
        FieldSpec(f("node"), **u16),
        FieldSpec(f("cpu"), **u16),
        FieldSpec(f("thread"), **u16),
        FieldSpec(f("label"), dtype=DataType.CHAR, elem_len=1, vector=True, counter_len=2),
    )
    return Profile(["Padded"], names, {0: RecordSpec(0, 0, fields)})


class TestLengthPrefixUnit:
    @pytest.mark.parametrize("body_len", [1, 253, 254, 255])
    def test_short_form(self, body_len):
        prefix = encode_length(body_len)
        assert len(prefix) == 1
        decoded, body_offset = decode_length(prefix + b"x" * body_len, 0)
        assert (decoded, body_offset) == (body_len, 1)

    @pytest.mark.parametrize("body_len", [0, 256, 257, 0xFFFF])
    def test_escaped_form(self, body_len):
        prefix = encode_length(body_len)
        assert len(prefix) == 3
        assert prefix[0] == 0
        decoded, body_offset = decode_length(prefix + b"x" * body_len, 0)
        assert (decoded, body_offset) == (body_len, 3)

    @pytest.mark.parametrize("body_len", [253, 254, 255, 256, 257])
    def test_skip_record_lands_on_next(self, body_len):
        blob = encode_length(body_len) + b"x" * body_len + b"\x05"
        next_offset = skip_record(blob, 0)
        assert blob[next_offset] == 5


class TestRecordBoundary:
    """Whole encoded records of exactly 254/255/256 bytes (and the first
    escaped sizes) survive encode/decode and the interval-file round trip."""

    # body 253 -> record 254; 254 -> 255; 255 -> 256 (the last short form);
    # 256 -> 259 and 257 -> 260 (escaped).
    BODIES = [253, 254, 255, 256, 257]

    @staticmethod
    def _record(body_len: int, seq: int) -> IntervalRecord:
        label = chr(ord("a") + seq % 26) * (body_len - _FIXED_BODY)
        return IntervalRecord(
            0, BeBits.COMPLETE, seq * 1000, 500, 0, 0, 0, {"label": label}
        )

    @pytest.mark.parametrize("body_len", BODIES)
    def test_encode_decode_roundtrip(self, body_len):
        profile = boundary_profile()
        record = self._record(body_len, 0)
        blob = record.encode(profile, MASK_CORE)
        expected_prefix = 1 if body_len < 256 else 3
        assert len(blob) == expected_prefix + body_len
        decoded, consumed = IntervalRecord.decode(blob, 0, profile, MASK_CORE)
        assert consumed == len(blob)
        assert decoded == record

    @pytest.mark.parametrize("mode", ["memory", "mmap", "file"])
    def test_interval_file_roundtrip(self, tmp_path, mode):
        profile = boundary_profile()
        records = [self._record(body, i) for i, body in enumerate(self.BODIES)]
        path = tmp_path / "boundary.ute"
        table = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])
        with IntervalFileWriter(
            path, profile, table, field_mask=MASK_CORE, frame_bytes=256
        ) as writer:
            for record in records:
                writer.write(record)
        with IntervalReader(path, profile, mode=mode) as reader:
            assert list(reader.intervals()) == records


class TestWaitallPipelineBoundary:
    """Full pipeline: Waitall seqnos vectors sized to cross the escape edge
    survive write → convert → merge → read intact."""

    # Per-node Waitall body is 51 + 8n bytes: n in 24..28 spans the 1-byte /
    # escaped prefix boundary (243..275 bytes).
    SIZES = list(range(24, 29))

    def _write_node(self, tmp_path):
        waitall = MPI_FN_IDS["MPI_Waitall"]
        path = tmp_path / "node0.raw"
        with RawTraceWriter(path, RawFileHeader(0, 2, 0)) as writer:
            writer.write(global_clock_event(0, 0))
            writer.write(RawEvent(HookId.THREAD_INFO, 0, 500, 0, (1000, 0, 0, 0), "main"))
            writer.write(RawEvent(HookId.DISPATCH, 5, 500, 0))
            t = 10
            for n in self.SIZES:
                writer.write(RawEvent(hook_for_mpi_begin(waitall), t, 500, 0, (0,)))
                seqnos = tuple(range(1, n + 1))
                writer.write(RawEvent(hook_for_mpi_end(waitall), t + 50, 500, 0, seqnos))
                t += 100
        return path

    def test_seqnos_vectors_cross_boundary_intact(self, tmp_path):
        raw = self._write_node(tmp_path)
        result = convert_traces([raw], tmp_path / "ivl")
        profile = standard_profile()
        waitall_type = IntervalType.for_mpi_fn(MPI_FN_IDS["MPI_Waitall"])

        with IntervalReader(result.interval_paths[0], profile) as reader:
            vectors = [
                r.extra["seqnos"] for r in reader.intervals()
                if r.itype == waitall_type
            ]
        assert vectors == [list(range(1, n + 1)) for n in self.SIZES]

        merged = tmp_path / "merged.ute"
        merge_interval_files(result.interval_paths, merged, profile)
        with IntervalReader(merged, profile) as reader:
            merged_vectors = [
                r.extra["seqnos"] for r in reader.intervals()
                if r.itype == waitall_type
            ]
        assert merged_vectors == vectors
