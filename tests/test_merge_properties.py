"""Property-based tests for the merge utility over random per-node files."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntervalFileWriter, IntervalReader, standard_profile
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.utils.merge import merge_interval_files

PROFILE = standard_profile()


@st.composite
def node_file_spec(draw, node_id: int):
    """Random clock parameters and record schedule for one node."""
    offset = draw(st.integers(min_value=0, max_value=5_000_000))
    drift_ppm = draw(st.floats(min_value=-100, max_value=100))
    n_records = draw(st.integers(min_value=1, max_value=40))
    gaps = draw(
        st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=n_records,
            max_size=n_records,
        )
    )
    durations = draw(
        st.lists(
            st.integers(min_value=1, max_value=5_000),
            min_size=n_records,
            max_size=n_records,
        )
    )
    return node_id, offset, drift_ppm, gaps, durations


def build_node_file(tmp_path, spec):
    """Write one node's interval file with clock pairs reflecting its
    drifting clock, returning (path, true-time records)."""
    node_id, offset, drift_ppm, gaps, durations = spec
    rate = 1 + drift_ppm * 1e-6

    def local(true_ns: int) -> int:
        return offset + round(rate * true_ns)

    true_records = []
    t = 0
    for gap, dura in zip(gaps, durations):
        t += gap
        true_records.append((t, dura))
        t += dura
    horizon = t + 1000

    records = []
    # Clock pairs bracket the run (sampler start + stop).
    for g in (0, horizon):
        records.append(
            IntervalRecord(
                IntervalType.CLOCKPAIR, BeBits.COMPLETE, local(g), 0,
                node_id, 0, 0, {"globalTs": g},
            )
        )
    for start, dura in true_records:
        records.append(
            IntervalRecord(
                IntervalType.RUNNING, BeBits.COMPLETE,
                local(start), local(start + dura) - local(start),
                node_id, 0, 0,
            )
        )
    records.sort(key=lambda r: r.end)
    path = tmp_path / f"n{node_id}.ute"
    table = ThreadTable([ThreadEntry(node_id, 1, 100 + node_id, node_id, 0, 0, "t")])
    with IntervalFileWriter(
        path, PROFILE, table, field_mask=MASK_ALL_PER_NODE, frame_bytes=512
    ) as writer:
        for rec in records:
            writer.write(rec)
    return path, true_records


@given(data=st.data(), n_nodes=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_merge_recovers_true_time(tmp_path_factory, data, n_nodes):
    """For any drifting clocks, the merged records land within a couple of
    ticks of the true times, in correct global order."""
    tmp = tmp_path_factory.mktemp("mp")
    paths = []
    truth: dict[int, list[tuple[int, int]]] = {}
    for node_id in range(n_nodes):
        spec = data.draw(node_file_spec(node_id))
        path, true_records = build_node_file(tmp, spec)
        paths.append(path)
        truth[node_id] = true_records

    result = merge_interval_files(paths, tmp / "merged.ute", PROFILE)
    reader = IntervalReader(tmp / "merged.ute", PROFILE)
    merged = list(reader.intervals())

    # Global ordering invariant.
    ends = [r.end for r in merged]
    assert ends == sorted(ends)

    # Per node: adjusted times match the true schedule within rounding.
    by_node: dict[int, list[IntervalRecord]] = {}
    for r in merged:
        by_node.setdefault(r.node, []).append(r)
    for node_id, true_records in truth.items():
        got = sorted(by_node[node_id], key=lambda r: r.start)
        expected = sorted(true_records)
        assert len(got) == len(expected)
        for record, (start, dura) in zip(got, expected):
            assert abs(record.start - start) <= 3
            assert abs(record.end - (start + dura)) <= 3


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_merge_preserves_record_count_and_local_start(tmp_path_factory, data):
    tmp = tmp_path_factory.mktemp("mp2")
    spec = data.draw(node_file_spec(0))
    path, true_records = build_node_file(tmp, spec)
    merge_interval_files([path], tmp / "m.ute", PROFILE)
    reader = IntervalReader(tmp / "m.ute", PROFILE)
    merged = list(reader.intervals())
    assert len(merged) == len(true_records)
    # localStart preserves the original (pre-adjustment) timestamps.
    node_id, offset, drift_ppm, *_ = spec
    rate = 1 + drift_ppm * 1e-6
    for record, (start, _dura) in zip(
        sorted(merged, key=lambda r: r.start), sorted(true_records)
    ):
        assert record.extra["localStart"] == offset + round(rate * start)
