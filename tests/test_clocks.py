"""Unit and property tests for the clock models (paper Figure 1 behaviour)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.clocks import ClockSpec, GlobalClock, LocalClock
from repro.cluster.engine import NS_PER_SEC


def test_zero_drift_clock_is_identity_plus_offset():
    clock = LocalClock(ClockSpec(offset_ns=5000))
    assert clock.read(0) == 5000
    assert clock.read(NS_PER_SEC) == NS_PER_SEC + 5000


def test_positive_drift_gains_time():
    clock = LocalClock(ClockSpec(drift_ppm=20.0))
    # +20 ppm over 1 s of true time -> +20 us of local time.
    assert clock.read(NS_PER_SEC) == NS_PER_SEC + 20_000


def test_negative_drift_loses_time():
    clock = LocalClock(ClockSpec(drift_ppm=-50.0))
    assert clock.read(NS_PER_SEC) == NS_PER_SEC - 50_000


def test_discrepancy_grows_linearly_with_elapsed_time():
    """The core Figure 1 phenomenon: accumulated discrepancy between two
    local clocks is proportional to elapsed time."""
    a = LocalClock(ClockSpec(drift_ppm=18.0))
    b = LocalClock(ClockSpec(drift_ppm=-32.0))
    d10 = a.discrepancy_ns(10 * NS_PER_SEC, b)
    d140 = a.discrepancy_ns(140 * NS_PER_SEC, b)
    assert d140 == pytest.approx(14 * d10, rel=1e-9)
    # 50 ppm relative drift over 140 s -> 7 ms accumulated discrepancy.
    assert d140 == pytest.approx(140 * 50_000, rel=1e-6)


@given(
    drift=st.floats(min_value=-200, max_value=200),
    offset=st.integers(min_value=-10**9, max_value=10**9),
    t1=st.integers(min_value=0, max_value=10**12),
    dt=st.integers(min_value=1, max_value=10**10),
)
@settings(max_examples=200)
def test_local_clock_strictly_monotonic(drift, offset, t1, dt):
    clock = LocalClock(ClockSpec(offset_ns=offset, drift_ppm=drift))
    assert clock.read(t1 + dt) > clock.read(t1)


@given(
    drift=st.floats(min_value=-200, max_value=200),
    wobble=st.floats(min_value=0, max_value=5),
    t=st.integers(min_value=0, max_value=10**12),
)
@settings(max_examples=200)
def test_rate_stays_near_one(drift, wobble, t):
    clock = LocalClock(ClockSpec(drift_ppm=drift, wobble_ppm=wobble))
    rate = clock.rate_at(t)
    assert abs(rate - 1.0) <= (abs(drift) + wobble) * 1e-6 + 1e-12


def test_wobble_changes_rate_over_time():
    clock = LocalClock(ClockSpec(wobble_ppm=10.0, wobble_period_s=100.0))
    quarter = 25 * NS_PER_SEC
    assert clock.rate_at(quarter) == pytest.approx(1.0 + 10e-6, rel=1e-9)
    assert clock.rate_at(3 * quarter) == pytest.approx(1.0 - 10e-6, rel=1e-9)


def test_wobble_bounded_deviation_from_linear():
    """The wobble integral is bounded by amp/omega: the clock never runs away."""
    spec = ClockSpec(wobble_ppm=5.0, wobble_period_s=60.0)
    clock = LocalClock(spec)
    bound = 2 * (5e-6) / (2 * math.pi / (60 * NS_PER_SEC))
    for t_s in range(0, 600, 7):
        t = t_s * NS_PER_SEC
        assert abs(clock.read(t) - t) <= bound + 1


def test_global_clock_is_true_time():
    clock = GlobalClock()
    assert clock.read(0) == 0
    assert clock.read(123456789) == 123456789
