"""Tests for the HTML report builder."""

import pytest

from repro.utils.stats import StatsTable
from repro.viz.report import HtmlReport, build_run_report


class TestHtmlReport:
    def test_basic_document(self, tmp_path):
        report = HtmlReport("My run")
        report.add_heading("Section")
        report.add_text("Some body text.")
        path = report.write(tmp_path / "r.html")
        html = path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<title>My run</title>" in html
        assert "<h2>Section</h2>" in html
        assert "Some body text." in html

    def test_text_escaped(self, tmp_path):
        report = HtmlReport("<script>")
        report.add_text("a < b & c")
        html = report.to_string()
        assert "<script>" not in html.split("<style>")[0].replace(
            "<title>&lt;script&gt;</title>", ""
        )
        assert "a &lt; b &amp; c" in html

    def test_svg_embedded_inline(self, tmp_path):
        from repro.viz.svg import SvgCanvas

        canvas = SvgCanvas(100, 50)
        canvas.rect(0, 0, 10, 10, fill="#2a78d6", title="tip")
        svg_path = canvas.write(tmp_path / "x.svg")
        report = HtmlReport("r")
        report.add_svg(svg_path, caption="a rectangle")
        html = report.to_string()
        assert "<svg" in html
        assert "a rectangle" in html
        assert "<title>tip</title>" in html  # hover tooltip preserved

    def test_table_rendering(self):
        table = StatsTable("t", ("node",), ("sum",), {(0,): (1.5,), (1,): (2.0,)})
        report = HtmlReport("r")
        report.add_table(table)
        html = report.to_string()
        assert "<th>node</th>" in html and "<th>sum</th>" in html
        assert "<td>1.5</td>" in html

    def test_table_row_cap(self):
        rows = {(i,): (float(i),) for i in range(100)}
        table = StatsTable("big", ("i",), ("v",), rows)
        report = HtmlReport("r")
        report.add_table(table, max_rows=10)
        html = report.to_string()
        assert "90 more rows" in html

    def test_pre_block(self):
        report = HtmlReport("r")
        report.add_pre("line1\nline2 |..ab..|")
        assert "<pre>line1\nline2 |..ab..|</pre>" in report.to_string()


class TestBuildRunReport:
    @pytest.fixture(scope="class")
    def slog(self, tmp_path_factory):
        from repro.core import standard_profile
        from repro.utils.convert import convert_traces
        from repro.utils.merge import merge_interval_files
        from repro.workloads import run_pingpong

        tmp = tmp_path_factory.mktemp("report")
        run = run_pingpong(tmp / "raw")
        conv = convert_traces(run.raw_paths, tmp / "ivl")
        merged = merge_interval_files(
            conv.interval_paths, tmp / "m.ute", standard_profile(),
            slog_path=tmp / "r.slog",
        )
        return merged.slog_path

    def test_full_report_builds(self, slog, tmp_path):
        path = build_run_report(slog, tmp_path / "report.html", title="PingPong")
        html = path.read_text()
        assert "PingPong" in html
        assert "Whole-run preview" in html
        assert "thread view" in html and "processor view" in html
        assert "interesting_by_node_bin" in html
        assert html.count("<svg") >= 3  # preview + two views

    def test_cli_report(self, slog, tmp_path, capsys):
        from repro import cli

        out = tmp_path / "cli-report.html"
        assert cli.main_report([str(slog), "-o", str(out), "--views", "thread"]) == 0
        assert out.exists()
        assert "thread view" in out.read_text()
