"""Tests for the section 5 extension: disk model, I/O and page-fault
tracing, and their flow through convert/merge/stats/views."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.cluster.disk import Disk, DiskSpec
from repro.cluster.engine import Engine
from repro.core import IntervalReader, standard_profile
from repro.core.records import BeBits, IntervalType
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.utils.stats import generate_tables
from repro.workloads import run_ioheavy
from repro.workloads.ioheavy import IoHeavyConfig

PROFILE = standard_profile()


class TestDiskModel:
    def test_service_time_has_seek_plus_transfer(self):
        spec = DiskSpec(seek_ns=1000, bytes_per_ns=1.0)
        assert spec.service_ns(500) == 1500

    def test_single_request_completes_after_service(self):
        eng = Engine()
        disk = Disk(eng, 0, DiskSpec(seek_ns=1000, bytes_per_ns=1.0))
        fut = disk.submit(500)
        eng.run()
        assert fut.done
        assert eng.now == 1500

    def test_requests_serialize_fifo(self):
        eng = Engine()
        disk = Disk(eng, 0, DiskSpec(seek_ns=1000, bytes_per_ns=1.0))
        done = []
        disk.submit(0).add_callback(lambda f: done.append(("a", eng.now)))
        disk.submit(0).add_callback(lambda f: done.append(("b", eng.now)))
        eng.run()
        assert done == [("a", 1000), ("b", 2000)]

    def test_counters(self):
        eng = Engine()
        disk = Disk(eng, 0, DiskSpec(seek_ns=100, bytes_per_ns=1.0))
        disk.submit(900)
        eng.run()
        assert disk.requests == 1
        assert disk.bytes_moved == 900
        assert disk.utilization(eng.now) == pytest.approx(1.0)

    def test_negative_size_rejected(self):
        eng = Engine()
        disk = Disk(eng, 0)
        with pytest.raises(ValueError):
            disk.submit(-1)


@pytest.fixture(scope="module")
def io_pipeline(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("io")
    config = IoHeavyConfig(phases=2)
    run = run_ioheavy(tmp / "raw", config)
    conv = convert_traces(run.raw_paths, tmp / "ivl")
    merged = merge_interval_files(
        conv.interval_paths, tmp / "merged.ute", PROFILE, slog_path=tmp / "run.slog"
    )
    return {"run": run, "conv": conv, "merged": merged, "tmp": tmp, "config": config}


class TestIoTracing:
    def test_io_states_converted(self, io_pipeline):
        reader = IntervalReader(io_pipeline["merged"].merged_path, PROFILE)
        io_records = [r for r in reader.intervals() if r.itype == IntervalType.IO]
        assert io_records
        # 4 tasks x (1 read + 2 writes), counting calls via bebits.
        calls = [
            r for r in io_records
            if r.bebits in (BeBits.COMPLETE, BeBits.BEGIN)
        ]
        assert len(calls) == 4 * 3

    def test_io_fields_recorded(self, io_pipeline):
        config = io_pipeline["config"]
        reader = IntervalReader(io_pipeline["merged"].merged_path, PROFILE)
        io_records = [r for r in reader.intervals() if r.itype == IntervalType.IO]
        reads = [r for r in io_records if r.extra["ioWrite"] == 0]
        writes = [r for r in io_records if r.extra["ioWrite"] == 1]
        assert {r.extra["ioBytes"] for r in reads} == {config.read_bytes}
        assert {r.extra["ioBytes"] for r in writes} == {config.write_bytes}

    def test_io_wall_span_includes_disk_service(self, io_pipeline):
        """A 1 MiB write on a 20 MB/s disk holds its I/O state open for
        >= ~57 ms of wall time.  The thread is *blocked* for most of it, so
        the on-CPU piece durations are tiny — the state's wall span (begin
        piece start to end piece end) is what carries the disk time, which
        is exactly why interval pieces + bebits matter."""
        config = io_pipeline["config"]
        reader = IntervalReader(io_pipeline["merged"].merged_path, PROFILE)
        min_service = DiskSpec().service_ns(config.write_bytes)
        spans = []
        on_cpu = []
        open_start: dict[tuple, int] = {}
        for r in reader.intervals():
            if r.itype != IntervalType.IO or r.extra["ioWrite"] != 1:
                continue
            key = (r.node, r.thread)
            if r.bebits is BeBits.COMPLETE:
                spans.append(r.duration)
            elif r.bebits is BeBits.BEGIN:
                open_start[key] = r.start
            elif r.bebits is BeBits.END and key in open_start:
                spans.append(r.end - open_start.pop(key))
            on_cpu.append(r.duration)
        assert spans
        assert all(span >= min_service * 0.95 for span in spans)
        # And the on-CPU time is a small fraction of the span: the call was
        # split into pieces around a long blocked gap.
        assert sum(on_cpu) < 0.2 * sum(spans)

    def test_shared_disk_serializes_io(self, io_pipeline):
        """Two tasks per node: their simultaneous checkpoints queue, so one
        task's write state lasts noticeably longer than a lone write."""
        config = io_pipeline["config"]
        reader = IntervalReader(io_pipeline["merged"].merged_path, PROFILE)
        service = DiskSpec().service_ns(config.write_bytes)
        # Group write-state durations per (node, thread, begin-time cluster).
        durations = []
        open_start: dict[tuple, int] = {}
        for r in reader.intervals():
            if r.itype != IntervalType.IO or r.extra["ioWrite"] != 1:
                continue
            key = (r.node, r.thread)
            if r.bebits is BeBits.COMPLETE:
                durations.append(r.duration)
            elif r.bebits is BeBits.BEGIN:
                open_start[key] = r.start
            elif r.bebits is BeBits.END and key in open_start:
                durations.append(r.end - open_start.pop(key))
        assert durations
        # The queued writer waits ~2x service.
        assert max(durations) > 1.6 * service

    def test_page_faults_converted(self, io_pipeline):
        config = io_pipeline["config"]
        reader = IntervalReader(io_pipeline["merged"].merged_path, PROFILE)
        faults = [
            r for r in reader.intervals() if r.itype == IntervalType.PAGEFAULT
        ]
        calls = [r for r in faults if r.bebits in (BeBits.COMPLETE, BeBits.BEGIN)]
        assert len(calls) == 4 * config.phases * config.page_faults_per_phase

    def test_stats_language_sees_extension_fields(self, io_pipeline):
        reader = IntervalReader(io_pipeline["merged"].merged_path, PROFILE)
        records = list(reader.intervals())
        program = """
        table name=io_by_node
              condition=(ioBytes > 0 and (bebits == 0 or bebits == 1))
              x=("node", node)
              y=("bytes", ioBytes, sum)
              y=("ops", ioBytes, count)
        """
        (table,) = generate_tables(records, program)
        assert table.rows
        config = io_pipeline["config"]
        total_bytes = sum(v[0] for v in table.rows.values())
        expected = 4 * (config.read_bytes + config.phases * config.write_bytes)
        assert total_bytes == expected

    def test_views_show_extension_states(self, io_pipeline, tmp_path):
        from repro.viz.jumpshot import Jumpshot

        viewer = Jumpshot(io_pipeline["merged"].slog_path)
        view = viewer.build_view(viewer.slog.records(), "thread")
        assert IntervalType.IO in view.key_names
        assert view.key_names[IntervalType.IO] == "FileIO"
        assert IntervalType.PAGEFAULT in view.key_names
        path = viewer.render_whole_run(tmp_path / "io.svg")
        assert "FileIO" in path.read_text()

    def test_compute_with_faults_zero_faults(self, tmp_path):
        """No faults -> plain compute, no PageFault states."""
        from repro.workloads.ioheavy import IoHeavyConfig

        run = run_ioheavy(
            tmp_path / "raw",
            IoHeavyConfig(phases=1, page_faults_per_phase=0),
        )
        conv = convert_traces(run.raw_paths, tmp_path / "ivl")
        for p in conv.interval_paths:
            reader = IntervalReader(p, PROFILE)
            assert all(
                r.itype != IntervalType.PAGEFAULT for r in reader.intervals()
            )
