"""Tests for the follow endpoints (``/follow/*``) and live sessions.

A live dataset (attached while only its ``<path>.live/`` container
exists) must serve every ordinary endpoint against the last published
epoch, push epoch/final events over SSE, answer long-polls under
per-epoch ETags, and hot-swap to the finished file when the writer
closes — all without the session leaving the pool.
"""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.live import LiveSlogWriter
from repro.repository import Repository
from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.serve.client import RetriesExhausted

PROFILE = standard_profile()


def table():
    return ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0")])


def running(start, dura):
    return IntervalRecord(
        IntervalType.RUNNING, BeBits.COMPLETE, start, dura, 0, 0, 0
    )


@pytest.fixture()
def live_served(tmp_path):
    """A live writer with one published epoch, served as dataset 'run'."""
    path = tmp_path / "run.slog"
    writer = LiveSlogWriter(
        path, PROFILE, table(), field_mask=MASK_ALL_MERGED, frame_bytes=512,
    )
    for i in range(20):
        writer.write(running(i * 10, 5))
    writer.publish(seal=True)  # epoch 1
    repo = Repository(None)
    repo.attach("run", path)
    with ServerThread(repo, ServerConfig(port=0)) as srv:
        yield srv, ServeClient(srv.base_url, dataset="run"), writer
    if not writer._closed:
        writer.abort()


class TestLiveSessions:
    def test_ordinary_endpoints_serve_the_epoch(self, live_served):
        _, client, _writer = live_served
        frames = client.frames()
        assert frames["count"] >= 1
        preview = client.preview()
        assert preview["bins"] > 0
        rows = client.query({"type": str(int(IntervalType.RUNNING))}).json()
        assert len(rows["rows"]) == 20

    def test_hot_reload_on_publish(self, live_served):
        _, client, writer = live_served
        for i in range(20, 40):
            writer.write(running(i * 10, 5))
        writer.publish(seal=True)  # epoch 2
        rows = client.query({"type": str(int(IntervalType.RUNNING))}).json()
        assert len(rows["rows"]) == 40

    def test_etag_changes_per_epoch(self, live_served):
        srv, client, writer = live_served
        url = f"{srv.base_url}/api/d/run/frames"
        with urllib.request.urlopen(url) as resp:
            etag1 = resp.headers["ETag"]
        writer.write(running(500, 5))
        writer.publish(seal=True)
        with urllib.request.urlopen(url) as resp:
            etag2 = resp.headers["ETag"]
        assert etag1 != etag2 and "live" in etag1

    def test_finalization_swaps_session_in_place(self, live_served):
        _, client, writer = live_served
        writer.close()
        state = client.follow_poll(since=-1, wait=0.1)
        assert state["finalized"] and not state["live"]
        rows = client.query({"type": str(int(IntervalType.RUNNING))}).json()
        assert len(rows["rows"]) == 20


class TestFollowPoll:
    def test_poll_reports_current_epoch(self, live_served):
        _, client, _writer = live_served
        state = client.follow_poll(since=-1, wait=0.1)
        assert state["live"] and state["seq"] == 1 and state["changed"]
        assert state["frames"] >= 1

    def test_poll_blocks_until_publish(self, live_served):
        _, client, writer = live_served

        def publish_soon():
            time.sleep(0.2)
            writer.write(running(500, 5))
            writer.publish(seal=True)

        thread = threading.Thread(target=publish_soon)
        thread.start()
        t0 = time.monotonic()
        state = client.follow_poll(since=1, wait=5.0)
        elapsed = time.monotonic() - t0
        thread.join()
        assert state["seq"] == 2 and state["changed"]
        assert 0.1 < elapsed < 5.0

    def test_per_epoch_etag_revalidation(self, live_served):
        srv, client, _writer = live_served
        url = f"{srv.base_url}/api/d/run/follow/poll?since=-1&wait=0.1"
        with urllib.request.urlopen(url) as resp:
            etag = resp.headers["ETag"]
        request = urllib.request.Request(url, headers={"If-None-Match": etag})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 304

    def test_bad_since_is_400(self, live_served):
        srv, _client, _writer = live_served
        url = f"{srv.base_url}/api/d/run/follow/poll?since=banana"
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(url)
        assert info.value.code == 400


class TestFollowSse:
    def test_stream_sees_epochs_then_final(self, live_served):
        srv, client, writer = live_served
        events = []

        def follow():
            fc = ServeClient(srv.base_url, dataset="run")
            for event in fc.follow_events(
                mode="preview", since=1, params={"poll": "0.02"}
            ):
                events.append(event)

        thread = threading.Thread(target=follow)
        thread.start()
        time.sleep(0.2)
        for i in range(20, 30):
            writer.write(running(i * 10, 5))
        writer.publish(seal=True)
        time.sleep(0.2)
        writer.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        kinds = [e.event for e in events]
        assert "epoch" in kinds and kinds[-1] == "final"
        seqs = [e.seq for e in events if e.event == "epoch"]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        epoch = next(e for e in events if e.event == "epoch")
        assert epoch.data["preview"]["bins"] > 0
        assert epoch.data["frames"] >= 1

    def test_query_mode_carries_results(self, live_served):
        srv, _client, writer = live_served
        fc = ServeClient(srv.base_url, dataset="run")
        writer.publish(final=True)  # finalize the container in place
        events = list(
            fc.follow_events(
                mode="query",
                since=-1,
                params={"type": str(int(IntervalType.RUNNING)), "poll": "0.02"},
            )
        )
        kinds = [e.event for e in events]
        assert kinds == ["epoch", "final"]
        assert len(events[0].data["query"]["rows"]) == 20

    def test_finished_dataset_streams_one_epoch(self, tmp_path):
        path = tmp_path / "done.slog"
        with LiveSlogWriter(
            path, PROFILE, table(), field_mask=MASK_ALL_MERGED, frame_bytes=512,
        ) as writer:
            for i in range(10):
                writer.write(running(i * 10, 5))
        repo = Repository(None)
        repo.attach("done", path)
        with ServerThread(repo, ServerConfig(port=0)) as srv:
            fc = ServeClient(srv.base_url, dataset="done")
            events = list(fc.follow_events(mode="preview", since=-1))
            assert [e.event for e in events] == ["epoch", "final"]
            assert not events[0].data["live"]

    def test_stream_timeout_event(self, live_served):
        srv, _client, _writer = live_served
        fc = ServeClient(srv.base_url, dataset="run")
        events = list(
            fc.follow_events(
                mode="preview", since=1,
                params={"poll": "0.02", "max_s": "0.1"},
            )
        )
        assert [e.event for e in events] == ["timeout"]

    def test_follow_metrics_exported(self, live_served):
        srv, client, writer = live_served
        fc = ServeClient(srv.base_url, dataset="run")
        writer.publish(final=True)
        list(fc.follow_events(mode="preview", since=-1))
        metrics = client.metrics()
        assert 'ute_serve_follow_events_total{dataset="run",kind="epoch"}' in metrics
        assert 'ute_serve_follow_events_total{dataset="run",kind="final"}' in metrics


class TestClientRetryBudget:
    def test_wall_clock_cap_on_connection_retries(self):
        client = ServeClient(
            "http://127.0.0.1:9",  # discard port: connection refused
            retries=1000,
            backoff=0.05,
            max_retry_seconds=0.3,
        )
        t0 = time.monotonic()
        with pytest.raises(RetriesExhausted) as info:
            client.frames()
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0
        assert info.value.attempts >= 2
        assert info.value.elapsed == pytest.approx(elapsed, abs=2.0)
        # Still catchable as the URLError callers already handle.
        assert isinstance(info.value, urllib.error.URLError)

    def test_zero_budget_fails_fast(self):
        client = ServeClient(
            "http://127.0.0.1:9", retries=1000, max_retry_seconds=0.0,
        )
        with pytest.raises(RetriesExhausted) as info:
            client.frames()
        assert info.value.attempts == 1
