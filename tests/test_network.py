"""Tests for the switch network model, including the contention option."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.cluster.engine import Engine
from repro.cluster.network import NetworkSpec, SwitchNetwork
from repro.mpi import MpiRuntime


class TestTimingModel:
    def test_remote_transfer_time(self):
        spec = NetworkSpec(latency_ns=1000, bytes_per_ns=1.0)
        assert spec.transfer_ns(500, same_node=False) == 1500

    def test_local_transfer_cheaper(self):
        spec = NetworkSpec()
        big = 1 << 20
        assert spec.transfer_ns(big, same_node=True) < spec.transfer_ns(
            big, same_node=False
        )

    def test_delivery_schedules_callback(self):
        eng = Engine()
        net = SwitchNetwork(eng, NetworkSpec(latency_ns=100, bytes_per_ns=1.0))
        got = []
        arrival = net.deliver(0, 1, 50, "payload", got.append)
        assert arrival == 150
        eng.run()
        assert got == ["payload"]
        assert eng.now == 150

    def test_counters(self):
        eng = Engine()
        net = SwitchNetwork(eng)
        net.deliver(0, 1, 100, None, lambda p: None)
        net.deliver(1, 0, 200, None, lambda p: None)
        assert net.messages_sent == 2
        assert net.bytes_sent == 300


class TestContention:
    def test_pipelined_without_contention(self):
        """Default model: two messages from one node arrive together."""
        eng = Engine()
        net = SwitchNetwork(eng, NetworkSpec(latency_ns=100, bytes_per_ns=1.0))
        times = []
        net.deliver(0, 1, 1000, "a", lambda p: times.append(eng.now))
        net.deliver(0, 2, 1000, "b", lambda p: times.append(eng.now))
        eng.run()
        assert times == [1100, 1100]

    def test_nic_serializes_with_contention(self):
        """Contention mode: the second message waits for the adapter."""
        eng = Engine()
        net = SwitchNetwork(
            eng, NetworkSpec(latency_ns=100, bytes_per_ns=1.0, contention=True)
        )
        times = []
        net.deliver(0, 1, 1000, "a", lambda p: times.append(("a", eng.now)))
        net.deliver(0, 2, 1000, "b", lambda p: times.append(("b", eng.now)))
        eng.run()
        assert times == [("a", 1100), ("b", 2100)]

    def test_different_sources_do_not_contend(self):
        eng = Engine()
        net = SwitchNetwork(
            eng, NetworkSpec(latency_ns=100, bytes_per_ns=1.0, contention=True)
        )
        times = []
        net.deliver(0, 2, 1000, "a", lambda p: times.append(eng.now))
        net.deliver(1, 2, 1000, "b", lambda p: times.append(eng.now))
        eng.run()
        assert times == [1100, 1100]

    def test_contention_slows_mpi_fanout(self):
        """End to end: a rank-0 scatter takes longer with NIC contention."""

        def elapsed(contention):
            spec = ClusterSpec(
                n_nodes=4, cpus_per_node=2,
                network=NetworkSpec(contention=contention),
            )
            cl = Cluster(spec)
            rt = MpiRuntime(cl)

            def body(ctx):
                yield from ctx.scatter(0, 1 << 20)

            rt.launch(4, body, tasks_per_node=1)
            rt.run()
            return cl.engine.now

        assert elapsed(True) > elapsed(False) * 1.5
