"""Lenient conversion of wrap-mode (circular buffer) traces, and the
task-aware statistics additions."""

import pytest

from repro.core import IntervalReader, standard_profile
from repro.core.records import IntervalType
from repro.errors import TraceError
from repro.tracing import RawTraceReader, TraceOptions
from repro.utils.convert import convert_traces
from repro.utils.validate import validate_interval_file
from repro.workloads import run_pingpong, run_synthetic
from repro.workloads.synthetic import SyntheticConfig

PROFILE = standard_profile()


@pytest.fixture(scope="module")
def wrapped_run(tmp_path_factory):
    """A run traced with a tiny circular buffer: the head of every trace is
    overwritten, so begin events, THREAD_INFOs, and marker defines are lost."""
    tmp = tmp_path_factory.mktemp("wrap")
    run = run_synthetic(
        tmp / "raw",
        SyntheticConfig(rounds=60),
        options=TraceOptions(buffer_bytes=4096, wrap=True),
    )
    # Confirm wrapping actually happened.
    dropped = sum(s.writer.records_dropped for s in run.facility.sessions)
    assert dropped > 0
    return tmp, run


class TestWrapMode:
    def test_strict_conversion_fails(self, wrapped_run):
        tmp, run = wrapped_run
        with pytest.raises(TraceError):
            convert_traces(run.raw_paths, tmp / "strict")

    def test_lenient_conversion_succeeds(self, wrapped_run):
        tmp, run = wrapped_run
        result = convert_traces(run.raw_paths, tmp / "lenient", strict=False)
        assert result.records_written > 0
        for path in result.interval_paths:
            reader = IntervalReader(path, PROFILE)
            records = list(reader.intervals())
            assert records
            ends = [r.end for r in records]
            assert ends == sorted(ends)

    def test_lenient_output_validates(self, wrapped_run):
        tmp, run = wrapped_run
        result = convert_traces(run.raw_paths, tmp / "lv", strict=False)
        for path in result.interval_paths:
            report = validate_interval_file(path, PROFILE)
            assert report.ok, report.summary()

    def test_lost_threads_synthesized(self, wrapped_run):
        tmp, run = wrapped_run
        result = convert_traces(run.raw_paths, tmp / "lt", strict=False)
        synthesized = 0
        for path in result.interval_paths:
            reader = IntervalReader(path, PROFILE)
            synthesized += sum(
                1 for e in reader.thread_table if e.name.startswith("<lost thread")
            )
        # With a 4 KiB buffer every node lost its THREAD_INFOs.
        assert synthesized > 0

    def test_lenient_equals_strict_on_clean_trace(self, tmp_path):
        """Lenient mode must not change anything on an intact trace."""
        run = run_pingpong(tmp_path / "raw")
        a = convert_traces(run.raw_paths, tmp_path / "a", strict=True)
        b = convert_traces(run.raw_paths, tmp_path / "b", strict=False)
        for pa, pb in zip(a.interval_paths, b.interval_paths):
            ra = list(IntervalReader(pa, PROFILE).intervals())
            rb = list(IntervalReader(pb, PROFILE).intervals())
            assert [(r.itype, r.start, r.duration) for r in ra] == [
                (r.itype, r.start, r.duration) for r in rb
            ]


class TestTaskAwareStats:
    @pytest.fixture(scope="class")
    def merged(self, tmp_path_factory):
        from repro.utils.merge import merge_interval_files

        tmp = tmp_path_factory.mktemp("task-stats")
        run = run_synthetic(tmp / "raw", SyntheticConfig(rounds=20))
        conv = convert_traces(run.raw_paths, tmp / "ivl")
        result = merge_interval_files(conv.interval_paths, tmp / "m.ute", PROFILE)
        return IntervalReader(tmp / "m.ute", PROFILE)

    def test_task_field_available(self, merged):
        from repro.utils.stats import generate_tables

        records = list(merged.intervals())
        program = (
            'table name=by_task condition=(task >= 0) '
            'x=("task", task) y=("seconds", dura, sum)'
        )
        (table,) = generate_tables(
            records, program, thread_table=merged.thread_table
        )
        assert set(k[0] for k in table.rows) == {0, 1, 2, 3}

    def test_comm_matrix_predefined(self, merged):
        from repro.utils.stats import predefined_tables

        records = [
            r for r in merged.intervals() if r.itype != IntervalType.CLOCKPAIR
        ]
        total = merged.totals()[2] / 1e9
        tables = predefined_tables(
            records, total_seconds=total, thread_table=merged.thread_table
        )
        matrix = next(t for t in tables if t.name == "comm_matrix")
        # Synthetic pairs ranks (0,1) and (2,3) in both directions.
        assert set(matrix.rows) == {(0, 1), (1, 0), (2, 3), (3, 2)}
        for (src, dst), (bytes_, msgs) in matrix.rows.items():
            assert bytes_ == msgs * 1024

    def test_without_thread_table_no_matrix(self, merged):
        from repro.utils.stats import predefined_tables

        records = [
            r for r in merged.intervals() if r.itype != IntervalType.CLOCKPAIR
        ]
        tables = predefined_tables(records, total_seconds=1.0)
        assert all(t.name != "comm_matrix" for t in tables)
