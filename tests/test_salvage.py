"""Salvage-mode readers against the golden corpus (core/salvage.py).

Strict mode must stay byte-for-byte what it always was: damaged artifacts
raise.  Salvage mode must read past the damage, recover every record the
corruption didn't touch, and account for what it gave up in the
:class:`SalvageReport` that ``stats()`` and the ``salvage`` attribute
expose.
"""

import pytest

from repro.core import IntervalReader, standard_profile
from repro.core.profilefmt import Profile
from repro.core.salvage import (
    MAX_REGIONS,
    SalvageReport,
    check_error_mode,
    salvage_stats,
)
from repro.errors import FormatError, ReproError
from repro.tracing.rawfile import RawTraceReader
from repro.utils.slog import SlogFile

PROFILE = standard_profile()


def _profile_for(corpus, name: str) -> Profile:
    ref = corpus.manifest[name].get("profile", "standard")
    if ref == "standard":
        return PROFILE
    return Profile.read(corpus.path(ref))


class TestErrorMode:
    def test_unknown_mode_rejected(self):
        with pytest.raises(FormatError, match="unknown errors mode"):
            check_error_mode("lenient")

    def test_known_modes(self):
        assert check_error_mode("salvage") is True
        assert check_error_mode("strict") is False

    def test_readers_reject_unknown_mode(self, corpus):
        with pytest.raises(FormatError, match="unknown errors mode"):
            IntervalReader(corpus.path("good.ute"), PROFILE, errors="lenient")
        with pytest.raises(FormatError, match="unknown errors mode"):
            RawTraceReader(corpus.path("good.raw"), errors="lenient")
        with pytest.raises(FormatError, match="unknown errors mode"):
            SlogFile(corpus.path("good.slog"), errors="lenient")


class TestSalvageReport:
    def test_clean_until_damage(self):
        report = SalvageReport()
        assert report.clean
        report.skip(10, 5, "corrupt record")
        assert not report.clean
        assert report.bytes_skipped == 5
        assert report.regions[0].offset == 10

    def test_zero_length_skip_ignored(self):
        report = SalvageReport()
        report.skip(10, 0, "nothing")
        assert report.clean and not report.regions

    def test_region_list_is_bounded(self):
        report = SalvageReport()
        for i in range(MAX_REGIONS + 7):
            report.skip(i * 10, 1, "corrupt record")
        assert len(report.regions) == MAX_REGIONS
        assert report.regions_truncated == 7
        assert report.bytes_skipped == MAX_REGIONS + 7  # counters keep growing

    def test_quarantine_counts_frame_and_bytes(self):
        report = SalvageReport()
        report.quarantine_frame(100, 512, "nothing decodable")
        assert report.frames_quarantined == 1
        assert report.bytes_skipped == 512

    def test_stats_shape_is_mode_independent(self):
        report = SalvageReport()
        report.skip(0, 3, "x")
        assert salvage_stats(None).keys() == salvage_stats(report).keys()
        assert salvage_stats(None) == {
            "bytes_skipped": 0, "records_dropped": 0, "frames_quarantined": 0,
        }

    def test_summary_mentions_the_loss(self):
        report = SalvageReport()
        assert "clean" in report.summary()
        report.records_dropped = 3
        report.skip(0, 7, "x")
        assert "3 records dropped" in report.summary()


class TestIntervalSalvage:
    def test_good_file_reads_clean(self, corpus):
        with IntervalReader(corpus.path("good.ute"), PROFILE, errors="salvage") as r:
            records = list(r.intervals())
            assert len(records) == corpus.manifest["good.ute"]["records"]
            assert r.salvage.clean
            stats = r.stats()
        assert stats["bytes_skipped"] == 0

    def test_strict_stats_have_the_same_keys(self, corpus):
        with IntervalReader(corpus.path("good.ute"), PROFILE) as strict:
            list(strict.intervals())
            strict_keys = set(strict.stats())
        with IntervalReader(corpus.path("good.ute"), PROFILE, errors="salvage") as s:
            list(s.intervals())
            assert set(s.stats()) == strict_keys

    @pytest.mark.parametrize(
        "name", ["trunc-tail.ute", "flip-dirlink.ute",
                 "cut-254.ute", "cut-255.ute", "cut-256.ute"],
    )
    def test_damaged_file_strict_vs_salvage(self, corpus, name):
        path = corpus.path(name)
        profile = _profile_for(corpus, name)
        # Strict: the damage is fatal.
        with pytest.raises(ReproError):
            with IntervalReader(path, profile) as reader:
                list(reader.intervals())
        # Salvage: reads through, accounts for the loss.
        with IntervalReader(path, profile, errors="salvage") as reader:
            records = list(reader.intervals())
            report = reader.salvage
        assert not report.clean
        assert records, f"{name}: salvage recovered nothing"

    def test_flipped_dirlink_recovers_every_record(self, corpus):
        """The back-link resync finds the genuine next directory, so a
        smashed forward pointer loses zero records."""
        good = corpus.path("good.ute")
        with IntervalReader(good, PROFILE) as reader:
            original = list(reader.intervals())
        with IntervalReader(
            corpus.path("flip-dirlink.ute"), PROFILE, errors="salvage"
        ) as reader:
            assert list(reader.intervals()) == original
            assert reader.salvage.bytes_skipped > 0  # the bad directory

    def test_salvaged_records_are_a_subset_of_the_original(self, corpus):
        with IntervalReader(corpus.path("good.ute"), PROFILE) as reader:
            original = set(map(repr, reader.intervals()))
        with IntervalReader(
            corpus.path("trunc-tail.ute"), PROFILE, errors="salvage"
        ) as reader:
            salvaged = [repr(r) for r in reader.intervals()]
        assert salvaged and all(r in original for r in salvaged)


class TestRawSalvage:
    def test_good_file_reads_clean(self, corpus):
        with RawTraceReader(corpus.path("good.raw"), errors="salvage") as reader:
            events = reader.events()
            assert len(events) == corpus.manifest["good.raw"]["records"]
            assert reader.salvage.clean

    @pytest.mark.parametrize("name", ["trunc.raw", "midflip.raw"])
    def test_damaged_file_strict_vs_salvage(self, corpus, name):
        path = corpus.path(name)
        with pytest.raises(ReproError):
            with RawTraceReader(path) as reader:
                reader.events()
        with RawTraceReader(path, errors="salvage") as reader:
            events = reader.events()
            report = reader.salvage
        assert not report.clean
        assert len(events) >= corpus.manifest["good.raw"]["records"] - 5
        assert "records_dropped" in reader.stats()


class TestSlogSalvage:
    def test_damaged_frame_strict_vs_salvage(self, corpus):
        path = corpus.path("flip-frame.slog")
        with SlogFile(path) as slog:
            with pytest.raises(ReproError):
                slog.records()
        with SlogFile(path, errors="salvage") as slog:
            records = slog.records()
            assert not slog.salvage.clean
            assert len(records) >= corpus.manifest["good.slog"]["records"] - 2

    def test_salvage_frame_probe_on_strict_reader(self, corpus):
        """``salvage_frame`` inspects one frame without switching the file
        to salvage mode or touching the shared cache — the serving daemon's
        per-frame degradation path."""
        damaged_index = corpus.manifest["flip-frame.slog"]["damaged_frame"]
        with SlogFile(corpus.path("flip-frame.slog")) as slog:
            bad = slog.frames[damaged_index]
            records, probe = slog.salvage_frame(bad)
            assert not probe.clean
            assert len(records) < bad.n_records
            # An undamaged sibling probes clean.
            sibling = slog.frames[0]
            records, probe = slog.salvage_frame(sibling)
            assert probe.clean
            assert len(records) == sibling.n_records
            # The file itself is still in strict mode.
            with pytest.raises(ReproError):
                slog.records()
