"""Tests for the clock-ratio estimators and timestamp adjustment."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocksync import (
    ClockAdjustment,
    ClockPair,
    PiecewiseAdjustment,
    adjustment_from_pairs,
    filter_outliers,
    last_slope_ratio,
    pairs_from_events,
    rms_anchored_ratio,
    rms_segment_ratio,
    segment_slopes,
)
from repro.cluster.clocks import ClockSpec, LocalClock
from repro.cluster.engine import NS_PER_SEC
from repro.errors import MergeError
from repro.tracing.events import dispatch_event, global_clock_event


def pairs_for_clock(spec: ClockSpec, *, n=10, period_s=1.0, jitter=()):
    """Sample a simulated clock the way the global-clock sampler does.

    ``jitter`` lists (index, delay_ns) local-read delays to inject.
    """
    clock = LocalClock(spec)
    delays = dict(jitter)
    out = []
    for i in range(n):
        g = int(i * period_s * NS_PER_SEC)
        l = clock.read(g) + delays.get(i, 0)
        out.append(ClockPair(global_ts=g, local_ts=l))
    return out


class TestEstimators:
    def test_perfect_clock_gives_ratio_one(self):
        pairs = pairs_for_clock(ClockSpec())
        assert rms_segment_ratio(pairs) == pytest.approx(1.0, abs=1e-9)

    def test_drifting_clock_recovered(self):
        # +40 ppm local drift -> global/local ratio 1/(1+40e-6).
        pairs = pairs_for_clock(ClockSpec(drift_ppm=40.0))
        expected = 1.0 / (1.0 + 40e-6)
        assert rms_segment_ratio(pairs) == pytest.approx(expected, rel=1e-9)
        assert last_slope_ratio(pairs) == pytest.approx(expected, rel=1e-9)
        assert rms_anchored_ratio(pairs) == pytest.approx(expected, rel=1e-9)

    def test_offset_does_not_affect_ratio(self):
        for offset in (0, 10**9, -(10**6)):
            pairs = pairs_for_clock(ClockSpec(offset_ns=offset, drift_ppm=-25.0))
            assert rms_segment_ratio(pairs) == pytest.approx(
                1.0 / (1.0 - 25e-6), rel=1e-9
            )

    def test_segment_rms_beats_anchored_rms_with_bad_first_point(self):
        """The paper's reason for rejecting the anchored variant: an error in
        the first pair contaminates every anchored slope but only one
        segment slope."""
        true_ratio = 1.0 / (1.0 + 30e-6)
        pairs = pairs_for_clock(
            ClockSpec(drift_ppm=30.0), n=20, jitter=[(0, 400_000)]
        )
        err_segment = abs(rms_segment_ratio(pairs) - true_ratio)
        err_anchored = abs(rms_anchored_ratio(pairs) - true_ratio)
        assert err_segment < err_anchored

    def test_two_pairs_minimum(self):
        with pytest.raises(MergeError):
            rms_segment_ratio([ClockPair(0, 0)])

    def test_non_monotonic_pairs_rejected(self):
        bad = [ClockPair(0, 0), ClockPair(10, 10), ClockPair(20, 5)]
        with pytest.raises(MergeError, match="not strictly increasing"):
            rms_segment_ratio(bad)

    def test_segment_slopes_values(self):
        pairs = [ClockPair(0, 0), ClockPair(100, 50), ClockPair(200, 150)]
        assert segment_slopes(pairs) == [2.0, 1.0]

    @given(drift=st.floats(min_value=-100, max_value=100))
    @settings(max_examples=50)
    def test_estimators_agree_for_constant_drift(self, drift):
        pairs = pairs_for_clock(ClockSpec(drift_ppm=drift), n=8)
        r1 = rms_segment_ratio(pairs)
        r2 = last_slope_ratio(pairs)
        assert r1 == pytest.approx(r2, rel=1e-9)


class TestOutlierFilter:
    def test_clean_sequence_untouched(self):
        pairs = pairs_for_clock(ClockSpec(drift_ppm=10.0))
        assert filter_outliers(pairs) == pairs

    def test_jittered_sample_removed(self):
        pairs = pairs_for_clock(
            ClockSpec(drift_ppm=10.0), n=12, jitter=[(5, 500_000)]
        )
        kept = filter_outliers(pairs)
        assert len(kept) == 11
        assert pairs[5] not in kept

    def test_filter_recovers_ratio(self):
        true_ratio = 1.0 / (1.0 + 10e-6)
        pairs = pairs_for_clock(
            ClockSpec(drift_ppm=10.0), n=12, jitter=[(4, 800_000), (9, 600_000)]
        )
        dirty = abs(rms_segment_ratio(pairs) - true_ratio)
        clean = abs(rms_segment_ratio(filter_outliers(pairs)) - true_ratio)
        assert clean < dirty
        assert clean < 1e-9

    def test_short_sequences_returned_as_is(self):
        pairs = [ClockPair(0, 0), ClockPair(10, 999)]
        assert filter_outliers(pairs) == pairs


class TestAdjustment:
    def test_linear_adjustment_maps_origin(self):
        adj = ClockAdjustment(origin_global=1000, origin_local=5000, ratio=2.0)
        assert adj.adjust(5000) == 1000
        assert adj.adjust(5010) == 1020
        assert adj.adjust_duration(7) == 14

    def test_roundtrip_recovers_true_time(self):
        """Adjusting local timestamps must recover global time to sub-ppm."""
        spec = ClockSpec(offset_ns=3_000_000, drift_ppm=-44.0)
        pairs = pairs_for_clock(spec, n=20)
        adj = adjustment_from_pairs(pairs)
        clock = LocalClock(spec)
        for t_s in (0.5, 3.25, 17.9):
            true_ns = int(t_s * NS_PER_SEC)
            recovered = adj.adjust(clock.read(true_ns))
            assert abs(recovered - true_ns) < 1000  # < 1 us over ~20 s

    def test_piecewise_handles_rate_change(self):
        """A clock whose rate changes mid-run is tracked much better by the
        piecewise adjuster than by any single global ratio."""
        # Build pairs by hand: rate 1+50ppm for 5 s, then 1-50ppm for 5 s.
        pairs = []
        local = 0.0
        for i in range(11):
            g = i * NS_PER_SEC
            pairs.append(ClockPair(g, int(local)))
            rate = 1 + 50e-6 if i < 5 else 1 - 50e-6
            local += rate * NS_PER_SEC
        piecewise = adjustment_from_pairs(pairs, mode="piecewise")
        single = adjustment_from_pairs(pairs, mode="rms_segment")
        # Probe inside the second regime.
        probe_global = int(7.5 * NS_PER_SEC)
        probe_local = pairs[7].local_ts + int(0.5 * NS_PER_SEC * (1 - 50e-6))
        err_piece = abs(piecewise.adjust(probe_local) - probe_global)
        err_single = abs(single.adjust(probe_local) - probe_global)
        assert err_piece < err_single
        assert err_piece < 10_000  # 10 us

    def test_piecewise_monotonic(self):
        pairs = pairs_for_clock(ClockSpec(drift_ppm=33.0), n=6)
        adj = PiecewiseAdjustment(pairs)
        samples = [adj.adjust(pairs[0].local_ts + k * 100_000_000) for k in range(60)]
        assert samples == sorted(samples)

    def test_unknown_mode_rejected(self):
        pairs = pairs_for_clock(ClockSpec())
        with pytest.raises(MergeError, match="unknown clock-sync mode"):
            adjustment_from_pairs(pairs, mode="banana")

    def test_duration_scaling(self):
        pairs = pairs_for_clock(ClockSpec(drift_ppm=100.0))
        adj = adjustment_from_pairs(pairs)
        # Local durations shrink slightly when mapped to global time.
        assert adj.adjust_duration(10_000_000) < 10_000_000


def test_pairs_from_events_extracts_only_clock_records():
    events = [
        dispatch_event(100, 1, 0),
        global_clock_event(local_ts=105, global_ts=100),
        dispatch_event(200, 1, 0),
        global_clock_event(local_ts=1105, global_ts=1100),
    ]
    pairs = pairs_from_events(events)
    assert pairs == [ClockPair(100, 105), ClockPair(1100, 1105)]


class TestAdjustDurationAtLocalTs:
    """Regression: ``PiecewiseAdjustment.adjust_duration`` silently applied
    segment 0's slope to every duration.  The position argument is now
    required (keyword-only), and the slope must follow the clock's rate at
    the record's own timestamp, not the run's start."""

    def rate_change_pairs(self):
        # Clock runs at 2x global rate for the first 3 segments, then 0.5x:
        # local ticks 0, 2000, 4000, 6000, 6500, 7000 against a uniform
        # 1000-tick global grid.
        locals_ = [0, 2000, 4000, 6000, 6500, 7000]
        return [
            ClockPair(global_ts=i * 1000, local_ts=l)
            for i, l in enumerate(locals_)
        ]

    def test_position_is_required(self):
        adj = PiecewiseAdjustment(self.rate_change_pairs())
        with pytest.raises(TypeError):
            adj.adjust_duration(1000)  # pre-fix: returned segment 0's answer

    def test_position_is_keyword_only(self):
        adj = PiecewiseAdjustment(self.rate_change_pairs())
        with pytest.raises(TypeError):
            adj.adjust_duration(1000, 6200)

    def test_mid_run_rate_change_uses_local_slope(self):
        adj = PiecewiseAdjustment(self.rate_change_pairs())
        # Before the rate change: 2000 local ticks per 1000 global.
        assert adj.adjust_duration(1000, at_local_ts=500) == 500
        # After it: 500 local ticks per 1000 global.
        assert adj.adjust_duration(1000, at_local_ts=6200) == 2000
        # Segment-0 slope applied everywhere was the bug.
        assert adj.adjust_duration(1000, at_local_ts=6200) != adj.adjust_duration(
            1000, at_local_ts=500
        )

    def test_global_adjustment_accepts_position_uniformly(self):
        adj = ClockAdjustment(origin_global=0, origin_local=0, ratio=0.5)
        assert adj.adjust_duration(1000) == 500
        assert adj.adjust_duration(1000, at_local_ts=999_999) == 500
