"""Records over 255 bytes: the length-prefix escape, end to end.

A waitall completing many receives carries a long ``seqnos`` vector, pushing
the record body past 255 bytes — the case the paper's zero-byte length
escape exists for.  Exercise it through encode/decode, the file writer, the
simple API's record skipping, and a real traced run.
"""

import pytest

from repro.core import (
    IntervalFileWriter,
    IntervalReader,
    get_interval,
    read_header,
    standard_profile,
)
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.tracing.hooks import MPI_FN_IDS

PROFILE = standard_profile()
WAITALL = IntervalType.for_mpi_fn(MPI_FN_IDS["MPI_Waitall"])


def big_waitall(n_seqnos=40, start=0):
    return IntervalRecord(
        WAITALL, BeBits.COMPLETE, start, 100, 0, 0, 0,
        {"seqnos": list(range(1, n_seqnos + 1))},
    )


class TestLengthEscape:
    def test_record_exceeds_255_bytes(self):
        blob = big_waitall().encode(PROFILE, MASK_ALL_PER_NODE)
        assert len(blob) > 255
        assert blob[0] == 0  # escaped length prefix

    def test_roundtrip(self):
        rec = big_waitall()
        blob = rec.encode(PROFILE, MASK_ALL_PER_NODE)
        decoded, consumed = IntervalRecord.decode(blob, 0, PROFILE, MASK_ALL_PER_NODE)
        assert consumed == len(blob)
        assert decoded.extra["seqnos"] == list(range(1, 41))

    def test_file_roundtrip_mixed_sizes(self, tmp_path):
        table = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])
        path = tmp_path / "big.ute"
        records = []
        t = 0
        for i in range(30):
            if i % 3 == 0:
                records.append(big_waitall(n_seqnos=35 + i, start=t))
            else:
                records.append(
                    IntervalRecord(IntervalType.RUNNING, BeBits.COMPLETE, t, 100, 0, 0, 0)
                )
            t += 200
        with IntervalFileWriter(
            path, PROFILE, table, field_mask=MASK_ALL_PER_NODE, frame_bytes=512
        ) as writer:
            for rec in records:
                writer.write(rec)
        back = list(IntervalReader(path, PROFILE).intervals())
        assert len(back) == 30
        for orig, got in zip(records, back):
            assert got.extra.get("seqnos", []) == orig.extra.get("seqnos", [])

    def test_simple_api_skips_large_records(self, tmp_path):
        """get_interval must walk past >255-byte records via the escape."""
        table = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])
        path = tmp_path / "skip.ute"
        with IntervalFileWriter(
            path, PROFILE, table, field_mask=MASK_ALL_PER_NODE
        ) as writer:
            writer.write(big_waitall(start=0))
            writer.write(
                IntervalRecord(IntervalType.RUNNING, BeBits.COMPLETE, 200, 50, 0, 0, 0)
            )
        handle, _ = read_header(path)
        first = get_interval(handle)
        second = get_interval(handle)
        assert first is not None and len(first) > 255
        assert second is not None and len(second) < 255
        assert get_interval(handle) is None

    def test_end_to_end_many_request_waitall(self, tmp_path):
        """A traced run whose waitall completes 40 receives survives the
        whole pipeline, seqnos intact."""
        from repro.cluster import Cluster, ClusterSpec
        from repro.mpi import MpiRuntime
        from repro.tracing import TraceFacility
        from repro.utils.convert import convert_traces
        from repro.utils.merge import merge_interval_files
        from repro.viz.arrows import match_arrows

        cl = Cluster(ClusterSpec(n_nodes=2, cpus_per_node=2))
        fac = TraceFacility(cl, tmp_path / "raw")
        rt = MpiRuntime(cl, fac)
        n_msgs = 40

        def body(ctx):
            if ctx.rank == 0:
                for i in range(n_msgs):
                    yield from ctx.isend(1, 64, tag=i)
            else:
                reqs = []
                for i in range(n_msgs):
                    reqs.append((yield from ctx.irecv(0, tag=i)))
                yield from ctx.waitall(reqs)

        rt.launch(2, body, tasks_per_node=1)
        rt.run()
        paths = fac.close()
        conv = convert_traces(paths, tmp_path / "ivl")
        merged = merge_interval_files(
            conv.interval_paths, tmp_path / "m.ute", PROFILE
        )
        reader = IntervalReader(merged.merged_path, PROFILE)
        records = list(reader.intervals())
        waitalls = [r for r in records if r.itype == WAITALL and r.extra.get("seqnos")]
        assert waitalls
        assert sum(len(r.extra["seqnos"]) for r in waitalls if r.bebits in
                   (BeBits.COMPLETE, BeBits.END)) == n_msgs
        arrows = match_arrows(records)
        assert len(arrows) == n_msgs
