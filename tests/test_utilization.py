"""The sparse utilization hierarchy (``repro.query.utilization``).

Covers the grid helpers, builder exactness (busy time at the finest
level equals the summed record durations, every coarser level folds
exactly from the one below), order independence, the binary round-trip,
windowed queries, the sidecar integration, the serving endpoint, and the
``ute-query --utilization`` command.
"""

import contextlib
import io
import json
import random

import pytest

from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.query import build_index, index_path_for, open_trace, write_index
from repro.query.utilization import (
    UtilizationBuilder,
    UtilizationIndex,
    cpu_key,
    dominant_state,
    levels_for_span,
    shift_for_span,
    split_thread_key,
    thread_key,
)
from repro.utils.slog import SlogWriter

PROFILE = standard_profile()
MARKER = IntervalType.MARKER


def rec(start, dura, *, node=0, cpu=0, thread=0, itype=IntervalType.RUNNING,
        extra=None):
    return IntervalRecord(
        itype, BeBits.COMPLETE, start, dura, node, cpu, thread, extra or {}
    )


def build(records, **kwargs):
    builder = UtilizationBuilder(**kwargs)
    for r in records:
        builder.add(r)
    return builder.build()


def make_slog(path, records, *, threads=2, frame_bytes=512):
    t1 = max((r.end for r in records), default=1)
    writer = SlogWriter(
        path, PROFILE,
        ThreadTable(
            [ThreadEntry(t, 100 + t, 5000 + t, 0, t, 0, f"t{t}")
             for t in range(threads)]
        ),
        field_mask=MASK_ALL_MERGED, time_range=(0, max(t1, 1)),
        frame_bytes=frame_bytes, node_cpus={0: 2},
    )
    for r in sorted(records, key=lambda r: r.end):
        writer.write(r)
    return writer.close()


def sample_records(n=120, seed=3):
    rng = random.Random(seed)
    records, t = [], {}
    for i in range(n):
        thread = i % 3
        start = t.get(thread, rng.randrange(500)) + rng.randrange(50, 400)
        dura = rng.randrange(40, 900)
        t[thread] = start + dura
        itype = MARKER if i % 7 == 0 else IntervalType.RUNNING
        extra = {"markerId": 1} if itype == MARKER else {}
        records.append(
            rec(start, dura, cpu=thread % 2, thread=thread, itype=itype,
                extra=extra)
        )
    return records


class TestGridHelpers:
    def test_shift_for_span_fits_and_is_minimal(self):
        k = shift_for_span(1000, 90_000, 64)
        assert (90_000 >> k) - (1000 >> k) + 1 <= 64
        if k:
            assert (90_000 >> (k - 1)) - (1000 >> (k - 1)) + 1 > 64

    def test_shift_monotone_in_span(self):
        assert shift_for_span(0, 500_000, 64) >= shift_for_span(0, 50_000, 64)

    def test_levels_reach_a_single_bin(self):
        base = shift_for_span(300, 70_000, 32)
        n = levels_for_span(300, 70_000, base)
        top = base + n - 1
        assert (70_000 >> top) == (300 >> top)

    def test_lane_keys_round_trip(self):
        assert split_thread_key(thread_key(7, 42)) == (7, 42)
        assert split_thread_key(cpu_key(3, 1)) == (3, 1)

    def test_dominant_state_breaks_ties_low(self):
        assert dominant_state({5: 10, 2: 10, 9: 3}) == 2


class TestBuilderExactness:
    def test_finest_level_busy_equals_summed_durations(self):
        records = sample_records()
        built = build(records)
        util = built.utilization
        for r in records:
            assert r.duration > 0
        want = {}
        for r in records:
            key = thread_key(r.node, r.thread)
            want[key] = want.get(key, 0) + r.duration
        for key, levels in util.thread.items():
            got = sum(
                sum(states.values()) for _, states in levels[0].values()
            )
            assert got == want[key]

    def test_counts_attribute_each_record_once(self):
        records = sample_records()
        util = build(records).utilization
        total = sum(
            count for levels in util.thread.values()
            for count, _ in levels[0].values()
        )
        assert total == len(records)

    def test_every_level_folds_exactly_from_the_one_below(self):
        util = build(sample_records()).utilization
        for levels in list(util.thread.values()) + list(util.cpu.values()):
            for li in range(1, util.n_levels):
                folded = {}
                for idx, (count, states) in levels[li - 1].items():
                    prior = folded.setdefault(idx >> 1, [0, {}])
                    prior[0] += count
                    for s, busy in states.items():
                        prior[1][s] = prior[1].get(s, 0) + busy
                assert levels[li] == {
                    idx: (c, st) for idx, (c, st) in folded.items()
                }

    def test_zero_duration_and_clockpairs_skip_busy_lanes(self):
        records = [
            rec(100, 500),
            rec(700, 0),
            rec(800, 300, itype=IntervalType.CLOCKPAIR),
        ]
        built = build(records)
        util = built.utilization
        busy = sum(
            sum(states.values()) for levels in util.thread.values()
            for _, states in levels[0].values()
        )
        assert busy == 500
        # ...but the coarse grid counts every record by its start bin.
        assert sum(c for c, _ in built.bins) == 3
        assert sum(d for _, d in built.bins) == 800

    def test_order_independence(self):
        records = sample_records()
        shuffled = records[::-1]
        a, b = build(records), build(shuffled)
        assert a.utilization.encode() == b.utilization.encode()
        assert a.bins == b.bins


class TestEncoding:
    def test_round_trip_is_identity(self):
        util = build(sample_records()).utilization
        data = util.encode()
        decoded, pos = UtilizationIndex.decode(data, 0)
        assert pos == len(data)
        assert decoded.encode() == data

    def test_absent_section_decodes_to_none(self):
        decoded, pos = UtilizationIndex.decode(
            UtilizationIndex.encode_absent(), 0
        )
        assert decoded is None
        assert pos == len(UtilizationIndex.encode_absent())


class TestQuery:
    def test_cells_cover_busy_and_respect_max_bins(self):
        util = build(sample_records()).utilization
        shift, lanes = util.query("thread", util.t_min, util.t_max, 64)
        assert (util.t_max >> shift) - (util.t_min >> shift) + 1 <= 64
        for cells in lanes.values():
            for bin_t0, bin_t1, count, busy, states in cells:
                assert bin_t1 - bin_t0 == 1 << shift
                assert busy == sum(states.values())
                assert count >= 0 and busy > 0

    def test_narrow_window_uses_a_finer_level(self):
        util = build(sample_records()).utilization
        whole, _ = util.query("thread", util.t_min, util.t_max, 16)
        mid = (util.t_min + util.t_max) // 2
        narrow, _ = util.query("thread", mid, mid + 100, 16)
        assert narrow <= whole

    def test_window_is_clamped_to_the_indexed_span(self):
        util = build(sample_records()).utilization
        shift, lanes = util.query(
            "thread", util.t_min - 10**9, util.t_max + 10**9, 128
        )
        for cells in lanes.values():
            assert cells[0][0] >= (util.t_min >> shift) << shift

    def test_unknown_lane_kind_raises(self):
        from repro.errors import FormatError

        util = build(sample_records()).utilization
        with pytest.raises(FormatError):
            util.query("socket", 0, 1, 16)


class TestSidecarIntegration:
    def test_built_index_persists_the_hierarchy(self, tmp_path):
        path = make_slog(tmp_path / "run.slog", sample_records(), threads=3)
        with open_trace(path, PROFILE) as handle:
            index = build_index(handle)
        write_index(index, index_path_for(path))
        from repro.query.indexfile import load_index

        loaded = load_index(index_path_for(path))
        assert loaded.utilization is not None
        assert loaded.utilization.encode() == index.utilization.encode()

    def test_busy_excludes_pseudo_pieces(self, tmp_path):
        # A record spanning a frame boundary is split into pieces plus
        # zero-duration continuation markers; busy time must match the
        # original durations exactly, not double-count the stubs.
        records = [rec(i * 100, 95, thread=i % 2) for i in range(80)]
        path = make_slog(tmp_path / "run.slog", records, frame_bytes=256)
        with open_trace(path, PROFILE) as handle:
            index = build_index(handle)
        util = index.utilization
        busy = sum(
            sum(states.values()) for levels in util.thread.values()
            for _, states in levels[0].values()
        )
        assert busy == sum(r.duration for r in records)


class TestServeEndpoint:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        from repro.serve import ServeClient, ServerConfig, ServerThread

        path = make_slog(
            tmp_path_factory.mktemp("util-serve") / "run.slog",
            sample_records(), threads=3,
        )
        with open_trace(path, PROFILE) as handle:
            write_index(build_index(handle), index_path_for(path))
        with ServerThread(path, ServerConfig(port=0)) as srv:
            yield ServeClient(srv.base_url)

    def test_payload_shape(self, served):
        resp = served.utilization({"lane": "thread"})
        assert resp.status == 200
        payload = json.loads(resp.body)
        assert payload["kind"] == "thread"
        assert payload["levels"] >= 1
        assert payload["lanes"]
        for lane in payload["lanes"]:
            assert "thread" in lane
            for cell in lane["cells"]:
                assert cell["end"] > cell["start"]
                assert 0.0 <= cell["busy_frac"] <= 1.0
                assert cell["dominant"] in (
                    int(k) for k in payload["state_names"]
                ) or str(cell["dominant"]) in payload["state_names"]

    def test_no_trace_io(self, served):
        resp = served.utilization({"lane": "cpu", "bins": "32"})
        assert resp.status == 200
        assert resp.headers.get("x-ute-bytes-read") == "0"
        payload = json.loads(resp.body)
        assert all("cpu" in lane for lane in payload["lanes"])

    def test_bad_lane_is_a_client_error(self, served):
        resp = served.utilization({"lane": "socket"})
        assert resp.status == 400


class TestCli:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = make_slog(
            tmp_path_factory.mktemp("util-cli") / "run.slog",
            sample_records(), threads=3,
        )
        with open_trace(path, PROFILE) as handle:
            write_index(build_index(handle), index_path_for(path))
        return path

    def run(self, argv):
        from repro import cli

        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = cli.main_query(argv)
        return rc, buf.getvalue()

    def test_tsv_output(self, trace):
        rc, out = self.run([str(trace), "--utilization"])
        assert rc == 0
        header, *rows = out.strip().splitlines()
        assert header.split("\t")[:2] == ["node", "thread"]
        assert rows

    def test_json_output_matches_lane(self, trace):
        rc, out = self.run(
            [str(trace), "--utilization", "--lane", "cpu", "--format", "json"]
        )
        assert rc == 0
        payload = json.loads(out)
        assert payload["kind"] == "cpu"
        assert all("cpu" in lane for lane in payload["lanes"])

    def test_without_sidecar_builds_in_memory(self, tmp_path):
        path = make_slog(tmp_path / "fresh.slog", sample_records())
        rc, out = self.run([str(path), "--utilization"])
        assert rc == 0
        assert out.strip().splitlines()[1:]
