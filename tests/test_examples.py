"""Every example script runs end to end (the quickstart contract)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, tmp_path, capsys) -> str:
    argv = sys.argv
    sys.argv = [str(EXAMPLES / name), str(tmp_path / "out")]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


def test_quickstart(tmp_path, capsys):
    out = run_example("quickstart.py", tmp_path, capsys)
    assert "message arrows matched" in out
    assert "Thread-activity view" in out
    assert (tmp_path / "out" / "run.slog").exists()
    assert (tmp_path / "out" / "preview.svg").exists()


def test_sppm_analysis(tmp_path, capsys):
    out = run_example("sppm_analysis.py", tmp_path, capsys)
    assert "Figure 9 observations" in out
    assert "threads that migrated across CPUs" in out
    assert (tmp_path / "out" / "figure8_thread_activity.svg").exists()
    assert (tmp_path / "out" / "figure9_processor_activity.svg").exists()


def test_flash_preview(tmp_path, capsys):
    out = run_example("flash_preview.py", tmp_path, capsys)
    assert "interesting time ranges" in out
    assert "frame display" in out
    assert (tmp_path / "out" / "figure6_statistics.svg").exists()
    assert (tmp_path / "out" / "figure7_preview.svg").exists()


def test_clock_drift_study(tmp_path, capsys):
    out = run_example("clock_drift_study.py", tmp_path, capsys)
    assert "Estimator comparison" in out
    assert "rms_segment (paper)" in out
    assert (tmp_path / "out" / "figure1_clock_drift.svg").exists()


def test_custom_statistics(tmp_path, capsys):
    out = run_example("custom_statistics.py", tmp_path, capsys)
    assert "the paper's own example program" in out
    assert "avg(duration)" in out
    assert (tmp_path / "out" / "mpi_time_by_task.tsv").exists()


def test_io_profiling(tmp_path, capsys):
    out = run_example("io_profiling.py", tmp_path, capsys)
    assert "disk:" in out
    assert "FileIO" in out
    assert "fault_counts" in out


def test_blocking_analysis(tmp_path, capsys):
    out = run_example("blocking_analysis.py", tmp_path, capsys)
    assert "call profile" in out
    assert "CPU utilization" in out
    assert "causality violations: 0" in out
