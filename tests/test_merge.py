"""Tests for the merge utility: alignment, drift adjustment, ordering,
thread-type selection, and pseudo-intervals."""

import pytest

from repro.core import IntervalFileWriter, IntervalReader, standard_profile
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.errors import MergeError
from repro.utils.merge import collect_clock_pairs, merge_interval_files

PROFILE = standard_profile()


def clock_pair(local, global_ts, node=0):
    return IntervalRecord(
        IntervalType.CLOCKPAIR, BeBits.COMPLETE, local, 0, node, 0, 0,
        {"globalTs": global_ts},
    )


def running(start, dura, node=0, thread=0, bebits=BeBits.COMPLETE, cpu=0):
    return IntervalRecord(IntervalType.RUNNING, bebits, start, dura, node, cpu, thread)


def write_node_file(path, records, node=0, threads=None, markers=None, node_cpus=None):
    table = ThreadTable(
        threads
        or [ThreadEntry(node, 100 + node, 5000 + node, node, 0, 0, f"rank-{node}")]
    )
    records = sorted(records, key=lambda r: r.end)
    with IntervalFileWriter(
        path, PROFILE, table, field_mask=MASK_ALL_PER_NODE,
        markers=markers or {}, node_cpus=node_cpus or {node: 2},
        frame_bytes=512, frames_per_dir=2,
    ) as writer:
        for rec in records:
            writer.write(rec)
    return path


class TestAlignment:
    def test_offset_clocks_aligned_by_first_pair(self, tmp_path):
        """Node 1's local clock starts 1 ms ahead; after the merge both
        nodes' simultaneous records land at the same global time."""
        a = write_node_file(
            tmp_path / "a.ute",
            [clock_pair(0, 0), running(1000, 500), clock_pair(10_000_000, 10_000_000)],
            node=0,
        )
        b = write_node_file(
            tmp_path / "b.ute",
            [
                clock_pair(1_000_000, 0, node=1),
                running(1_001_000, 500, node=1),
                clock_pair(11_000_000, 10_000_000, node=1),
            ],
            node=1,
        )
        result = merge_interval_files([a, b], tmp_path / "m.ute", PROFILE)
        merged = list(IntervalReader(tmp_path / "m.ute", PROFILE).intervals())
        starts = {r.node: r.start for r in merged}
        assert starts[0] == starts[1] == 1000

    def test_drift_adjusted_via_ratio(self, tmp_path):
        """A +100 ppm local clock's timestamps shrink by the ratio."""
        rate = 1 + 100e-6
        pairs = [clock_pair(int(i * 1e9 * rate), int(i * 1e9)) for i in range(5)]
        rec = running(int(2e9 * rate), int(1e9 * rate))
        path = write_node_file(tmp_path / "a.ute", pairs + [rec])
        result = merge_interval_files([path], tmp_path / "m.ute", PROFILE)
        (merged,) = list(IntervalReader(tmp_path / "m.ute", PROFILE).intervals())
        assert merged.start == pytest.approx(2e9, abs=2)
        assert merged.duration == pytest.approx(1e9, abs=2)
        assert result.adjustments[0].ratio == pytest.approx(1 / rate, rel=1e-9)

    def test_local_start_preserved_in_merged_file(self, tmp_path):
        pairs = [clock_pair(1_000_000, 0), clock_pair(2_000_000, 1_000_000)]
        rec = running(1_500_000, 1000)
        path = write_node_file(tmp_path / "a.ute", pairs + [rec])
        merge_interval_files([path], tmp_path / "m.ute", PROFILE)
        (merged,) = list(IntervalReader(tmp_path / "m.ute", PROFILE).intervals())
        assert merged.extra["localStart"] == 1_500_000
        assert merged.start == 500_000

    def test_no_clock_pairs_identity(self, tmp_path):
        path = write_node_file(tmp_path / "a.ute", [running(100, 50)])
        result = merge_interval_files([path], tmp_path / "m.ute", PROFILE)
        (merged,) = list(IntervalReader(tmp_path / "m.ute", PROFILE).intervals())
        assert (merged.start, merged.duration) == (100, 50)
        assert result.adjustments[0].ratio == 1.0


class TestMergeSemantics:
    def test_output_sorted_by_end_time(self, tmp_path):
        a = write_node_file(
            tmp_path / "a.ute", [running(i * 100, 60) for i in range(50)], node=0
        )
        b = write_node_file(
            tmp_path / "b.ute",
            [running(i * 100 + 37, 60, node=1) for i in range(50)],
            node=1,
        )
        merge_interval_files([a, b], tmp_path / "m.ute", PROFILE)
        merged = list(IntervalReader(tmp_path / "m.ute", PROFILE).intervals())
        assert len(merged) == 100
        ends = [r.end for r in merged]
        assert ends == sorted(ends)

    def test_clock_pairs_removed_from_output(self, tmp_path):
        path = write_node_file(
            tmp_path / "a.ute", [clock_pair(0, 0), running(10, 5), clock_pair(100, 100)]
        )
        merge_interval_files([path], tmp_path / "m.ute", PROFILE)
        merged = list(IntervalReader(tmp_path / "m.ute", PROFILE).intervals())
        assert all(r.itype != IntervalType.CLOCKPAIR for r in merged)

    def test_thread_tables_unioned(self, tmp_path):
        a = write_node_file(tmp_path / "a.ute", [running(0, 10)], node=0)
        b = write_node_file(tmp_path / "b.ute", [running(0, 10, node=1)], node=1)
        merge_interval_files([a, b], tmp_path / "m.ute", PROFILE)
        reader = IntervalReader(tmp_path / "m.ute", PROFILE)
        assert len(reader.thread_table) == 2
        assert reader.node_cpus == {0: 2, 1: 2}

    def test_conflicting_marker_tables_rejected(self, tmp_path):
        a = write_node_file(
            tmp_path / "a.ute", [running(0, 10)], node=0, markers={1: "alpha"}
        )
        b = write_node_file(
            tmp_path / "b.ute", [running(0, 10, node=1)], node=1, markers={1: "beta"}
        )
        with pytest.raises(MergeError, match="not converted together"):
            merge_interval_files([a, b], tmp_path / "m.ute", PROFILE)

    def test_empty_input_rejected(self, tmp_path):
        with pytest.raises(MergeError, match="nothing to merge"):
            merge_interval_files([], tmp_path / "m.ute", PROFILE)

    def test_thread_type_selection(self, tmp_path):
        """The thread table's categories allow merging only chosen threads."""
        threads = [
            ThreadEntry(0, 100, 5000, 0, 0, 0, "mpi-main"),     # MPI
            ThreadEntry(-1, 100, 5001, 0, 1, 1, "worker"),      # user
            ThreadEntry(-1, 1, 5002, 0, 2, 2, "kproc"),         # system
        ]
        records = [
            running(0, 10, thread=0),
            running(20, 10, thread=1),
            running(40, 10, thread=2),
        ]
        path = write_node_file(tmp_path / "a.ute", records, threads=threads)
        merge_interval_files(
            [path], tmp_path / "m.ute", PROFILE, thread_types={0, 1}
        )
        reader = IntervalReader(tmp_path / "m.ute", PROFILE)
        assert {e.logical_tid for e in reader.thread_table} == {0, 1}
        assert {r.thread for r in reader.intervals()} == {0, 1}


class TestPseudoIntervals:
    def test_open_states_repeated_at_frame_starts(self, tmp_path):
        """A long interrupted state spanning many frames is re-announced by
        zero-duration continuation records at each frame start."""
        marker_begin = IntervalRecord(
            IntervalType.MARKER, BeBits.BEGIN, 0, 10, 0, 0, 0, {"markerId": 1}
        )
        marker_end = IntervalRecord(
            IntervalType.MARKER, BeBits.END, 100_000, 10, 0, 0, 0, {"markerId": 1}
        )
        fillers = [running(i * 100, 60) for i in range(200)]
        path = write_node_file(
            tmp_path / "a.ute",
            [marker_begin, *fillers, marker_end],
            markers={1: "phase"},
        )
        result = merge_interval_files(
            [path], tmp_path / "m.ute", PROFILE, frame_bytes=1024
        )
        assert result.pseudo_records > 0
        reader = IntervalReader(tmp_path / "m.ute", PROFILE)
        frames = list(reader.frames())
        assert len(frames) > 2
        pseudo_seen = 0
        for frame in frames[1:]:
            records = reader.read_frame(frame)
            head = records[0]
            if (
                head.duration == 0
                and head.bebits is BeBits.CONTINUATION
                and head.itype == IntervalType.MARKER
            ):
                pseudo_seen += 1
        assert pseudo_seen == result.pseudo_records
        # Every frame between the begin and the end carries the lead-in.
        covered = [
            f for f in frames[1:]
            if f.start_time >= 10 and f.end_time <= 100_000
        ]
        assert pseudo_seen >= len(covered) - 1

    def test_closed_states_not_repeated(self, tmp_path):
        complete = IntervalRecord(
            IntervalType.MARKER, BeBits.COMPLETE, 0, 10, 0, 0, 0, {"markerId": 1}
        )
        fillers = [running(i * 100, 60) for i in range(200)]
        path = write_node_file(
            tmp_path / "a.ute", [complete, *fillers], markers={1: "done"}
        )
        result = merge_interval_files(
            [path], tmp_path / "m.ute", PROFILE, frame_bytes=1024
        )
        assert result.pseudo_records == 0


class TestCollectClockPairs:
    def test_extracts_pairs_in_order(self, tmp_path):
        path = write_node_file(
            tmp_path / "a.ute",
            [clock_pair(5, 0), running(10, 5), clock_pair(1_000_005, 1_000_000)],
        )
        pairs = collect_clock_pairs(IntervalReader(path, PROFILE))
        assert [(p.local_ts, p.global_ts) for p in pairs] == [
            (5, 0), (1_000_005, 1_000_000),
        ]
