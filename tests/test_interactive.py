"""Tests for the interactive HTML timeline viewer."""

import json
import re
import shutil
import subprocess

import pytest

from repro.core import standard_profile
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.viz.arrows import MessageArrow
from repro.viz.interactive import render_interactive_html, view_payload
from repro.viz.views import thread_activity_view

PROFILE = standard_profile()
SEND = IntervalType.for_mpi_fn(0)


def sample_view():
    table = ThreadTable(
        [
            ThreadEntry(0, 1, 1, 0, 0, 0, "rank-0"),
            ThreadEntry(1, 2, 2, 1, 0, 0, "rank-1"),
        ]
    )
    records = [
        IntervalRecord(IntervalType.RUNNING, BeBits.COMPLETE, 0, 100, 0, 0, 0),
        IntervalRecord(
            SEND, BeBits.COMPLETE, 100, 50, 0, 0, 0,
            {"msgSizeSent": 64, "seqno": 1},
        ),
        IntervalRecord(
            IntervalType.for_mpi_fn(1), BeBits.COMPLETE, 120, 80, 1, 0, 0,
            {"msgSizeRecv": 64, "seqno": 1},
        ),
    ]
    arrows = [MessageArrow(1, (0, 0), (1, 0), 100, 200, 64)]
    return thread_activity_view(records, table, PROFILE.record_name, arrows=arrows)


class TestPayload:
    def test_structure(self):
        payload = view_payload(sample_view())
        assert payload["t0"] == 0 and payload["t1"] == 200
        assert len(payload["rows"]) == 2
        assert len(payload["arrows"]) == 1
        names = {s["name"] for s in payload["states"]}
        assert {"Running", "MPI_Send", "MPI_Recv"} <= names
        assert all(s["color"].startswith("#") for s in payload["states"])

    def test_bars_reference_valid_states(self):
        payload = view_payload(sample_view())
        n_states = len(payload["states"])
        for row in payload["rows"]:
            for bar in row["bars"]:
                assert 0 <= bar["k"] < n_states
                assert bar["e"] >= bar["s"]

    def test_arrow_rows_are_indices(self):
        payload = view_payload(sample_view())
        (arrow,) = payload["arrows"]
        assert arrow["sr"] == 0 and arrow["dr"] == 1
        assert arrow["rt"] == 200

    def test_json_serializable(self):
        json.dumps(view_payload(sample_view()))


class TestPage:
    def test_file_is_self_contained(self, tmp_path):
        path = render_interactive_html(sample_view(), tmp_path / "v.html")
        html = path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "const DATA =" in html
        assert "http://" not in html and "https://" not in html  # no external assets
        assert "addEventListener" in html

    def test_title_escaped(self, tmp_path):
        path = render_interactive_html(
            sample_view(), tmp_path / "t.html", title="<b>run & co</b>"
        )
        head = path.read_text().split("</head>")[0]
        assert "<b>" not in head.split("<title>")[1]

    def test_embedded_data_parses(self, tmp_path):
        path = render_interactive_html(sample_view(), tmp_path / "d.html")
        m = re.search(r"const DATA = (\{.*?\});\n", path.read_text(), re.S)
        data = json.loads(m.group(1))
        assert data["rows"]

    @pytest.mark.skipif(shutil.which("node") is None, reason="node unavailable")
    def test_javascript_executes(self, tmp_path):
        """Run the page's script under node with a DOM shim: no JS errors,
        and the zoom/pan/hover handlers are registered and fire."""
        path = render_interactive_html(sample_view(), tmp_path / "js.html")
        harness = tmp_path / "harness.js"
        harness.write_text(
            """
const fs = require("fs");
const html = fs.readFileSync(process.argv[2], "utf8");
const script = html.split("<script>")[1].split("</script>")[0];
function ctxStub() {
  return new Proxy({}, { get: (t, p) =>
    p === "measureText" ? () => ({width: 10}) : (() => {}),
    set: () => true });
}
const handlers = [];
function canvasStub() {
  return { width: 1000, height: 300, style: {},
    parentElement: { clientWidth: 1000 },
    getContext: () => ctxStub(),
    addEventListener: (ev, fn) => handlers.push([ev, fn]) };
}
const els = { main: canvasStub(), preview: canvasStub(),
  tip: { style: {} }, legend: { appendChild: () => {}, children: [] } };
global.document = { getElementById: id => els[id],
  createElement: () => ({ style: {}, set innerHTML(v) {} }) };
global.window = { addEventListener: () => {} };
global.devicePixelRatio = 1;
eval(script);
for (const [ev, fn] of handlers) {
  if (ev === "wheel") fn({ preventDefault(){}, offsetX: 500, deltaY: -1 });
  if (ev === "mousemove") fn({ offsetX: 500, offsetY: 40, clientX: 0, clientY: 0 });
  if (ev === "dblclick") fn({});
  if (ev === "click") fn({ offsetX: 600 });
}
console.log("OK " + handlers.map(h => h[0]).sort().join(","));
"""
        )
        result = subprocess.run(
            ["node", str(harness), str(path)], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith("OK ")
        for handler in ("wheel", "mousedown", "mousemove", "dblclick", "click"):
            assert handler in result.stdout

    def test_cli_interactive(self, tmp_path, capsys):
        from repro import cli
        from repro.utils.convert import convert_traces
        from repro.utils.merge import merge_interval_files
        from repro.workloads import run_pingpong

        run = run_pingpong(tmp_path / "raw")
        conv = convert_traces(run.raw_paths, tmp_path / "ivl")
        merged = merge_interval_files(
            conv.interval_paths, tmp_path / "m.ute", PROFILE,
            slog_path=tmp_path / "r.slog",
        )
        out = tmp_path / "view.html"
        assert cli.main_view(
            [str(merged.slog_path), "--interactive", "-o", str(out)]
        ) == 0
        capsys.readouterr()
        assert out.exists()
        assert "const DATA =" in out.read_text()
