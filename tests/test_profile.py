"""Tests for the description profile file."""

import pytest

from repro.core.fields import ATTRS, DataType, FieldSpec, MASK_ALL_MERGED, MASK_ALL_PER_NODE, MASK_CORE
from repro.core.profilefmt import Profile, RecordSpec, standard_profile
from repro.core.records import IntervalType
from repro.errors import FormatError, ProfileMismatchError
from repro.tracing.hooks import MPI_FN_NAMES


def small_profile():
    fields = ["rectype", "start", "dura", "node", "cpu", "thread", "x"]
    specs = {
        0: RecordSpec(
            0,
            0,
            tuple(
                FieldSpec(i, dtype=DataType.UINT, elem_len=8 if i < 3 else 2)
                for i in range(6)
            ),
        )
    }
    return Profile(["Running"], fields, specs)


class TestRecordSpec:
    def test_roundtrip(self):
        spec = RecordSpec(
            5,
            2,
            (
                FieldSpec(0, dtype=DataType.UINT, elem_len=4),
                FieldSpec(1, dtype=DataType.INT, elem_len=8, attr=3),
            ),
        )
        decoded, consumed = RecordSpec.decode(spec.encode(), 0)
        assert decoded == spec
        assert consumed == len(spec.encode())

    def test_structure_matches_figure_3(self):
        """Figure 3: 4-byte type, 1-byte field count, 2-byte name index,
        1-byte reserved, then 4 bytes per field."""
        spec = RecordSpec(7, 1, (FieldSpec(0, dtype=DataType.UINT, elem_len=4),))
        blob = spec.encode()
        assert len(blob) == 4 + 1 + 2 + 1 + 4


class TestProfileFile:
    def test_write_read_roundtrip(self, tmp_path):
        prof = small_profile()
        path = prof.write(tmp_path / "p.ute")
        back = Profile.read(path)
        assert back.version_id == prof.version_id
        assert back.record_names == prof.record_names
        assert back.field_names == prof.field_names
        assert back.specs == prof.specs

    def test_version_id_stable_across_instances(self):
        assert small_profile().version_id == small_profile().version_id

    def test_version_id_changes_with_content(self):
        a = small_profile()
        fields = ["rectype", "start", "dura", "node", "cpu", "thread", "y"]
        b = Profile(["Running"], fields, a.specs)
        assert a.version_id != b.version_id

    def test_corrupted_file_rejected(self, tmp_path):
        prof = small_profile()
        path = prof.write(tmp_path / "p.ute")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(FormatError, match="checksum"):
            Profile.read(path)

    def test_not_a_profile_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"hello world, not a profile")
        with pytest.raises(FormatError, match="not a profile"):
            Profile.read(path)

    def test_check_version_mismatch(self):
        prof = small_profile()
        with pytest.raises(ProfileMismatchError):
            prof.check_version(prof.version_id + 1)

    def test_unknown_field_name_rejected(self):
        with pytest.raises(FormatError, match="unknown field"):
            small_profile().field_index("nonexistent")

    def test_unknown_record_type_rejected(self):
        with pytest.raises(FormatError, match="no record type"):
            small_profile().spec_for(42)


class TestStandardProfile:
    def test_has_running_marker_and_all_mpi_types(self):
        prof = standard_profile()
        assert prof.record_name(IntervalType.RUNNING) == "Running"
        assert prof.record_name(IntervalType.MARKER) == "Marker"
        for fn_id, fn_name in enumerate(MPI_FN_NAMES):
            assert prof.record_name(IntervalType.for_mpi_fn(fn_id)) == fn_name

    def test_common_fields_everywhere(self):
        prof = standard_profile()
        for itype in prof.record_types():
            names = [prof.field_name(fs) for fs in prof.spec_for(itype).fields]
            for common in ("rectype", "start", "dura", "node", "cpu", "thread"):
                assert common in names, (itype, names)

    def test_send_has_msgsizesent_recv_has_msgsizerecv(self):
        prof = standard_profile()
        send = IntervalType.for_mpi_fn(MPI_FN_NAMES.index("MPI_Send"))
        recv = IntervalType.for_mpi_fn(MPI_FN_NAMES.index("MPI_Recv"))
        send_names = {prof.field_name(fs) for fs in prof.spec_for(send).fields}
        recv_names = {prof.field_name(fs) for fs in prof.spec_for(recv).fields}
        assert "msgSizeSent" in send_names and "msgSizeSent" not in recv_names
        assert "msgSizeRecv" in recv_names and "msgSizeRecv" not in send_names

    def test_mask_controls_field_count(self):
        """The design's point: the same record type has a different number
        of fields in individual vs merged files."""
        prof = standard_profile()
        send = IntervalType.for_mpi_fn(0)
        per_node = prof.fields_for(send, MASK_ALL_PER_NODE)
        merged = prof.fields_for(send, MASK_ALL_MERGED)
        core_only = prof.fields_for(send, MASK_CORE)
        assert len(merged) == len(per_node) + 1  # + localStart
        assert len(core_only) < len(per_node)
        merged_names = {prof.field_name(fs) for fs in merged}
        assert "localStart" in merged_names

    def test_roundtrips_through_file(self, tmp_path):
        prof = standard_profile()
        path = prof.write(tmp_path / "std.ute")
        back = Profile.read(path)
        assert back.version_id == prof.version_id
        assert back.record_types() == prof.record_types()

    def test_marker_fields(self):
        prof = standard_profile()
        names = {prof.field_name(fs) for fs in prof.spec_for(IntervalType.MARKER).fields}
        assert {"markerId", "beginAddr", "endAddr"} <= names

    def test_stats_language_field_names_present(self):
        """The section 3.2 example uses start/node/cpu/dura — they must be
        real profile field names."""
        prof = standard_profile()
        for name in ("start", "node", "cpu", "dura"):
            assert prof.field_index(name) >= 0


def test_interval_type_helpers():
    assert IntervalType.for_mpi_fn(3) == 4
    assert IntervalType.is_mpi(4)
    assert not IntervalType.is_mpi(IntervalType.RUNNING)
    assert not IntervalType.is_mpi(IntervalType.MARKER)
    assert IntervalType.mpi_fn(4) == 3
    with pytest.raises(FormatError):
        IntervalType.mpi_fn(IntervalType.RUNNING)
