"""Streaming readers must be observationally identical to the legacy
whole-file in-memory path: same record sequences, same frame-directory
walks, same simple-API byte streams — only the memory profile differs."""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IntervalFileWriter, IntervalReader, standard_profile
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.reader import IntervalFileHandle, get_interval
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.utils.slog import SlogFile, SlogWriter

PROFILE = standard_profile()
STREAMING_MODES = ("mmap", "file")

_COUNTER = itertools.count()

record_strategy = st.lists(
    st.tuples(
        st.sampled_from([IntervalType.RUNNING, IntervalType.MARKER]),
        st.integers(min_value=0, max_value=10**6),  # start
        st.integers(min_value=0, max_value=10**4),  # duration
        st.integers(min_value=0, max_value=3),  # thread
    ),
    min_size=1,
    max_size=120,
)


def build_records(raw):
    records = [
        IntervalRecord(
            itype,
            BeBits.COMPLETE,
            start,
            dura,
            0,
            0,
            thread,
            {"markerId": 1} if itype == IntervalType.MARKER else {},
        )
        for itype, start, dura, thread in raw
    ]
    records.sort(key=lambda r: r.end)
    return records


def write_interval_file(tmp, records, frame_bytes=512, frames_per_dir=2):
    path = tmp / f"parity-{next(_COUNTER)}.ute"
    table = ThreadTable([ThreadEntry(0, 1, 1, 0, t, 0, f"t{t}") for t in range(4)])
    with IntervalFileWriter(
        path, PROFILE, table, field_mask=MASK_ALL_PER_NODE,
        markers={1: "phase"}, frame_bytes=frame_bytes, frames_per_dir=frames_per_dir,
    ) as writer:
        for record in records:
            writer.write(record)
    return path


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("parity")


@given(raw=record_strategy)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_streaming_reader_matches_memory_reader(workdir, raw):
    """Property (satellite): for any record set, every streaming backend
    yields the identical record sequence, directory walk, and totals as the
    in-memory path."""
    records = build_records(raw)
    path = write_interval_file(workdir, records)
    with IntervalReader(path, PROFILE, mode="memory") as baseline:
        want_records = list(baseline.intervals())
        want_dirs = [
            (d.offset, d.prev_offset, d.next_offset, tuple(d.frames))
            for d in baseline.directories()
        ]
        want_totals = baseline.totals()
    assert len(want_records) == len(records)
    for mode in STREAMING_MODES:
        with IntervalReader(path, PROFILE, mode=mode) as reader:
            assert list(reader.intervals()) == want_records
            assert [
                (d.offset, d.prev_offset, d.next_offset, tuple(d.frames))
                for d in reader.directories()
            ] == want_dirs
            assert reader.totals() == want_totals


@given(raw=record_strategy)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_simple_api_byte_stream_parity(workdir, raw):
    """The Figure-5 simple API returns the identical raw record bytes from
    every backend."""
    path = write_interval_file(workdir, build_records(raw))

    def raw_stream(mode):
        with IntervalReader(path, PROFILE, mode=mode) as reader:
            handle = IntervalFileHandle(reader, list(reader.frames()))
            out = []
            while (blob := get_interval(handle)) is not None:
                out.append(blob)
            return out

    want = raw_stream("memory")
    for mode in STREAMING_MODES:
        assert raw_stream(mode) == want


def test_slog_streaming_parity(workdir):
    records = build_records(
        [(IntervalType.RUNNING, i * 100, 50, i % 3) for i in range(200)]
    )
    path = workdir / "parity.slog"
    table = ThreadTable([ThreadEntry(0, 1, 1, 0, t, 0, f"t{t}") for t in range(4)])
    writer = SlogWriter(
        path, PROFILE, table, field_mask=MASK_ALL_PER_NODE,
        time_range=(0, records[-1].end), frame_bytes=512,
    )
    for record in records:
        writer.write(record)
    writer.close()
    with SlogFile(path, mode="memory") as baseline:
        want = baseline.records()
        want_frames = list(baseline.frames)
        _, want_matrix = baseline.preview_matrix()
    assert want == records
    for mode in STREAMING_MODES:
        with SlogFile(path, mode=mode) as slog:
            assert slog.frames == want_frames
            assert slog.records() == want
            _, matrix = slog.preview_matrix()
            assert (matrix == want_matrix).all()


def test_frame_cache_hits_skip_fetches(workdir):
    records = build_records(
        [(IntervalType.RUNNING, i * 100, 50, 0) for i in range(300)]
    )
    path = write_interval_file(workdir, records, frame_bytes=1024)
    with IntervalReader(path, PROFILE, mode="file") as reader:
        frames = list(reader.frames())
        assert len(frames) > 2
        first = reader.read_frame(frames[0])
        reader.source.reset_accounting()
        again = reader.read_frame(frames[0])
        assert again == first
        assert reader.source.fetch_count == 0  # served from cache
        assert reader.cache_hits == 1

        # Eviction: touch more frames than the cache holds, then re-read.
        small = IntervalReader(path, PROFILE, mode="file", cache_frames=2)
        for frame in frames:
            small.read_frame(frame)
        small.read_frame(frames[0])
        assert small.cache_misses == len(frames) + 1  # frames[0] was evicted
        small.close()

        # cache_frames=0 disables caching entirely.
        uncached = IntervalReader(path, PROFILE, mode="file", cache_frames=0)
        uncached.read_frame(frames[0])
        uncached.read_frame(frames[0])
        assert uncached.cache_hits == 0
        assert uncached.cache_misses == 2
        uncached.close()


def test_cached_frame_returns_fresh_list(workdir):
    records = build_records([(IntervalType.RUNNING, i, 1, 0) for i in range(10)])
    path = write_interval_file(workdir, records, frame_bytes=4096)
    with IntervalReader(path, PROFILE) as reader:
        frame = next(reader.frames())
        first = reader.read_frame(frame)
        first.clear()  # caller may mutate the *list* without harming the cache
        assert reader.read_frame(frame) == records
