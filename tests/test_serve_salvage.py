"""Per-frame degradation in ute-serve, and client retry-with-backoff.

A damaged frame must cost exactly itself: its endpoint answers a
structured 422 carrying the salvage probe, sibling frames keep answering
200, and ``/metrics`` counts the event.  The ``ServeClient`` retry knob
must stay off by default (load tests count raw 503s) and, when enabled,
re-attempt 503s and connection failures with backoff.
"""

import http.server
import shutil
import threading
import urllib.error
from pathlib import Path

import pytest

from repro.serve.app import ServerThread
from repro.serve.client import ServeClient
from repro.serve.session import FrameDecodeError, TraceSession


@pytest.fixture(scope="module")
def damaged_server(tmp_path_factory):
    slog = tmp_path_factory.mktemp("serve-salvage") / "flip-frame.slog"
    shutil.copyfile(Path(__file__).parent / "data" / "flip-frame.slog", slog)
    with ServerThread(slog) as server:
        yield server


@pytest.fixture()
def client(damaged_server):
    return ServeClient(damaged_server.base_url)


class TestPerFrameDegradation:
    def test_damaged_frame_answers_structured_422(self, corpus, client):
        bad = corpus.manifest["flip-frame.slog"]["damaged_frame"]
        response = client.request(f"/api/frame/{bad}")
        assert response.status == 422
        payload = response.json()
        assert payload["frame"] == bad
        assert payload["salvage"]["bytes_skipped"] > 0
        assert payload["salvage"]["regions"], "regions must name the damage"
        assert "error" in payload

    def test_sibling_frames_keep_serving(self, corpus, client):
        bad = corpus.manifest["flip-frame.slog"]["damaged_frame"]
        total = client.frames()["count"]
        assert total > 2
        for index in range(total):
            if index == bad:
                continue
            frame = client.frame(index)  # raises on non-2xx
            assert frame["records"]

    def test_arrows_of_damaged_frame_degrade_too(self, corpus, client):
        bad = corpus.manifest["flip-frame.slog"]["damaged_frame"]
        response = client.request(f"/api/arrows/{bad}")
        assert response.status == 422
        assert response.json()["frame"] == bad

    def test_metrics_count_the_salvage_events(self, corpus, client):
        bad = corpus.manifest["flip-frame.slog"]["damaged_frame"]
        before = client.metric_value("ute_serve_frame_salvage_total")
        assert client.request(f"/api/frame/{bad}").status == 422
        after = client.metric_value("ute_serve_frame_salvage_total")
        assert after == before + 1

    def test_session_raises_frame_decode_error(self, corpus, corpus_copy):
        session = TraceSession(corpus_copy("flip-frame.slog"))
        bad = corpus.manifest["flip-frame.slog"]["damaged_frame"]
        try:
            with pytest.raises(FrameDecodeError) as excinfo:
                session.frame_payload(bad)
            assert excinfo.value.index == bad
            assert excinfo.value.salvage["bytes_skipped"] > 0
            session.frame_payload(0)  # siblings unaffected
        finally:
            session.close()


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Answers 503 for the first ``fail_first`` requests, then 200."""

    fail_first = 2
    seen = 0

    def do_GET(self):  # noqa: N802 (stdlib naming)
        cls = type(self)
        cls.seen += 1
        if cls.seen <= cls.fail_first:
            self.send_response(503)
            self.send_header("Retry-After", "0.01")
            body = b"saturated\n"
        else:
            self.send_response(200)
            body = b'{"ok": true}'
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence stderr
        pass


@pytest.fixture()
def flaky_server():
    _FlakyHandler.seen = 0
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        thread.join(timeout=5)


class TestClientRetry:
    def test_no_retry_by_default(self, flaky_server):
        client = ServeClient(flaky_server)
        assert client.request("/x").status == 503
        assert _FlakyHandler.seen == 1

    def test_bounded_retry_turns_503_into_200(self, flaky_server):
        client = ServeClient(flaky_server, retries=3, backoff=0.01)
        response = client.request("/x")
        assert response.status == 200
        assert _FlakyHandler.seen == 3  # two 503s + the success

    def test_retries_exhausted_surface_the_last_503(self, flaky_server):
        _FlakyHandler.fail_first = 10
        try:
            client = ServeClient(flaky_server, retries=2, backoff=0.01)
            assert client.request("/x").status == 503
            assert _FlakyHandler.seen == 3  # initial try + 2 retries
        finally:
            _FlakyHandler.fail_first = 2

    def test_connection_failure_retried_then_raised(self):
        client = ServeClient("http://127.0.0.1:9", timeout=0.2,
                             retries=2, backoff=0.01)
        with pytest.raises(urllib.error.URLError):
            client.request("/x")
