"""Additional CLI coverage: custom stats programs, sync-mode selection,
synthetic knobs, and error paths."""

import pytest

from repro.core import IntervalReader, standard_profile

PROFILE = standard_profile()


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    from repro import cli

    tmp = tmp_path_factory.mktemp("cli-extra")
    import contextlib
    import io

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        cli.main_trace(["synthetic", "--rounds", "25", "-o", str(tmp / "raw")])
        raw = [l for l in buf.getvalue().splitlines() if l]
        buf.truncate(0)
        buf.seek(0)
        cli.main_convert([*raw, "-o", str(tmp / "ivl")])
        intervals = [l for l in buf.getvalue().splitlines() if l]
    return tmp, intervals


class TestStatsProgram:
    def test_custom_program_file(self, traced, tmp_path, capsys):
        from repro import cli

        _, intervals = traced
        program = tmp_path / "prog.stats"
        program.write_text(
            'table name=custom x=("node", node) y=("pieces", dura, count)\n'
        )
        out = tmp_path / "stats"
        assert cli.main_stats(
            [*intervals, "--program", str(program), "-o", str(out)]
        ) == 0
        captured = capsys.readouterr().out
        assert "custom.tsv" in captured
        tsv = (out / "custom.tsv").read_text()
        assert tsv.startswith("node\tpieces")

    def test_bad_program_raises_stats_error(self, traced, tmp_path):
        from repro import cli
        from repro.errors import StatsError

        _, intervals = traced
        program = tmp_path / "bad.stats"
        program.write_text("table x=(")
        with pytest.raises(StatsError):
            cli.main_stats([*intervals, "--program", str(program), "-o", str(tmp_path / "s")])


class TestMergeModes:
    @pytest.mark.parametrize("mode", ["rms_segment", "rms_anchored", "last_slope", "piecewise"])
    def test_sync_mode_selectable(self, traced, tmp_path, mode, capsys):
        from repro import cli

        _, intervals = traced
        out = tmp_path / f"{mode}.ute"
        assert cli.main_merge([*intervals, "-o", str(out), "--sync", mode]) == 0
        capsys.readouterr()
        reader = IntervalReader(out, PROFILE)
        ends = [r.end for r in reader.intervals()]
        assert ends == sorted(ends)

    def test_explicit_profile_roundtrip(self, traced, tmp_path, capsys):
        from repro import cli

        tmp, intervals = traced
        profile_path = tmp / "ivl" / "profile.ute"
        assert profile_path.exists()
        out = tmp_path / "prof.ute"
        assert cli.main_merge(
            [*intervals, "-o", str(out), "--profile", str(profile_path)]
        ) == 0
        capsys.readouterr()


class TestArgumentErrors:
    def test_unknown_workload_rejected(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main_trace(["frobnicate"])

    def test_unknown_view_kind_rejected(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main_view(["whatever.slog", "--kind", "pie"])

    def test_unknown_sync_rejected(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main_merge(["a.ute", "--sync", "vibes"])


class TestTraceKnobs:
    def test_synthetic_rounds_scale_events(self, tmp_path, capsys):
        from repro import cli
        from repro.tracing import RawTraceReader

        counts = {}
        for rounds in (10, 40):
            out = tmp_path / f"r{rounds}"
            cli.main_trace(["synthetic", "--rounds", str(rounds), "-o", str(out)])
            raw = [l for l in capsys.readouterr().out.splitlines() if l]
            counts[rounds] = sum(len(RawTraceReader(p)) for p in raw)
        assert counts[40] > 2.5 * counts[10]

    def test_ioheavy_workload_traces(self, tmp_path, capsys):
        from repro import cli

        assert cli.main_trace(["ioheavy", "-o", str(tmp_path / "io")]) == 0
        raw = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(raw) == 2  # 4 tasks / 2 per node
