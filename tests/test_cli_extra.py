"""Additional CLI coverage: custom stats programs, sync-mode selection,
synthetic knobs, and error paths."""

import pytest

from repro.core import IntervalReader, standard_profile

PROFILE = standard_profile()


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    from repro import cli

    tmp = tmp_path_factory.mktemp("cli-extra")
    import contextlib
    import io

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        cli.main_trace(["synthetic", "--rounds", "25", "-o", str(tmp / "raw")])
        raw = [l for l in buf.getvalue().splitlines() if l]
        buf.truncate(0)
        buf.seek(0)
        cli.main_convert([*raw, "-o", str(tmp / "ivl")])
        intervals = [l for l in buf.getvalue().splitlines() if l]
    return tmp, intervals


class TestStatsProgram:
    def test_custom_program_file(self, traced, tmp_path, capsys):
        from repro import cli

        _, intervals = traced
        program = tmp_path / "prog.stats"
        program.write_text(
            'table name=custom x=("node", node) y=("pieces", dura, count)\n'
        )
        out = tmp_path / "stats"
        assert cli.main_stats(
            [*intervals, "--program", str(program), "-o", str(out)]
        ) == 0
        captured = capsys.readouterr().out
        assert "custom.tsv" in captured
        tsv = (out / "custom.tsv").read_text()
        assert tsv.startswith("node\tpieces")

    def test_bad_program_raises_stats_error(self, traced, tmp_path):
        from repro import cli
        from repro.errors import StatsError

        _, intervals = traced
        program = tmp_path / "bad.stats"
        program.write_text("table x=(")
        with pytest.raises(StatsError):
            cli.main_stats([*intervals, "--program", str(program), "-o", str(tmp_path / "s")])


class TestMergeModes:
    @pytest.mark.parametrize("mode", ["rms_segment", "rms_anchored", "last_slope", "piecewise"])
    def test_sync_mode_selectable(self, traced, tmp_path, mode, capsys):
        from repro import cli

        _, intervals = traced
        out = tmp_path / f"{mode}.ute"
        assert cli.main_merge([*intervals, "-o", str(out), "--sync", mode]) == 0
        capsys.readouterr()
        reader = IntervalReader(out, PROFILE)
        ends = [r.end for r in reader.intervals()]
        assert ends == sorted(ends)

    def test_explicit_profile_roundtrip(self, traced, tmp_path, capsys):
        from repro import cli

        tmp, intervals = traced
        profile_path = tmp / "ivl" / "profile.ute"
        assert profile_path.exists()
        out = tmp_path / "prof.ute"
        assert cli.main_merge(
            [*intervals, "-o", str(out), "--profile", str(profile_path)]
        ) == 0
        capsys.readouterr()


class TestArgumentErrors:
    def test_unknown_workload_rejected(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main_trace(["frobnicate"])

    def test_unknown_view_kind_rejected(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main_view(["whatever.slog", "--kind", "pie"])

    def test_unknown_sync_rejected(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main_merge(["a.ute", "--sync", "vibes"])


class TestTraceKnobs:
    def test_synthetic_rounds_scale_events(self, tmp_path, capsys):
        from repro import cli
        from repro.tracing import RawTraceReader

        counts = {}
        for rounds in (10, 40):
            out = tmp_path / f"r{rounds}"
            cli.main_trace(["synthetic", "--rounds", str(rounds), "-o", str(out)])
            raw = [l for l in capsys.readouterr().out.splitlines() if l]
            counts[rounds] = sum(len(RawTraceReader(p)) for p in raw)
        assert counts[40] > 2.5 * counts[10]

    def test_ioheavy_workload_traces(self, tmp_path, capsys):
        from repro import cli

        assert cli.main_trace(["ioheavy", "-o", str(tmp_path / "io")]) == 0
        raw = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(raw) == 2  # 4 tasks / 2 per node



@pytest.fixture(scope="module")
def run_slog(traced, tmp_path_factory):
    """A SLOG file built from the shared traced run."""
    from repro import cli

    tmp, intervals = traced
    slog = tmp / "run.slog"
    if not slog.exists():
        import contextlib
        import io

        with contextlib.redirect_stdout(io.StringIO()):
            cli.main_slogmerge([*intervals, "-o", str(tmp / "m.ute"),
                                "--slog", str(slog)])
    return slog


class TestInputValidation:
    """Every entry point reports missing/unreadable inputs as one-line
    errors with exit code 2 instead of a traceback."""

    ENTRY_POINTS = [
        ("main_convert", ["missing.trc"]),
        ("main_merge", ["missing.ute"]),
        ("main_slogmerge", ["missing.ute"]),
        ("main_stats", ["missing.ute"]),
        ("main_validate", ["missing.ute"]),
        ("main_preview", ["missing.slog"]),
        ("main_profile", ["missing.ute"]),
        ("main_dump", ["missing.ute"]),
        ("main_report", ["missing.slog"]),
        ("main_view", ["missing.slog"]),
        ("main_serve", ["missing.slog"]),
    ]

    @pytest.mark.parametrize("entry,args", ENTRY_POINTS)
    def test_missing_input_is_one_line_error(self, entry, args, capsys):
        from repro import cli

        code = getattr(cli, entry)(args)
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error:" in err and "missing" in err
        assert "Traceback" not in err

    def test_directory_as_input_rejected(self, tmp_path, capsys):
        from repro import cli

        code = cli.main_dump([str(tmp_path)])
        assert code == 2
        assert "is a directory" in capsys.readouterr().err

    def test_unreadable_input_rejected(self, tmp_path, capsys):
        import os

        from repro import cli

        locked = tmp_path / "locked.ute"
        locked.write_bytes(b"")
        locked.chmod(0)
        if os.access(locked, os.R_OK):  # running as root: not enforceable
            pytest.skip("permissions are not enforced for this user")
        code = cli.main_dump([str(locked)])
        assert code == 2
        assert "not readable" in capsys.readouterr().err

    def test_profile_path_checked(self, traced, capsys):
        from repro import cli

        _, intervals = traced
        code = cli.main_validate([*intervals, "--profile", "missing-profile.ute"])
        assert code == 2
        assert "missing-profile.ute" in capsys.readouterr().err


class TestOutputValidation:
    """ute-view / ute-preview / ute-report validate --out up front."""

    def test_view_output_under_file_rejected(self, run_slog, tmp_path, capsys):
        from repro import cli

        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        code = cli.main_view([str(run_slog), "-o", str(blocker / "view.svg")])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_preview_output_under_file_rejected(self, run_slog, tmp_path, capsys):
        from repro import cli

        blocker = tmp_path / "blocker2"
        blocker.write_text("x")
        code = cli.main_preview([str(run_slog), "-o", str(blocker / "p.svg")])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_report_output_under_file_rejected(self, run_slog, tmp_path, capsys):
        from repro import cli

        blocker = tmp_path / "blocker3"
        blocker.write_text("x")
        code = cli.main_report([str(run_slog), "-o", str(blocker / "r.html")])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_nested_missing_dirs_still_allowed(self, run_slog, tmp_path, capsys):
        from repro import cli

        out = tmp_path / "deep" / "er" / "view.svg"
        code = cli.main_view([str(run_slog), "-o", str(out)])
        assert code == 0
        assert out.exists()

    def test_ansi_view_skips_output_check(self, run_slog, tmp_path, capsys):
        from repro import cli

        blocker = tmp_path / "blocker4"
        blocker.write_text("x")
        # --ansi prints to stdout; the unused -o must not be validated.
        code = cli.main_view([str(run_slog), "--ansi", "-o", str(blocker / "v.svg")])
        assert code == 0
        assert capsys.readouterr().out
