"""Foreign-format interop conformance: golden fixtures, exporter edge
cases, foreign/salvage imports, and the ``ute-convert`` adapter CLI.

The fixtures under ``tests/data/interop/`` are produced by the
deterministic ``generate_fixtures.py`` next to them; ``manifest.json``
pins the exact record/event counts.  Any drift between a fresh export
and the committed fixture bytes is a real behavior change.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main_convert
from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.reader import IntervalReader
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.core.writer import IntervalFileWriter
from repro.difftool import diff_traces, run_oracle
from repro.errors import FormatError
from repro.interop import (
    CHROME_ROUNDTRIP_CONFIG,
    OTF2_ROUNDTRIP_CONFIG,
    export_chrome_json,
    export_otf2_text,
    import_chrome_json,
    import_otf2_text,
)
from repro.interop.chrome import TICK_STRING_THRESHOLD

FIXTURES = Path(__file__).resolve().parent / "data" / "interop"
MANIFEST = json.loads((FIXTURES / "manifest.json").read_text())
PROFILE = standard_profile()

SEND = IntervalType.for_mpi_fn(0)


def read_records(path) -> list[IntervalRecord]:
    reader = IntervalReader(path, PROFILE)
    try:
        return list(reader.intervals())
    finally:
        reader.close()


def table():
    return ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "t0")])


def rec(itype=IntervalType.RUNNING, start=0, dura=100, **extra):
    return IntervalRecord(itype, BeBits.COMPLETE, start, dura, 0, 0, 0, extra)


def make_ivl(path, recs, threads=None):
    with IntervalFileWriter(
        path, PROFILE, threads or table(), field_mask=MASK_ALL_MERGED,
        frame_bytes=512, ticks_per_sec=1e9,
    ) as writer:
        for r in sorted(recs, key=lambda r: r.end):
            writer.write(r)
    return path


def x_events(doc) -> list[dict]:
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


# --------------------------------------------------------------- golden corpus


class TestGoldenFixtures:
    """The committed fixtures match the manifest and each other."""

    def test_manifest_matches_golden_ute(self):
        info = MANIFEST["golden.ute"]
        records = read_records(FIXTURES / "golden.ute")
        assert len(records) == info["records"]
        reader = IntervalReader(FIXTURES / "golden.ute", PROFILE)
        try:
            assert len(reader.thread_table) == info["threads"]
            assert len(reader.markers) == info["markers"]
        finally:
            reader.close()

    def test_chrome_export_is_byte_stable(self, tmp_path):
        result = export_chrome_json(FIXTURES / "golden.ute", tmp_path / "g.json")
        assert result.records == MANIFEST["golden.chrome.json"]["x_events"]
        assert result.events == MANIFEST["golden.chrome.json"]["events_total"]
        assert (tmp_path / "g.json").read_bytes() == (
            FIXTURES / "golden.chrome.json"
        ).read_bytes()

    def test_otf2_export_is_byte_stable(self, tmp_path):
        result = export_otf2_text(FIXTURES / "golden.ute", tmp_path / "g.txt")
        info = MANIFEST["golden.otf2.txt"]
        assert (result.records, result.events, result.lines) == (
            info["records"], info["events"], info["lines"],
        )
        assert (tmp_path / "g.txt").read_bytes() == (
            FIXTURES / "golden.otf2.txt"
        ).read_bytes()

    @pytest.mark.parametrize("name", ["golden.chrome.json", "foreign.chrome.json"])
    def test_chrome_payloads_are_valid_json(self, name):
        with open(FIXTURES / name) as handle:
            doc = json.load(handle)
        assert isinstance(doc["traceEvents"], list)
        assert len(x_events(doc)) == MANIFEST[name]["x_events"]
        assert len(doc["traceEvents"]) == MANIFEST[name]["events_total"]

    def test_chrome_roundtrip_divergence_free(self, tmp_path):
        back = tmp_path / "back.ute"
        import_chrome_json(FIXTURES / "golden.chrome.json", back, profile=PROFILE)
        report = diff_traces(
            FIXTURES / "golden.ute", back, CHROME_ROUNDTRIP_CONFIG, profile=PROFILE
        )
        assert report.identical, report.as_dict()

    def test_otf2_roundtrip_divergence_free(self, tmp_path):
        back = tmp_path / "back.ute"
        import_otf2_text(FIXTURES / "golden.otf2.txt", back, profile=PROFILE)
        report = diff_traces(
            FIXTURES / "golden.ute", back, OTF2_ROUNDTRIP_CONFIG, profile=PROFILE
        )
        assert report.identical, report.as_dict()

    def test_flow_events_pair_matched_send_recv(self):
        doc = json.loads((FIXTURES / "golden.chrome.json").read_text())
        flows = [e for e in doc["traceEvents"] if e.get("ph") in ("s", "f")]
        assert {e["ph"] for e in flows} == {"s", "f"}
        # The only seqno with both a send and a receive in the golden
        # records is 9; the Waitall's vector seqnos have no sender.
        assert {e["id"] for e in flows} == {9}
        assert all(e["bp"] == "e" for e in flows if e["ph"] == "f")

    def test_metadata_names_survive(self):
        doc = json.loads((FIXTURES / "golden.chrome.json").read_text())
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert {"rank0", "rank1", "worker"} <= thread_names
        assert any(e["name"] == "process_name" for e in meta)

    def test_micros_match_ticks(self):
        """ts/dur are derived views; exact time lives in the tick args."""
        doc = json.loads((FIXTURES / "golden.chrome.json").read_text())
        tps = doc["otherData"]["ticksPerSec"]
        for event in x_events(doc):
            start = int(event["args"]["startTicks"])
            dur = int(event["args"]["durTicks"])
            assert round(event["ts"] * tps / 1e6) == start
            assert round(event["dur"] * tps / 1e6) == dur

    def test_oracle_zero_findings_on_golden(self):
        report = run_oracle(FIXTURES / "golden.ute", PROFILE, serve=False)
        assert report.ok, report.summary()
        assert "export_import_roundtrip" in report.checks


# ------------------------------------------------------------ foreign imports


class TestForeignChromeImport:
    def test_counts_and_recovery(self, tmp_path):
        out = tmp_path / "foreign.ute"
        result = import_chrome_json(FIXTURES / "foreign.chrome.json", out)
        assert result.records_written == MANIFEST["foreign.chrome.json"]["x_events"]
        assert result.events_skipped == 0  # the C counter is ignored, not an error
        records = read_records(out)
        # Timestamps recover from float microseconds at the default 1 GHz.
        starts = sorted(r.start for r in records)
        assert starts == [1500, 2000, 12000]
        assert {r.duration for r in records} == {10000, 9500, 3250}

    def test_dense_thread_allocation_and_name_mapping(self, tmp_path):
        out = tmp_path / "foreign.ute"
        import_chrome_json(FIXTURES / "foreign.chrome.json", out)
        records = read_records(out)
        # pids stay as node ids; tids densify to per-node logical ids.
        assert {r.node for r in records} == {7, 8}
        assert {r.thread for r in records} == {0}
        # MPI_Send maps to its profile type; "compute" becomes a marker.
        assert any(r.itype == SEND for r in records)
        reader = IntervalReader(out, PROFILE)
        try:
            assert "compute" in reader.markers.values()
        finally:
            reader.close()


class TestForeignOtf2Import:
    def test_strict_import_counts(self, tmp_path):
        out = tmp_path / "foreign.ute"
        result = import_otf2_text(FIXTURES / "foreign.otf2.txt", out)
        info = MANIFEST["foreign.otf2.txt"]
        assert result.records_written == info["records"]
        assert result.salvage.as_dict() == info["salvage"]

    def test_nesting_splits_outer_region(self, tmp_path):
        out = tmp_path / "foreign.ute"
        import_otf2_text(FIXTURES / "foreign.otf2.txt", out)
        records = read_records(out)
        # "main" on location 0 is suspended while MPI_Send runs: it comes
        # back as a BEGIN piece (100..250) and an END piece (400..500).
        pieces = [
            (r.bebits, r.start, r.end)
            for r in records
            if r.node == 0 and r.itype != SEND
        ]
        assert (BeBits.BEGIN, 100, 250) in pieces
        assert (BeBits.END, 400, 500) in pieces

    def test_salvage_counters_pinned(self, tmp_path):
        out = tmp_path / "salvaged.ute"
        result = import_otf2_text(
            FIXTURES / "salvage.otf2.txt", out, errors="salvage"
        )
        info = MANIFEST["salvage.otf2.txt"]
        assert result.records_written == info["records"]
        assert result.salvage.as_dict() == info["salvage"]
        # The salvaged output is a well-formed interval file.
        assert len(read_records(out)) == info["records"]

    def test_strict_mode_raises_on_defects(self, tmp_path):
        with pytest.raises(FormatError):
            import_otf2_text(FIXTURES / "salvage.otf2.txt", tmp_path / "x.ute")


# --------------------------------------------------------- exporter edge cases


class TestExporterEdgeCases:
    def roundtrip_chrome(self, tmp_path, recs, threads=None):
        src = make_ivl(tmp_path / "src.ute", recs, threads)
        out = tmp_path / "out.json"
        export_chrome_json(src, out, profile=PROFILE)
        with open(out) as handle:
            doc = json.load(handle)
        back = tmp_path / "back.ute"
        import_chrome_json(out, back, profile=PROFILE)
        report = diff_traces(src, back, CHROME_ROUNDTRIP_CONFIG, profile=PROFILE)
        assert report.identical, report.as_dict()
        return doc

    def test_zero_duration_interval(self, tmp_path):
        doc = self.roundtrip_chrome(tmp_path, [rec(start=500, dura=0)])
        (event,) = x_events(doc)
        assert event["dur"] == 0.0
        assert event["args"]["durTicks"] == 0

    def test_overlapping_and_nested_on_one_thread(self, tmp_path):
        recs = [
            rec(start=0, dura=1000),            # outer
            rec(IntervalType.IO, start=100, dura=200, addr=1),   # nested
            rec(IntervalType.MARKER, start=900, dura=400, markerId=1),  # overlap
        ]
        doc = self.roundtrip_chrome(tmp_path, recs)
        assert len(x_events(doc)) == 3

    def test_huge_ticks_emitted_as_strings(self, tmp_path):
        assert TICK_STRING_THRESHOLD == 2 ** 53  # the pinned precision choice
        big = 2 ** 53 + 1  # not representable as a JSON double
        doc = self.roundtrip_chrome(tmp_path, [rec(start=big, dura=10)])
        (event,) = x_events(doc)
        assert event["args"]["startTicks"] == str(big)
        assert event["args"]["durTicks"] == 10  # below threshold stays int

    def test_empty_trace_exports_valid_json(self, tmp_path):
        doc = self.roundtrip_chrome(tmp_path, [])
        assert x_events(doc) == []
        assert isinstance(doc["traceEvents"], list)

    def test_empty_trace_exports_valid_otf2(self, tmp_path):
        src = make_ivl(tmp_path / "src.ute", [])
        out = tmp_path / "out.txt"
        result = export_otf2_text(src, out, profile=PROFILE)
        assert result.records == result.events == 0
        back = tmp_path / "back.ute"
        import_otf2_text(out, back, profile=PROFILE)
        assert read_records(back) == []


# ------------------------------------------------------------------ CLI paths


class TestConvertCli:
    def err_line(self, capsys) -> str:
        err = capsys.readouterr().err
        assert err.count("\n") == 1, err  # one line, no traceback
        assert err.startswith("ute-convert: error:")
        return err

    def test_empty_raw_input_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.raw"
        empty.touch()
        assert main_convert([str(empty), "-o", str(tmp_path / "out")]) == 2
        assert "empty" in self.err_line(capsys)

    def test_empty_foreign_input_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.touch()
        argv = [str(empty), "--from", "chrome-json", "-o", str(tmp_path / "o.ute")]
        assert main_convert(argv) == 2
        assert "empty" in self.err_line(capsys)

    def test_to_and_from_are_mutually_exclusive(self, tmp_path, capsys):
        argv = [
            str(FIXTURES / "golden.ute"), "--to", "chrome-json",
            "--from", "otf2-text", "-o", str(tmp_path / "x"),
        ]
        assert main_convert(argv) == 2
        assert "mutually exclusive" in self.err_line(capsys)

    def test_adapter_requires_output_file(self, capsys):
        assert main_convert([str(FIXTURES / "golden.ute"), "--to", "chrome-json"]) == 2
        assert "-o" in self.err_line(capsys)

    def test_adapter_requires_single_input(self, tmp_path, capsys):
        golden = str(FIXTURES / "golden.ute")
        argv = [golden, golden, "--to", "chrome-json", "-o", str(tmp_path / "x")]
        assert main_convert(argv) == 2
        assert "one input" in self.err_line(capsys)

    def test_garbage_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{this is not json")
        argv = [str(bad), "--from", "chrome-json", "-o", str(tmp_path / "o.ute")]
        assert main_convert(argv) == 2
        self.err_line(capsys)

    def test_export_import_happy_path(self, tmp_path, capsys):
        exported = tmp_path / "g.json"
        argv = [str(FIXTURES / "golden.ute"), "--to", "chrome-json", "-o", str(exported)]
        assert main_convert(argv) == 0
        out = capsys.readouterr()
        assert str(exported) in out.out
        assert "trace events" in out.err
        back = tmp_path / "back.ute"
        assert main_convert(
            [str(exported), "--from", "chrome-json", "-o", str(back)]
        ) == 0
        report = diff_traces(
            FIXTURES / "golden.ute", back, CHROME_ROUNDTRIP_CONFIG, profile=PROFILE
        )
        assert report.identical, report.as_dict()

    def test_salvage_cli(self, tmp_path, capsys):
        out = tmp_path / "s.ute"
        argv = [
            str(FIXTURES / "salvage.otf2.txt"), "--from", "otf2-text",
            "--errors", "salvage", "-o", str(out),
        ]
        assert main_convert(argv) == 0
        assert "salvaged" in capsys.readouterr().err
        assert out.exists()
