"""Tests for the live-trace subsystem (``repro.live``).

Covers the container protocol (epoch manifests, atomic republish,
extension rule), the live writers (sealed frames, torn-tail invisibility,
final assembly), the readers (monotonic refresh, protocol-violation
detection, follow loop with exactly-once delivery), the per-epoch
incremental index, and the replay driver.  The crash-shaped cases (a
writer killed between flush and publish) live in ``test_crash_safety.py``.
"""

import shutil

import pytest

from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.core.writer import IntervalFileWriter
from repro.errors import FormatError
from repro.live import (
    FollowReader,
    LiveIntervalWriter,
    LiveReader,
    LiveSlogWriter,
    has_live_container,
    live_dir_for,
    read_manifest,
    replay_live,
)
from repro.live.container import (
    EpochManifest,
    data_path,
    epoch_path,
    index_path,
    meta_path,
    write_manifest,
)
from repro.query.indexfile import load_fresh_index, load_index
from repro.utils.slog import SlogFile

PROFILE = standard_profile()


def table():
    return ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0")])


def running(start, dura):
    return IntervalRecord(
        IntervalType.RUNNING, BeBits.COMPLETE, start, dura, 0, 0, 0
    )


def live_writer(path, **kw):
    kw.setdefault("field_mask", MASK_ALL_MERGED)
    kw.setdefault("frame_bytes", 256)
    return LiveSlogWriter(path, PROFILE, table(), **kw)


def norm(records):
    """What ``records`` look like after one encode/decode round trip
    (the merged field mask materializes defaulted extra fields)."""
    out = []
    for r in records:
        blob = r.encode(PROFILE, MASK_ALL_MERGED)
        out.append(IntervalRecord.decode(blob, 0, PROFILE, MASK_ALL_MERGED)[0])
    return out


def nonpseudo_records(path):
    """The finished SLOG file's record stream minus pseudo continuations."""
    with SlogFile(path) as slog:
        out = []
        for entry in slog.frames:
            out.extend(slog.read_frame(entry)[entry.n_pseudo :])
        return out


class TestContainer:
    def test_manifest_roundtrip(self, tmp_path):
        import numpy as np

        from repro.utils.slog import SlogFrameEntry

        manifest = EpochManifest(
            seq=7, meta_size=100, data_size=64, flavor=0, finalized=True,
            time_range=(0, 1024), preview_bins=4,
            preview={1: np.array([1.0, 2.0, 0.0, 0.5])},
            frames=(SlogFrameEntry(0, 50, 0, 64, 3, 1),),
        )
        live_dir = tmp_path / "c.slog.live"
        live_dir.mkdir()
        write_manifest(live_dir, manifest)
        back = read_manifest(live_dir)
        assert back.seq == 7 and back.finalized
        assert back.frames == manifest.frames
        assert back.time_range == (0, 1024)
        assert list(back.preview) == [1]
        assert back.preview[1].tolist() == [1.0, 2.0, 0.0, 0.5]
        assert back.absolute_frames()[0].offset == 100

    def test_corrupt_epoch_rejected(self, tmp_path):
        live_dir = tmp_path / "c.slog.live"
        live_dir.mkdir()
        manifest = EpochManifest(
            seq=0, meta_size=0, data_size=0, flavor=0, finalized=False,
            time_range=(0, 1), preview_bins=4, preview={}, frames=(),
        )
        write_manifest(live_dir, manifest)
        blob = bytearray(epoch_path(live_dir).read_bytes())
        blob[12] ^= 0xFF
        epoch_path(live_dir).write_bytes(bytes(blob))
        with pytest.raises(FormatError):
            read_manifest(live_dir)

    def test_extends_rule(self, tmp_path):
        from repro.utils.slog import SlogFrameEntry

        f0 = SlogFrameEntry(0, 10, 0, 32, 2, 0)
        f1 = SlogFrameEntry(10, 20, 32, 32, 2, 0)

        def epoch(seq, data_size, frames, meta_size=100):
            return EpochManifest(
                seq=seq, meta_size=meta_size, data_size=data_size, flavor=0,
                finalized=False, time_range=(0, 1), preview_bins=4,
                preview={}, frames=frames,
            )

        base = epoch(1, 32, (f0,))
        assert epoch(2, 64, (f0, f1)).extends(base)
        assert epoch(1, 32, (f0,)).extends(base)  # same epoch re-read
        assert not epoch(0, 32, (f0,)).extends(base)  # seq regression
        assert not epoch(2, 16, ()).extends(base)  # shrank
        assert not epoch(2, 64, (f1, f0)).extends(base)  # prefix diverges
        assert not epoch(2, 64, (f0, f1), meta_size=99).extends(base)


class TestLiveSlogWriter:
    def test_refuses_existing_targets(self, tmp_path):
        path = tmp_path / "run.slog"
        path.write_bytes(b"x")
        with pytest.raises(FormatError):
            live_writer(path)
        path.unlink()
        writer = live_writer(path)
        with pytest.raises(FormatError):
            live_writer(path)  # container already exists
        writer.abort()

    def test_out_of_order_rejected(self, tmp_path):
        writer = live_writer(tmp_path / "run.slog")
        writer.write(running(100, 50))
        with pytest.raises(FormatError):
            writer.write(running(0, 10))
        writer.abort()

    def test_epoch_zero_allows_early_attach(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        assert has_live_container(path)
        with LiveReader(path) as reader:
            assert reader.seq == 0
            assert reader.frames == []
            assert not reader.finalized
        writer.abort()
        assert not has_live_container(path)

    def test_published_frames_visible_torn_tail_invisible(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        for i in range(10):
            writer.write(running(i * 10, 5))
        writer.publish(seal=True)
        reader = LiveReader(path)
        published = [r for e in reader.frames for r in reader.read_frame(e)]
        assert len(published) == 10

        # Seal + fsync more frames but never publish: durable bytes that
        # no reader — strict or salvaging — may observe.
        for i in range(10, 20):
            writer.write(running(i * 10, 5))
        writer.seal_frame()
        writer.flush_data()
        published_size = read_manifest(writer.live_dir).data_size
        assert data_path(writer.live_dir).stat().st_size > published_size
        assert not reader.refresh()
        fresh = LiveReader(path, errors="salvage")
        seen = [r for e in fresh.frames for r in fresh.read_frame(e)]
        assert seen == published
        fresh.close()
        reader.close()
        writer.abort()

    def test_refresh_is_monotonic(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        reader = LiveReader(path)
        total = 0
        for batch in range(3):
            for i in range(8):
                writer.write(running((batch * 8 + i) * 10, 5))
            seq = writer.publish(seal=True)
            before = list(reader.frames)
            assert reader.refresh()
            assert reader.seq == seq
            assert reader.frames[: len(before)] == before
            records = [r for e in reader.frames for r in reader.read_frame(e)]
            nonpseudo = [
                r for r in records
                if not (r.bebits is BeBits.CONTINUATION and r.duration == 0)
            ]
            total = len(nonpseudo)
            assert total == (batch + 1) * 8
        assert not reader.refresh()  # nothing new
        reader.close()
        writer.abort()

    def test_close_assembles_final_file(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        records = [running(i * 10, 5) for i in range(30)]
        for r in records:
            writer.write(r)
            if r.start % 100 == 0:
                writer.publish(seal=True)
        final = writer.close()
        assert final == path
        assert path.exists()
        assert not live_dir_for(path).exists()
        assert nonpseudo_records(path) == norm(records)
        # The assembled sidecar index is fresh for the final bytes.
        index, reason = load_fresh_index(path)
        assert reason == "fresh"
        assert len(index.frames) == len(SlogFile(path).frames)

    def test_context_manager_aborts_on_error(self, tmp_path):
        path = tmp_path / "run.slog"
        with pytest.raises(RuntimeError):
            with live_writer(path) as writer:
                writer.write(running(0, 5))
                raise RuntimeError("boom")
        assert not path.exists()
        assert not live_dir_for(path).exists()


class TestLiveReader:
    def test_epoch_regression_is_protocol_violation(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        for i in range(10):
            writer.write(running(i * 10, 5))
        writer.publish(seal=True)
        reader = LiveReader(path)
        # Republish an older epoch (seq goes backwards): corrupt writer.
        old = EpochManifest(
            seq=0, meta_size=reader.manifest.meta_size, data_size=0,
            flavor=0, finalized=False, time_range=(0, 1),
            preview_bins=reader.manifest.preview_bins, preview={}, frames=(),
        )
        write_manifest(writer.live_dir, old)
        with pytest.raises(FormatError, match="protocol violation"):
            reader.refresh()
        reader.close()
        writer.abort()

    def test_divergent_frames_rejected(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        for i in range(10):
            writer.write(running(i * 10, 5))
        writer.publish(seal=True)
        reader = LiveReader(path)
        current = read_manifest(writer.live_dir)
        from repro.utils.slog import SlogFrameEntry

        first = current.frames[0]
        mutated = SlogFrameEntry(
            first.start_time, first.end_time, first.offset, first.size,
            first.n_records + 1, first.n_pseudo,
        )
        forged = EpochManifest(
            seq=current.seq + 1, meta_size=current.meta_size,
            data_size=current.data_size, flavor=current.flavor,
            finalized=False, time_range=current.time_range,
            preview_bins=current.preview_bins, preview=current.preview,
            frames=(mutated,) + current.frames[1:],
        )
        write_manifest(writer.live_dir, forged)
        with pytest.raises(FormatError, match="protocol violation"):
            reader.refresh()
        reader.close()
        writer.abort()

    def test_vanished_container_keeps_view_readable(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        for i in range(10):
            writer.write(running(i * 10, 5))
        writer.publish(seal=True)
        reader = LiveReader(path)
        frames = list(reader.frames)
        shutil.rmtree(writer.live_dir)
        assert not reader.container_exists()
        assert not reader.refresh()  # view pinned, no error
        # The open fd keeps every published byte readable.
        records = [r for e in frames for r in reader.read_frame(e)]
        assert len(records) == 10
        reader.close()
        writer._closed = True  # container already gone; skip abort cleanup


class TestLiveIndex:
    def test_index_tracks_each_epoch(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        live_dir = writer.live_dir
        for batch in range(3):
            for i in range(8):
                writer.write(running((batch * 8 + i) * 10, 5))
            writer.publish(seal=True)
            manifest = read_manifest(live_dir)
            index = load_index(index_path(live_dir))
            assert index.source_size == manifest.meta_size + manifest.data_size
            assert len(index.frames) == manifest.n_frames
            # The index hashes exactly the published virtual file.
            import hashlib

            virtual = meta_path(live_dir).read_bytes() + data_path(
                live_dir
            ).read_bytes()[: manifest.data_size]
            assert index.source_sha256 == hashlib.sha256(virtual).digest()
        writer.abort()

    def test_index_totals_match_records(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        for i in range(20):
            writer.write(running(i * 10, 5))
        writer.publish(seal=True)
        index = load_index(index_path(writer.live_dir))
        reader = LiveReader(path)
        records = [r for e in reader.frames for r in reader.read_frame(e)]
        assert sum(c for c, _ in index.bins) == len(records)
        assert sum(d for _, d in index.bins) == sum(r.duration for r in records)
        assert sum(f.n_records for f in index.frames) == len(records)
        reader.close()
        writer.abort()


class TestFollowReader:
    def test_follow_across_epochs_exactly_once(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        follower = FollowReader(path, poll_interval=0.0)
        assert follower.live
        got = []
        seqs = []
        for batch in range(4):
            for i in range(6):
                writer.write(running((batch * 6 + i) * 10, 5))
            writer.publish(seal=True)
            event = follower.poll()
            assert event is not None and event.kind == "epoch"
            seqs.append(event.seq)
            got.extend(event.records[event.n_pseudo :])
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert follower.poll() is None  # nothing new
        final = writer.close()
        # Container gone, file exists: the follower switches over and
        # finishes without dropping or repeating a record.
        tail = []
        while True:
            event = follower.poll()
            assert event is not None
            if event.kind == "final":
                break
            tail.extend(event.records[event.n_pseudo :])
        got.extend(tail)
        assert got == nonpseudo_records(final)
        assert follower.poll() is None
        follower.close()

    def test_follow_sees_final_epoch(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        follower = FollowReader(path, poll_interval=0.0)
        for i in range(10):
            writer.write(running(i * 10, 5))
        writer.publish(seal=True, final=True)
        event = follower.poll()
        assert event.kind == "epoch" and event.n_new_frames >= 1
        event = follower.poll()
        assert event.kind == "final"
        assert follower.poll() is None
        follower.close()
        writer.abort()

    def test_follow_finished_file(self, tmp_path):
        path = tmp_path / "run.slog"
        with live_writer(path) as writer:
            for i in range(12):
                writer.write(running(i * 10, 5))
        follower = FollowReader(path)
        assert not follower.live
        events = list(follower.events())
        assert [e.kind for e in events] == ["epoch", "final"]
        total = sum(len(e.records) for e in events)
        assert total - sum(e.n_pseudo for e in events) == 12
        follower.close()

    def test_follow_interval_flavor_switchover(self, tmp_path):
        path = tmp_path / "run.ute"
        writer = LiveIntervalWriter(
            path, PROFILE, table(), field_mask=MASK_ALL_MERGED, frame_bytes=256,
        )
        follower = FollowReader(path, poll_interval=0.0)
        records = [running(i * 10, 5) for i in range(20)]
        got = []
        for r in records[:10]:
            writer.write(r)
        writer.publish(seal=True)
        event = follower.poll()
        got.extend(event.records[event.n_pseudo :])
        for r in records[10:]:
            writer.write(r)
        writer.close()
        while True:
            event = follower.poll()
            if event.kind == "final":
                break
            got.extend(event.records[event.n_pseudo :])
        assert got == norm(records)
        follower.close()

    def test_connect_timeout(self, tmp_path):
        with pytest.raises(FormatError, match="neither a live container"):
            FollowReader(tmp_path / "absent.slog", connect_timeout=0.0)

    def test_events_timeout_returns(self, tmp_path):
        path = tmp_path / "run.slog"
        writer = live_writer(path)
        follower = FollowReader(path, poll_interval=0.0)
        assert list(follower.events(timeout=0.0)) == []
        follower.close()
        writer.abort()


class TestLiveIntervalWriter:
    def test_assembles_interval_file(self, tmp_path):
        path = tmp_path / "run.ute"
        writer = LiveIntervalWriter(
            path, PROFILE, table(), field_mask=MASK_ALL_MERGED, frame_bytes=256,
        )
        records = [running(i * 10, 5) for i in range(25)]
        for i, r in enumerate(records):
            writer.write(r)
            if i % 10 == 9:
                writer.publish(seal=True)
        final = writer.close()
        assert not live_dir_for(path).exists()
        from repro.core.reader import IntervalReader

        with IntervalReader(final, PROFILE) as reader:
            assert list(reader.intervals()) == norm(records)

    def test_auto_pseudo_stripped_at_assembly(self, tmp_path):
        path = tmp_path / "run.ute"
        writer = LiveIntervalWriter(
            path, PROFILE, table(), field_mask=MASK_ALL_MERGED,
            frame_bytes=256, auto_pseudo=True,
        )
        # Long-running interval forces open state across frame seals.
        records = [running(i * 10, 5) for i in range(30)]
        for r in records:
            writer.write(r)
        final = writer.close()
        from repro.core.reader import IntervalReader

        with IntervalReader(final, PROFILE) as reader:
            assert list(reader.intervals()) == norm(records)


class TestBatchParity:
    def test_live_and_batch_slog_are_divergence_free(self, tmp_path):
        """The tentpole guarantee: a trace streamed through the live
        writer assembles into the same record stream as the batch SLOG
        build, modulo pseudo-interval continuations (epoch publishes seal
        frames at different points, so the injection sites differ — the
        ``ute-diff --ignore-pseudo`` contract)."""
        from repro.utils.slog import slog_from_interval_file

        send = IntervalType.for_mpi_fn(0)
        records = [IntervalRecord(send, BeBits.BEGIN, 0, 0, 0, 0, 0)]
        for i in range(40):
            records.append(running(i * 10 + 1, 5))
        records.append(IntervalRecord(send, BeBits.END, 401, 0, 0, 0, 0))
        merged = tmp_path / "merged.ute"
        writer = IntervalFileWriter(
            merged, PROFILE, table(), field_mask=MASK_ALL_MERGED,
            frame_bytes=1024,
        )
        for r in records:
            writer.write(r)
        writer.close()

        batch = slog_from_interval_file(
            merged, PROFILE, tmp_path / "batch.slog", frame_bytes=256,
        )
        live = replay_live(
            merged, tmp_path / "live.slog", profile=PROFILE,
            duration_s=0.5, publish_interval_s=0.05, frame_bytes=256,
            sleeper=lambda s: None,
        )
        with SlogFile(batch) as b, SlogFile(live) as v:
            batch_pseudo = sum(e.n_pseudo for e in b.frames)
            live_pseudo = sum(e.n_pseudo for e in v.frames)
            live_continuations = [
                r for e in v.frames for r in v.read_frame(e)[: e.n_pseudo]
            ]
        assert batch_pseudo > 0 and live_pseudo > 0  # the open MPI_Send
        assert all(
            r.itype == send and r.bebits is BeBits.CONTINUATION
            for r in live_continuations
        )
        assert nonpseudo_records(live) == nonpseudo_records(batch)


class TestReplayLive:
    def _merged(self, tmp_path, n=40):
        merged = tmp_path / "merged.ute"
        writer = IntervalFileWriter(
            merged, PROFILE, table(), field_mask=MASK_ALL_MERGED,
            frame_bytes=512,
        )
        records = [running(i * 10, 5) for i in range(n)]
        for r in records:
            writer.write(r)
        writer.close()
        return merged, records

    def test_replay_slog(self, tmp_path):
        merged, records = self._merged(tmp_path)
        out = tmp_path / "run.slog"
        sleeps = []
        final = replay_live(
            merged, out, profile=PROFILE, duration_s=1.0,
            publish_interval_s=0.1, frame_bytes=256,
            sleeper=sleeps.append,
        )
        assert final == out and out.exists()
        assert not live_dir_for(out).exists()
        assert nonpseudo_records(out) == norm(records)
        assert sleeps  # the driver paced itself against the wall clock

    def test_replay_interval(self, tmp_path):
        merged, records = self._merged(tmp_path)
        out = tmp_path / "run.ute"
        replay_live(
            merged, out, profile=PROFILE, duration_s=0.2,
            publish_interval_s=0.1, flavor="interval",
            sleeper=lambda s: None,
        )
        from repro.core.reader import IntervalReader

        with IntervalReader(out, PROFILE) as reader:
            assert list(reader.intervals()) == norm(records)

    def test_replay_bad_flavor(self, tmp_path):
        merged, _ = self._merged(tmp_path, n=4)
        with pytest.raises(FormatError, match="unknown live flavor"):
            replay_live(merged, tmp_path / "x.slog", flavor="csv",
                        sleeper=lambda s: None)
