"""Tests for the simulated MPI layer: semantics, matching, collectives,
and PMPI trace events."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.cluster.engine import Future
from repro.errors import SimulationError
from repro.mpi import ANY_SOURCE, ANY_TAG, Mailbox, Message, MpiRuntime
from repro.mpi.message import CTX_COLLECTIVE, CTX_POINT_TO_POINT
from repro.mpi.pmpi import as_signed, enc_signed
from repro.tracing import RawTraceReader, TraceFacility, TraceOptions
from repro.tracing.hooks import MPI_FN_IDS, hook_for_mpi_begin, hook_for_mpi_end


def run_job(n_tasks, body, *, nodes=2, cpus=2, tasks_per_node=None, traced=False, tmp_path=None):
    cl = Cluster(ClusterSpec(n_nodes=nodes, cpus_per_node=cpus))
    fac = TraceFacility(cl, tmp_path, TraceOptions()) if traced else None
    rt = MpiRuntime(cl, fac)
    rt.launch(n_tasks, body, tasks_per_node=tasks_per_node)
    rt.run()
    paths = fac.close() if fac else []
    return rt, [RawTraceReader(p) for p in paths]


class TestMailbox:
    def msg(self, src=0, tag=0, context=CTX_POINT_TO_POINT, seqno=1):
        return Message(src, 1, tag, 100, seqno, context)

    def test_posted_recv_matches_later_delivery(self):
        box = Mailbox(1)
        fut = box.post_recv(0, 0, CTX_POINT_TO_POINT)
        assert not fut.done
        box.deliver(self.msg())
        assert fut.done and fut.value.src == 0

    def test_unexpected_message_matches_later_recv(self):
        box = Mailbox(1)
        box.deliver(self.msg(tag=5))
        fut = box.post_recv(0, 5, CTX_POINT_TO_POINT)
        assert fut.done

    def test_wildcard_source_and_tag(self):
        box = Mailbox(1)
        box.deliver(self.msg(src=3, tag=9))
        fut = box.post_recv(ANY_SOURCE, ANY_TAG, CTX_POINT_TO_POINT)
        assert fut.done and fut.value.tag == 9

    def test_tag_mismatch_does_not_match(self):
        box = Mailbox(1)
        box.deliver(self.msg(tag=1))
        fut = box.post_recv(0, 2, CTX_POINT_TO_POINT)
        assert not fut.done
        assert box.pending_unexpected() == 1

    def test_context_separation(self):
        """Collective fragments never match user point-to-point receives."""
        box = Mailbox(1)
        box.deliver(self.msg(context=CTX_COLLECTIVE))
        fut = box.post_recv(ANY_SOURCE, ANY_TAG, CTX_POINT_TO_POINT)
        assert not fut.done

    def test_fifo_order_per_source(self):
        box = Mailbox(1)
        box.deliver(self.msg(seqno=1))
        box.deliver(self.msg(seqno=2))
        first = box.post_recv(0, 0, CTX_POINT_TO_POINT)
        second = box.post_recv(0, 0, CTX_POINT_TO_POINT)
        assert first.value.seqno == 1
        assert second.value.seqno == 2


class TestPointToPoint:
    def test_send_recv_delivers_payload(self):
        results = {}

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 2048, tag=7, payload={"x": 1})
            else:
                msg = yield from ctx.recv(0, 7)
                results["msg"] = msg

        run_job(2, body)
        assert results["msg"].size == 2048
        assert results["msg"].payload == {"x": 1}

    def test_seqnos_unique_and_matchable(self):
        seen = []

        def body(ctx):
            if ctx.rank == 0:
                for _ in range(3):
                    yield from ctx.send(1, 64)
            else:
                for _ in range(3):
                    msg = yield from ctx.recv()
                    seen.append(msg.seqno)

        run_job(2, body)
        assert len(set(seen)) == 3

    def test_isend_irecv_wait(self):
        results = {}

        def body(ctx):
            if ctx.rank == 0:
                req = yield from ctx.isend(1, 512)
                yield from ctx.wait(req)
            else:
                req = yield from ctx.irecv(0)
                msg = yield from ctx.wait(req)
                results["msg"] = msg

        run_job(2, body)
        assert results["msg"].size == 512

    def test_waitall_completes_everything(self):
        results = {}

        def body(ctx):
            if ctx.rank == 0:
                reqs = []
                for i in range(4):
                    reqs.append((yield from ctx.isend(1, 128, tag=i)))
                yield from ctx.waitall(reqs)
            else:
                reqs = []
                for i in range(4):
                    reqs.append((yield from ctx.irecv(0, tag=i)))
                msgs = yield from ctx.waitall(reqs)
                results["tags"] = [m.tag for m in msgs]

        run_job(2, body)
        assert results["tags"] == [0, 1, 2, 3]

    def test_ssend_blocks_until_delivery(self):
        times = {}

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.ssend(1, 1_000_000)
                times["send_done"] = ctx.runtime.cluster.engine.now
            else:
                msg = yield from ctx.recv(0)
                times["recv_done"] = ctx.runtime.cluster.engine.now

        rt, _ = run_job(2, body)
        # Synchronous send cannot complete before the message reached node 1.
        assert times["send_done"] >= 1_000_000 / rt.cluster.spec.network.bytes_per_ns * 0.9

    def test_sendrecv_exchanges_without_deadlock(self):
        got = {}

        def body(ctx):
            peer = 1 - ctx.rank
            msg = yield from ctx.sendrecv(peer, 256, source=peer)
            got[ctx.rank] = msg.src

        run_job(2, body)
        assert got == {0: 1, 1: 0}

    def test_send_to_invalid_rank_raises(self):
        def body(ctx):
            yield from ctx.send(99, 10)

        with pytest.raises(SimulationError, match="invalid rank"):
            run_job(2, body)

    def test_larger_message_takes_longer(self):
        def timed(size):
            def body(ctx):
                if ctx.rank == 0:
                    yield from ctx.send(1, size)
                else:
                    yield from ctx.recv(0)

            rt, _ = run_job(2, body)
            return rt.cluster.engine.now

        assert timed(1 << 20) > timed(1 << 10)


class TestCollectives:
    @pytest.mark.parametrize("p", [2, 3, 4, 7, 8])
    def test_barrier_completes_all_ranks(self, p):
        done = []

        def body(ctx):
            yield from ctx.barrier()
            done.append(ctx.rank)

        run_job(p, body, nodes=4, tasks_per_node=2)
        assert sorted(done) == list(range(p))

    @pytest.mark.parametrize("p,root", [(2, 0), (4, 1), (5, 3), (8, 7)])
    def test_bcast_all_ranks_complete(self, p, root):
        done = []

        def body(ctx):
            yield from ctx.bcast(root, 4096)
            done.append(ctx.rank)

        run_job(p, body, nodes=4, tasks_per_node=2)
        assert sorted(done) == list(range(p))

    @pytest.mark.parametrize("p,root", [(2, 0), (4, 2), (7, 0)])
    def test_reduce_all_ranks_complete(self, p, root):
        done = []

        def body(ctx):
            yield from ctx.reduce(root, 1024)
            done.append(ctx.rank)

        run_job(p, body, nodes=4, tasks_per_node=2)
        assert sorted(done) == list(range(p))

    @pytest.mark.parametrize(
        "op", ["allreduce", "allgather", "alltoall", "reduce_scatter", "scan"]
    )
    @pytest.mark.parametrize("p", [2, 4, 5])
    def test_symmetric_collectives_complete(self, op, p):
        done = []

        def body(ctx):
            yield from getattr(ctx, op)(2048)
            done.append(ctx.rank)

        run_job(p, body, nodes=4, tasks_per_node=2)
        assert sorted(done) == list(range(p))

    @pytest.mark.parametrize("op", ["gather", "scatter"])
    def test_rooted_collectives_complete(self, op):
        done = []

        def body(ctx):
            yield from getattr(ctx, op)(1, 1024)
            done.append(ctx.rank)

        run_job(4, body)
        assert sorted(done) == [0, 1, 2, 3]

    def test_consecutive_collectives_do_not_cross_match(self):
        done = []

        def body(ctx):
            for _ in range(5):
                yield from ctx.barrier()
                yield from ctx.allreduce(64)
            done.append(ctx.rank)

        run_job(4, body)
        assert sorted(done) == [0, 1, 2, 3]

    def test_barrier_synchronizes(self):
        """No rank leaves the barrier before the last rank arrives."""
        arrive = {}
        leave = {}

        def body(ctx):
            yield from ctx.compute(0.001 * (ctx.rank + 1))
            arrive[ctx.rank] = ctx.runtime.cluster.engine.now
            yield from ctx.barrier()
            leave[ctx.rank] = ctx.runtime.cluster.engine.now

        run_job(4, body, nodes=4, tasks_per_node=1, cpus=1)
        assert min(leave.values()) >= max(arrive.values())


class TestPlacement:
    def test_block_placement(self):
        def body(ctx):
            yield from ctx.compute(0.0001)

        cl = Cluster(ClusterSpec(n_nodes=2, cpus_per_node=4))
        rt = MpiRuntime(cl)
        rt.launch(4, body, tasks_per_node=2)
        assert [t.node.node_id for t in rt.tasks] == [0, 0, 1, 1]

    def test_default_placement_spreads_evenly(self):
        def body(ctx):
            yield from ctx.compute(0.0001)

        cl = Cluster(ClusterSpec(n_nodes=4, cpus_per_node=1))
        rt = MpiRuntime(cl)
        rt.launch(8, body)
        assert [t.node.node_id for t in rt.tasks] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_overflow_placement_rejected(self):
        cl = Cluster(ClusterSpec(n_nodes=2, cpus_per_node=1))
        rt = MpiRuntime(cl)
        with pytest.raises(SimulationError, match="placement overflow"):
            rt.launch(5, lambda ctx: iter(()), tasks_per_node=1)

    def test_double_launch_rejected(self):
        cl = Cluster(ClusterSpec(n_nodes=1))
        rt = MpiRuntime(cl)
        rt.launch(1, lambda ctx: iter(()))
        with pytest.raises(SimulationError):
            rt.launch(1, lambda ctx: iter(()))


class TestPmpiTracing:
    def test_begin_end_events_for_each_call(self, tmp_path):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4096, tag=3)
            else:
                yield from ctx.recv(0, 3)
            yield from ctx.barrier()

        _, readers = run_job(2, body, nodes=2, tasks_per_node=1, traced=True, tmp_path=tmp_path)
        hooks0 = [e.hook_id for e in readers[0].events()]
        send_id = MPI_FN_IDS["MPI_Send"]
        assert hook_for_mpi_begin(send_id) in hooks0
        assert hook_for_mpi_end(send_id) in hooks0
        barrier_id = MPI_FN_IDS["MPI_Barrier"]
        for r in readers:
            hs = [e.hook_id for e in r.events()]
            assert hs.count(hook_for_mpi_begin(barrier_id)) == 1
            assert hs.count(hook_for_mpi_end(barrier_id)) == 1

    def test_send_begin_args_carry_message_info(self, tmp_path):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4096, tag=3)
            else:
                yield from ctx.recv(0, 3)

        _, readers = run_job(2, body, nodes=2, tasks_per_node=1, traced=True, tmp_path=tmp_path)
        send_begin = next(
            e
            for e in readers[0].events()
            if e.hook_id == hook_for_mpi_begin(MPI_FN_IDS["MPI_Send"])
        )
        peer, tag, size, seqno, addr = send_begin.args
        assert (peer, tag, size) == (1, 3, 4096)
        assert seqno > 0

    def test_recv_end_seqno_matches_send_begin_seqno(self, tmp_path):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 4096)
            else:
                yield from ctx.recv(0)

        _, readers = run_job(2, body, nodes=2, tasks_per_node=1, traced=True, tmp_path=tmp_path)
        send_begin = next(
            e
            for e in readers[0].events()
            if e.hook_id == hook_for_mpi_begin(MPI_FN_IDS["MPI_Send"])
        )
        recv_end = next(
            e
            for e in readers[1].events()
            if e.hook_id == hook_for_mpi_end(MPI_FN_IDS["MPI_Recv"])
        )
        assert recv_end.args[3] == send_begin.args[3]

    def test_waitall_end_carries_completed_seqnos(self, tmp_path):
        def body(ctx):
            if ctx.rank == 0:
                for i in range(3):
                    yield from ctx.isend(1, 128, tag=i)
            else:
                reqs = []
                for i in range(3):
                    reqs.append((yield from ctx.irecv(0, tag=i)))
                yield from ctx.waitall(reqs)

        _, readers = run_job(2, body, nodes=2, tasks_per_node=1, traced=True, tmp_path=tmp_path)
        waitall_end = next(
            e
            for e in readers[1].events()
            if e.hook_id == hook_for_mpi_end(MPI_FN_IDS["MPI_Waitall"])
        )
        assert len(waitall_end.args) == 3
        send_begins = [
            e.args[3]
            for e in readers[0].events()
            if e.hook_id == hook_for_mpi_begin(MPI_FN_IDS["MPI_Isend"])
        ]
        assert set(waitall_end.args) == set(send_begins)

    def test_internal_collective_traffic_not_traced(self, tmp_path):
        def body(ctx):
            yield from ctx.allreduce(1 << 16)

        _, readers = run_job(4, body, nodes=2, tasks_per_node=2, traced=True, tmp_path=tmp_path)
        send_id = MPI_FN_IDS["MPI_Send"]
        for r in readers:
            hooks = [e.hook_id for e in r.events()]
            assert hook_for_mpi_begin(send_id) not in hooks

    def test_untraced_run_produces_no_files(self):
        def body(ctx):
            yield from ctx.barrier()

        rt, readers = run_job(2, body)
        assert readers == []


def test_signed_encoding_roundtrip():
    for v in (0, 1, -1, ANY_SOURCE, ANY_TAG, 2**40, -(2**40)):
        assert as_signed(enc_signed(v)) == v
