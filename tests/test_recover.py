"""``ute-recover`` against the golden corpus (utils/recover.py).

The acceptance bar: every damaged corpus artifact recovers into a file
that the strict readers accept and — for interval files — ``ute-validate``
passes with zero errors.  The manifest pins the exact record counts, so a
salvage regression that silently loses more records fails here.
"""

import json

import pytest

from repro.cli import main_recover
from repro.core import IntervalReader, standard_profile
from repro.core.profilefmt import Profile
from repro.errors import FormatError
from repro.tracing.rawfile import RawTraceReader
from repro.utils.recover import default_output_path, recover_file, sniff_kind
from repro.utils.slog import SlogFile
from repro.utils.validate import validate_interval_file

PROFILE = standard_profile()


def _profile_for(corpus, name: str) -> Profile | None:
    ref = corpus.manifest[name].get("profile")
    if ref is None or ref == "standard":
        return PROFILE if corpus.manifest[name]["kind"] == "interval" else None
    return Profile.read(corpus.path(ref))


def _strict_count(kind: str, path, profile) -> int:
    if kind == "interval":
        with IntervalReader(path, profile) as reader:
            return sum(1 for _ in reader.intervals())
    if kind == "slog":
        with SlogFile(path) as slog:
            return len(slog.records())
    with RawTraceReader(path) as reader:
        return len(reader.events())


class TestSniffing:
    def test_kinds(self, corpus):
        assert sniff_kind(corpus.path("good.ute")) == "interval"
        assert sniff_kind(corpus.path("good.slog")) == "slog"
        assert sniff_kind(corpus.path("good.raw")) == "raw"

    def test_unknown_magic(self, tmp_path):
        junk = tmp_path / "junk.ute"
        junk.write_bytes(b"NOTATRACE")
        with pytest.raises(FormatError, match="not a recoverable trace file"):
            sniff_kind(junk)

    def test_default_output_path(self):
        assert default_output_path("a/b/trace.ute").name == "trace.recovered.ute"

    def test_refuses_to_overwrite_the_input(self, corpus_copy):
        path = corpus_copy("good.ute")
        with pytest.raises(FormatError, match="onto itself"):
            recover_file(path, path, profile=PROFILE)


class TestGoldenCorpusRecovery:
    def test_every_damaged_artifact_recovers_clean(self, corpus, tmp_path):
        """The acceptance criterion, literally: ute-recover on every
        damaged corpus artifact yields a validating file with the exact
        record counts the manifest pins."""
        for name in corpus.damaged():
            info = corpus.manifest[name]
            out = tmp_path / (name + ".rec")
            report = recover_file(
                corpus.path(name), out, profile=_profile_for(corpus, name)
            )
            assert report.ok, f"{name}: {report.summary()}"
            assert report.kind == info["kind"]
            assert report.records_out == info["recovered_records"], name
            assert not report.salvage.clean, name
            # The output must satisfy the strict readers.
            assert _strict_count(info["kind"], out, _profile_for(corpus, name)) \
                == report.records_out, name

    def test_recovered_interval_files_validate_with_zero_errors(self, corpus, tmp_path):
        for name in corpus.damaged("interval"):
            out = tmp_path / (name + ".rec")
            profile = _profile_for(corpus, name)
            recover_file(corpus.path(name), out, profile=profile)
            validation = validate_interval_file(out, profile)
            assert validation.ok, f"{name}: {validation.errors}"
            assert not validation.errors

    def test_good_file_recovers_losslessly(self, corpus, tmp_path):
        report = recover_file(
            corpus.path("good.ute"), tmp_path / "good.rec.ute", profile=PROFILE
        )
        assert report.ok and report.salvage.clean
        assert report.records_out == corpus.manifest["good.ute"]["records"]
        assert report.records_rejected == 0

    def test_recovered_records_subset_of_original(self, corpus, tmp_path):
        with IntervalReader(corpus.path("good.ute"), PROFILE) as reader:
            original = set(map(repr, reader.intervals()))
        out = tmp_path / "trunc.rec.ute"
        recover_file(corpus.path("trunc-tail.ute"), out, profile=PROFILE)
        with IntervalReader(out, PROFILE) as reader:
            recovered = [repr(r) for r in reader.intervals()]
        assert recovered and all(r in original for r in recovered)

    def test_interval_recovery_requires_a_profile(self, corpus, tmp_path):
        with pytest.raises(FormatError, match="profile"):
            recover_file(corpus.path("trunc-tail.ute"), tmp_path / "x.ute")

    def test_report_as_dict_is_json_ready(self, corpus, tmp_path):
        report = recover_file(
            corpus.path("midflip.raw"), tmp_path / "m.rec.raw"
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["kind"] == "raw"
        assert payload["records_out"] == report.records_out
        assert payload["salvage"]["bytes_skipped"] > 0


class TestRecoverCli:
    def test_recover_damaged_slog(self, corpus, tmp_path, capsys):
        out = tmp_path / "f.rec.slog"
        code = main_recover([str(corpus.path("flip-frame.slog")), "-o", str(out)])
        assert code == 0
        assert "OK" in capsys.readouterr().out
        assert out.exists()

    def test_recover_with_profile_and_json(self, corpus, tmp_path, capsys):
        out = tmp_path / "c.rec.ute"
        code = main_recover([
            str(corpus.path("cut-255.ute")), "-o", str(out),
            "--profile", str(corpus.path("boundary.profile")), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records_out"] \
            == corpus.manifest["cut-255.ute"]["recovered_records"]

    def test_missing_input_is_a_usage_error(self, tmp_path, capsys):
        code = main_recover([str(tmp_path / "absent.ute")])
        assert code == 2
        assert "ute-recover" in capsys.readouterr().err
