"""Round-trip conformance: Hypothesis properties over generated traces,
the oracle's ``export_import_roundtrip`` check over a real pipeline, the
chunked serve endpoint, and the sPPM acceptance export.

The property under test is the tentpole guarantee: for any trace the
pipeline can produce, ``export -> import -> ute-diff`` is divergence-free
modulo the declared masks (pseudo-records and frame boundaries only).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.core import standard_profile
from repro.difftool import diff_traces, run_oracle
from repro.interop import (
    CHROME_ROUNDTRIP_CONFIG,
    OTF2_ROUNDTRIP_CONFIG,
    export_chrome_json,
    export_otf2_text,
    import_chrome_json,
    import_otf2_text,
)
from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.tracing.rawfile import RawFileHeader, RawTraceReader, RawTraceWriter
from repro.utils.merge import merge_interval_files

from tests.test_convert_properties import MarkerUnifier, convert_one, schedules
from tests.test_interop import read_records

PROFILE = standard_profile()


def build_trace(tmp, schedule):
    """schedule -> raw -> convert -> merge(1): a real pipeline artifact."""
    raw = tmp / "rt.raw"
    with RawTraceWriter(raw, RawFileHeader(0, 4, 0)) as writer:
        for event in schedule.events:
            writer.write(event)
    converted = tmp / "rt.ute"
    convert_one(RawTraceReader(raw), converted, PROFILE, MarkerUnifier())
    merged = tmp / "merged.ute"
    merge_interval_files([converted], merged, PROFILE, frame_bytes=512)
    return merged


class TestRoundTripProperties:
    @given(schedule=schedules())
    @settings(max_examples=25, deadline=None)
    def test_export_import_divergence_free(self, tmp_path_factory, schedule):
        tmp = tmp_path_factory.mktemp("interop-rt")
        merged = build_trace(tmp, schedule)
        for name, export, import_, config in [
            ("chrome", export_chrome_json, import_chrome_json,
             CHROME_ROUNDTRIP_CONFIG),
            ("otf2", export_otf2_text, import_otf2_text,
             OTF2_ROUNDTRIP_CONFIG),
        ]:
            foreign = tmp / f"out.{name}"
            export(merged, foreign, profile=PROFILE)
            back = tmp / f"back.{name}.ute"
            import_(foreign, back, profile=PROFILE)
            report = diff_traces(merged, back, config, profile=PROFILE)
            assert report.identical, (name, report.as_dict())

    @given(schedule=schedules(), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_truncated_otf2_salvage(self, tmp_path_factory, schedule, data):
        """Any line-boundary truncation salvages into a readable file."""
        tmp = tmp_path_factory.mktemp("interop-cut")
        merged = build_trace(tmp, schedule)
        full = tmp / "full.txt"
        export_otf2_text(merged, full, profile=PROFILE)
        lines = full.read_text().splitlines(keepends=True)
        cut = data.draw(st.integers(min_value=0, max_value=len(lines)))
        truncated = tmp / "cut.txt"
        truncated.write_text("".join(lines[:cut]))
        out = tmp / "cut.ute"
        result = import_otf2_text(truncated, out, profile=PROFILE, errors="salvage")
        # The salvaged output is a well-formed, strict-readable file with
        # no more records than the original trace.
        records = read_records(out)
        assert len(records) == result.records_written
        assert len(records) <= len(read_records(merged))


class TestPipelineAndServe:
    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("interop-pingpong")
        raw_dir, ivl_dir = root / "raw", root / "ivl"
        assert cli.main_trace(["pingpong", "-o", str(raw_dir)]) == 0
        raws = sorted(str(p) for p in raw_dir.glob("*.raw"))
        assert cli.main_convert([*raws, "-o", str(ivl_dir)]) == 0
        utes = sorted(
            str(p) for p in ivl_dir.glob("*.ute") if p.name != "profile.ute"
        )
        merged, slog = root / "merged.ute", root / "run.slog"
        assert cli.main_slogmerge(
            [*utes, "-o", str(merged), "--slog", str(slog)]
        ) == 0
        return merged, slog

    def test_oracle_roundtrip_check_zero_findings(self, pipeline):
        merged, slog = pipeline
        for path in (merged, slog):
            report = run_oracle(path, PROFILE, serve=False)
            assert "export_import_roundtrip" in report.checks
            assert report.ok, report.summary()

    def test_serve_export_chrome_chunked(self, pipeline, tmp_path):
        _, slog = pipeline
        with ServerThread(slog, ServerConfig(port=0)) as srv:
            client = ServeClient(srv.base_url)
            first = client.export_chrome()
            assert first.status == 200
            assert first.headers.get("transfer-encoding") == "chunked"
            assert "content-length" not in first.headers
            assert "etag" in first.headers
            doc = first.json()
            assert doc["otherData"]["generator"] == "ute-convert"
            assert any(e.get("ph") == "X" for e in doc["traceEvents"])

            # Revalidation: the dataset-scoped ETag turns a repeat into a 304.
            again = client.export_chrome()
            assert again.status == 304
            assert again.body == first.body

            # The payload itself round-trips against the served trace.
            payload = tmp_path / "served.json"
            payload.write_bytes(first.body)
            back = tmp_path / "served.ute"
            import_chrome_json(payload, back, profile=PROFILE)
            report = diff_traces(slog, back, CHROME_ROUNDTRIP_CONFIG,
                                 profile=PROFILE)
            assert report.identical, report.as_dict()

            # HEAD must not stream a body nor leak the dataset session.
            head = client.request("/api/export/chrome", method="HEAD")
            assert head.status in (200, 304)
            assert head.body == b""
            assert client.preview()["bins"] > 0


class TestSppmAcceptance:
    """The paper's sPPM workload exports to Chrome JSON that parses with
    ``json.load`` and whose ts/dur recover the exact tick values."""

    def test_sppm_export_parses_and_recovers_ticks(self, tmp_path):
        raw_dir, ivl_dir = tmp_path / "raw", tmp_path / "ivl"
        assert cli.main_trace(
            ["sppm", "-o", str(raw_dir), "--iterations", "1"]
        ) == 0
        raws = sorted(str(p) for p in raw_dir.glob("*.raw"))
        assert cli.main_convert([*raws, "-o", str(ivl_dir)]) == 0
        utes = sorted(
            str(p) for p in ivl_dir.glob("*.ute") if p.name != "profile.ute"
        )
        merged = tmp_path / "merged.ute"
        assert cli.main_slogmerge(
            [*utes, "-o", str(merged), "--slog", str(tmp_path / "run.slog")]
        ) == 0

        exported = tmp_path / "sppm.json"
        result = export_chrome_json(merged, exported, profile=PROFILE)
        assert result.records > 0
        with open(exported) as handle:
            doc = json.load(handle)
        tps = doc["otherData"]["ticksPerSec"]
        x = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(x) == result.records
        for event in x:
            assert round(event["ts"] * tps / 1e6) == int(event["args"]["startTicks"])
            assert round(event["dur"] * tps / 1e6) == int(event["args"]["durTicks"])

        back = tmp_path / "back.ute"
        import_chrome_json(exported, back, profile=PROFILE)
        report = diff_traces(merged, back, CHROME_ROUNDTRIP_CONFIG,
                             profile=PROFILE)
        assert report.identical, report.as_dict()
