"""Integration tests: the full Figure 2 pipeline, end to end, with
cross-layer invariants checked on real traced runs."""

import pytest

from repro.core import IntervalReader, standard_profile
from repro.core.records import BeBits, IntervalType
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.utils.slog import SlogFile
from repro.utils.stats import predefined_tables
from repro.viz.arrows import match_arrows
from repro.viz.jumpshot import Jumpshot
from repro.workloads import run_pingpong, run_stencil
from repro.workloads.pingpong import PingPongConfig
from repro.workloads.stencil import StencilConfig

PROFILE = standard_profile()


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Trace -> convert -> merge+SLOG on a ping-pong run."""
    tmp = tmp_path_factory.mktemp("pipeline")
    run = run_pingpong(tmp / "raw", PingPongConfig(repeats=4, sizes=(512, 8192)))
    conv = convert_traces(run.raw_paths, tmp / "ivl", frame_bytes=2048)
    merged = merge_interval_files(
        conv.interval_paths, tmp / "merged.ute", PROFILE,
        slog_path=tmp / "run.slog", frame_bytes=2048,
    )
    return {"run": run, "conv": conv, "merged": merged, "tmp": tmp}


class TestPipelineInvariants:
    def test_merged_order_and_cleanliness(self, pipeline):
        reader = IntervalReader(pipeline["merged"].merged_path, PROFILE)
        records = list(reader.intervals())
        ends = [r.end for r in records]
        assert ends == sorted(ends)
        assert all(r.itype != IntervalType.CLOCKPAIR for r in records)

    def test_every_record_has_thread_entry(self, pipeline):
        reader = IntervalReader(pipeline["merged"].merged_path, PROFILE)
        for record in reader.intervals():
            entry = reader.thread_table.lookup(record.node, record.thread)
            assert entry.node == record.node

    def test_time_conservation_per_thread(self, pipeline):
        """Per thread, the sum of piece durations in the merged file equals
        the sum in the per-node files (after ratio adjustment, to sub-ppm)."""
        merged_reader = IntervalReader(pipeline["merged"].merged_path, PROFILE)
        merged_total = {}
        for r in merged_reader.intervals():
            key = (r.node, r.thread)
            merged_total[key] = merged_total.get(key, 0) + r.duration
        for path, adj in zip(
            pipeline["conv"].interval_paths, pipeline["merged"].adjustments
        ):
            reader = IntervalReader(path, PROFILE)
            for r in reader.intervals():
                if r.itype == IntervalType.CLOCKPAIR:
                    continue
                key = (r.node, r.thread)
                merged_total[key] -= adj.adjust(r.end) - adj.adjust(r.start)
        for key, residue in merged_total.items():
            assert abs(residue) <= 4, (key, residue)

    def test_bebits_balance_in_merged_stream(self, pipeline):
        """Per (node, thread, type): BEGIN and END pieces balance, and no
        CONTINUATION appears outside an open state (ignoring zero-duration
        pseudo lead-ins, which are by design repeats)."""
        reader = IntervalReader(pipeline["merged"].merged_path, PROFILE)
        open_count = {}
        for r in reader.intervals():
            key = (r.node, r.thread, r.itype, r.extra.get("markerId", 0))
            if r.bebits is BeBits.BEGIN:
                assert open_count.get(key, 0) == 0, f"nested same-state begin {key}"
                open_count[key] = 1
            elif r.bebits is BeBits.END:
                assert open_count.get(key, 0) == 1, f"end without begin {key}"
                open_count[key] = 0
            elif r.bebits is BeBits.CONTINUATION and r.duration > 0:
                assert open_count.get(key, 0) == 1, f"orphan continuation {key}"
        assert all(v == 0 for v in open_count.values())

    def test_arrows_match_every_user_message(self, pipeline):
        reader = IntervalReader(pipeline["merged"].merged_path, PROFILE)
        records = list(reader.intervals())
        arrows = match_arrows(records)
        # 4 repeats x 2 sizes x 2 directions = 16 messages.
        assert len(arrows) == 16
        for arrow in arrows:
            assert arrow.recv_time >= arrow.send_time
            assert arrow.src_row != arrow.dst_row

    def test_slog_agrees_with_merged_file(self, pipeline):
        reader = IntervalReader(pipeline["merged"].merged_path, PROFILE)
        slog = SlogFile(pipeline["merged"].slog_path)
        merged_records = list(reader.intervals())
        slog_real = [
            r for r in slog.records()
            if not (r.duration == 0 and r.bebits is BeBits.CONTINUATION)
        ]
        # Compare multisets of (type, start, duration, node, thread).
        sig = lambda rs: sorted(
            (r.itype, r.start, r.duration, r.node, r.thread) for r in rs
        )
        # Merged file contains its own pseudo-intervals too; strip the same way.
        merged_real = [
            r for r in merged_records
            if not (r.duration == 0 and r.bebits is BeBits.CONTINUATION)
        ]
        assert sig(slog_real) == sig(merged_real)

    def test_stats_over_pipeline(self, pipeline):
        reader = IntervalReader(pipeline["merged"].merged_path, PROFILE)
        records = list(reader.intervals())
        total_s = reader.totals()[2] / 1e9
        tables = predefined_tables(records, total_seconds=total_s)
        bytes_table = next(t for t in tables if t.name == "bytes_by_node")
        # 4 repeats x (512 + 8192) bytes sent per node.
        expected = 4 * (512 + 8192)
        for (node,), (sent, count) in bytes_table.rows.items():
            assert sent == expected
            assert count == 8

    def test_jumpshot_views_render(self, pipeline, tmp_path):
        viewer = Jumpshot(pipeline["merged"].slog_path)
        for kind in ("thread", "processor", "thread-connected"):
            path = viewer.render_whole_run(tmp_path / f"{kind}.svg", kind=kind)
            assert path.stat().st_size > 500


class TestCliPipeline:
    def test_full_cli_flow(self, tmp_path, capsys, monkeypatch):
        """Drive the whole pipeline through the CLI entry points."""
        from repro import cli

        monkeypatch.chdir(tmp_path)
        assert cli.main_trace(["pingpong", "-o", "raw"]) == 0
        raw = [line for line in capsys.readouterr().out.splitlines() if line]
        assert len(raw) == 2

        assert cli.main_convert([*raw, "-o", "ivl"]) == 0
        intervals = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(intervals) == 2

        assert cli.main_slogmerge([*intervals, "-o", "merged.ute", "--slog", "run.slog"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].endswith("merged.ute")
        assert out[1].endswith("run.slog")

        assert cli.main_stats(["merged.ute", "-o", "stats", "--svg"]) == 0
        stats_out = capsys.readouterr().out
        assert "interesting_by_node_bin.tsv" in stats_out

        assert cli.main_preview(["run.slog", "-o", "preview.svg"]) == 0
        capsys.readouterr()

        assert cli.main_view(["run.slog", "--kind", "thread", "-o", "view.svg"]) == 0
        capsys.readouterr()
        assert (tmp_path / "view.svg").exists()

        assert cli.main_view(["run.slog", "--ansi"]) == 0
        ansi = capsys.readouterr().out
        assert "Thread-activity view" in ansi

    def test_cli_merge_thread_selection(self, tmp_path, capsys, monkeypatch):
        from repro import cli

        monkeypatch.chdir(tmp_path)
        cli.main_trace(["stencil", "-o", "raw"])
        raw = [l for l in capsys.readouterr().out.splitlines() if l]
        cli.main_convert([*raw, "-o", "ivl"])
        intervals = [l for l in capsys.readouterr().out.splitlines() if l]
        assert cli.main_merge([*intervals, "-o", "mpi.ute", "--threads", "mpi"]) == 0
        capsys.readouterr()
        reader = IntervalReader(tmp_path / "mpi.ute", PROFILE)
        assert all(e.thread_type == 0 for e in reader.thread_table)

    def test_cli_view_frame_at(self, tmp_path, capsys, monkeypatch):
        from repro import cli

        monkeypatch.chdir(tmp_path)
        cli.main_trace(["flash", "--iterations", "10", "-o", "raw"])
        raw = [l for l in capsys.readouterr().out.splitlines() if l]
        cli.main_convert([*raw, "-o", "ivl"])
        intervals = [l for l in capsys.readouterr().out.splitlines() if l]
        cli.main_slogmerge([*intervals, "-o", "m.ute", "--slog", "r.slog"])
        capsys.readouterr()
        slog = SlogFile(tmp_path / "r.slog")
        mid = slog.time_range[1] / 2 / slog.ticks_per_sec
        assert cli.main_view(["r.slog", "--at", str(mid), "-o", "frame.svg"]) == 0
        assert (tmp_path / "frame.svg").exists()
