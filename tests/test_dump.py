"""Tests for the dump utility and the type-activity view."""

import pytest

from repro.core import standard_profile
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.errors import FormatError
from repro.utils.dump import dump_any, dump_interval, dump_raw, dump_slog, format_record
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.workloads import run_pingpong

PROFILE = standard_profile()


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("dump")
    run = run_pingpong(tmp / "raw")
    conv = convert_traces(run.raw_paths, tmp / "ivl")
    merged = merge_interval_files(
        conv.interval_paths, tmp / "m.ute", PROFILE, slog_path=tmp / "r.slog"
    )
    return {
        "raw": run.raw_paths[0],
        "interval": conv.interval_paths[0],
        "merged": merged.merged_path,
        "slog": merged.slog_path,
    }


class TestDumpRaw:
    def test_header_and_events(self, artifacts):
        lines = list(dump_raw(artifacts["raw"]))
        assert lines[0].startswith("# raw trace node=0")
        assert any("MPI_Send:begin" in l for l in lines)
        assert any("DISPATCH" in l for l in lines)

    def test_limit(self, artifacts):
        lines = list(dump_raw(artifacts["raw"], limit=5))
        assert len(lines) == 7  # header + 5 + truncation marker
        assert lines[-1].startswith("# ... truncated")


class TestDumpInterval:
    def test_tables_and_records(self, artifacts):
        lines = list(dump_interval(artifacts["interval"], PROFILE))
        text = "\n".join(lines)
        assert "# interval file profile=" in text
        assert "# threads (" in text
        assert "# markers (" in text
        assert "pingpong:size-sweep" in text
        assert "MPI_Recv" in text
        assert "n0 cpu" in text

    def test_profile_names_every_type(self, artifacts):
        """No line falls back to the unnamed 'typeN' form — the profile
        describes everything (the self-defining claim)."""
        lines = list(dump_interval(artifacts["merged"], PROFILE))
        assert not any(" type1 " in l or " type9 " in l for l in lines)


class TestDumpSlog:
    def test_frame_index_listed(self, artifacts):
        lines = list(dump_slog(artifacts["slog"]))
        assert lines[0].startswith("# SLOG frames=")
        assert any(l.startswith("# frame 0:") for l in lines)

    def test_limit(self, artifacts):
        lines = list(dump_slog(artifacts["slog"], limit=3))
        records = [l for l in lines if not l.startswith("#")]
        assert len(records) == 3


class TestDumpAny:
    @pytest.mark.parametrize("kind", ["raw", "interval", "slog"])
    def test_dispatch_by_magic(self, artifacts, kind):
        lines = list(dump_any(artifacts[kind], PROFILE, limit=2))
        assert lines

    def test_unknown_magic_rejected(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"GARBAGE!" * 4)
        with pytest.raises(FormatError, match="unrecognized magic"):
            list(dump_any(path, PROFILE))

    def test_cli(self, artifacts, capsys):
        from repro import cli

        assert cli.main_dump([str(artifacts["interval"]), "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "# interval file" in out


def test_format_record_unknown_type_falls_back():
    record = IntervalRecord(999, BeBits.COMPLETE, 0, 10, 0, 0, 0)
    assert "type999" in format_record(record, PROFILE)


class TestTypeActivityView:
    def test_one_row_per_type(self, artifacts):
        from repro.viz.jumpshot import Jumpshot

        viewer = Jumpshot(artifacts["slog"])
        view = viewer.build_view(viewer.slog.records(), "type")
        labels = {row.label for row in view.rows}
        assert "MPI_Send" in labels
        assert "MPI_Recv" in labels
        assert "pingpong:size-sweep" in labels
        # Bars are colored by thread.
        all_keys = {b.key for row in view.rows for b in row.bars}
        assert all(k[0] == "thread" for k in all_keys)

    def test_renders(self, artifacts, tmp_path):
        from repro.viz.jumpshot import Jumpshot

        viewer = Jumpshot(artifacts["slog"])
        path = viewer.render_whole_run(tmp_path / "type.svg", kind="type")
        assert "Type-activity view" in path.read_text()
