"""Byte-source backends: clamped fetches, accounting, chunk caching, and
the open_source factory."""

import pytest

from repro.core.bytesource import (
    FileSource,
    MemorySource,
    MmapSource,
    SOURCE_MODES,
    open_source,
)
from repro.errors import FormatError

DATA = bytes(range(256)) * 5  # 1280 bytes, every value present


@pytest.fixture
def blob_path(tmp_path):
    path = tmp_path / "blob.bin"
    path.write_bytes(DATA)
    return path


def make_source(kind, path):
    if kind == "memory":
        return MemorySource(path.read_bytes())
    if kind == "mmap":
        return MmapSource(path)
    return FileSource(path, chunk_bytes=128)


@pytest.mark.parametrize("kind", ["memory", "mmap", "file"])
class TestFetch:
    def test_exact_range(self, blob_path, kind):
        with make_source(kind, blob_path) as src:
            assert len(src) == len(DATA)
            assert src.fetch(100, 50) == DATA[100:150]
            assert src.fetch(0, len(DATA)) == DATA

    def test_clamped_at_eof(self, blob_path, kind):
        with make_source(kind, blob_path) as src:
            assert src.fetch(len(DATA) - 10, 100) == DATA[-10:]
            assert src.fetch(len(DATA), 10) == b""
            assert src.fetch(len(DATA) + 5, 10) == b""

    def test_degenerate_requests(self, blob_path, kind):
        with make_source(kind, blob_path) as src:
            assert src.fetch(-5, 10) == b""
            assert src.fetch(10, 0) == b""
            assert src.fetch(10, -1) == b""

    def test_oversized_request_capped_at_file_size(self, blob_path, kind):
        """A corrupt header announcing an absurd size cannot allocate more
        than the file actually holds."""
        with make_source(kind, blob_path) as src:
            blob = src.fetch(0, 10**9)
            assert blob == DATA
            assert src.bytes_fetched == len(DATA)

    def test_accounting(self, blob_path, kind):
        with make_source(kind, blob_path) as src:
            src.fetch(0, 100)
            src.fetch(200, 50)
            src.fetch(len(DATA), 10)  # empty result: not a fetch
            assert src.fetch_count == 2
            assert src.bytes_fetched == 150
            src.reset_accounting()
            assert src.fetch_count == 0
            assert src.bytes_fetched == 0

    def test_stats_dict(self, blob_path, kind):
        """stats() exposes the accounting under the unified key names the
        reader/SLOG layers and the serving daemon's /metrics build on."""
        with make_source(kind, blob_path) as src:
            src.fetch(0, 100)
            assert src.stats() == {"fetch_count": 1, "bytes_fetched": 100}


@pytest.mark.parametrize("kind", ["mmap", "file"])
def test_fetch_after_close_is_empty(blob_path, kind):
    """Closing zeroes the extent, so fetches clamp to empty instead of
    touching the released handle."""
    src = make_source(kind, blob_path)
    src.close()
    assert src.fetch(0, 10) == b""
    src.close()  # idempotent


def test_mmap_source_empty_file(tmp_path):
    path = tmp_path / "empty.bin"
    path.write_bytes(b"")
    with MmapSource(path) as src:
        assert len(src) == 0
        assert src.fetch(0, 10) == b""


class TestFileSourceChunking:
    def test_fetches_across_chunk_boundaries(self, blob_path):
        with FileSource(blob_path, chunk_bytes=64) as src:
            # Walk the whole file in reads that straddle chunk edges.
            out = b"".join(src.fetch(off, 37) for off in range(0, len(DATA), 37))
            assert out == DATA

    def test_large_fetch_bypasses_chunk(self, blob_path):
        with FileSource(blob_path, chunk_bytes=64) as src:
            assert src.fetch(0, 1000) == DATA[:1000]
            # And small reads still work afterwards.
            assert src.fetch(5, 10) == DATA[5:15]

    def test_backward_seek(self, blob_path):
        with FileSource(blob_path, chunk_bytes=64) as src:
            assert src.fetch(1000, 16) == DATA[1000:1016]
            assert src.fetch(3, 16) == DATA[3:19]

    def test_tiny_chunk_rejected(self, blob_path):
        with pytest.raises(FormatError):
            FileSource(blob_path, chunk_bytes=16)


class TestOpenSource:
    def test_modes(self, blob_path):
        assert isinstance(open_source(blob_path, "memory"), MemorySource)
        assert isinstance(open_source(blob_path, "file"), FileSource)
        assert isinstance(open_source(blob_path, "mmap"), MmapSource)
        auto = open_source(blob_path, "auto")
        assert isinstance(auto, (MmapSource, FileSource))
        auto.close()

    def test_unknown_mode_rejected(self, blob_path):
        with pytest.raises(FormatError):
            open_source(blob_path, "network")

    def test_all_advertised_modes_work(self, blob_path):
        for mode in SOURCE_MODES:
            src = open_source(blob_path, mode)
            assert src.fetch(0, 4) == DATA[:4]
            src.close()
