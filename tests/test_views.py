"""Tests for the time-space diagrams, arrows, and renderers."""

import pytest

from repro.core import standard_profile
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.viz.ansi import render_view_ansi
from repro.viz.arrows import match_arrows
from repro.viz.colors import OTHER_COLOR, RUNNING_COLOR, STATE_PALETTE, ColorMap
from repro.viz.views import (
    processor_activity_view,
    processor_thread_view,
    render_view_svg,
    thread_activity_view,
    thread_processor_view,
)

PROFILE = standard_profile()
SEND = IntervalType.for_mpi_fn(0)
RECV = IntervalType.for_mpi_fn(1)


def rec(itype=IntervalType.RUNNING, bebits=BeBits.COMPLETE, start=0, dura=100,
        node=0, cpu=0, thread=0, **extra):
    return IntervalRecord(itype, bebits, start, dura, node, cpu, thread, extra)


def table(entries=None):
    return ThreadTable(
        entries
        or [
            ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0"),
            ThreadEntry(-1, 100, 5001, 0, 1, 1, "worker"),
            ThreadEntry(1, 101, 5002, 1, 0, 0, "rank-1"),
        ]
    )


class TestThreadActivityView:
    def test_rows_per_thread_from_table(self):
        view = thread_activity_view([rec()], table(), PROFILE.record_name)
        # All known threads get rows, even without records.
        assert len(view.rows) == 3
        assert view.rows[0].row_key == (0, 0)

    def test_piece_view_one_bar_per_record(self):
        records = [
            rec(itype=RECV, bebits=BeBits.BEGIN, start=0, dura=50),
            rec(itype=RECV, bebits=BeBits.CONTINUATION, start=100, dura=50),
            rec(itype=RECV, bebits=BeBits.END, start=200, dura=50),
        ]
        view = thread_activity_view(records, table(), PROFILE.record_name)
        bars = view.rows[0].bars
        assert len(bars) == 3
        assert [(b.start, b.end) for b in bars] == [(0, 50), (100, 150), (200, 250)]

    def test_connected_view_unifies_pieces(self):
        records = [
            rec(itype=RECV, bebits=BeBits.BEGIN, start=0, dura=50),
            rec(itype=RECV, bebits=BeBits.CONTINUATION, start=100, dura=50),
            rec(itype=RECV, bebits=BeBits.END, start=200, dura=50),
        ]
        view = thread_activity_view(
            records, table(), PROFILE.record_name, connected=True
        )
        bars = view.rows[0].bars
        assert len(bars) == 1
        assert (bars[0].start, bars[0].end) == (0, 250)

    def test_connected_view_window_with_pseudo_continuation(self):
        """A window starting mid-state: the zero-duration pseudo interval
        opens the state, so the bar still appears (section 3.3)."""
        records = [
            rec(itype=IntervalType.MARKER, bebits=BeBits.CONTINUATION,
                start=1000, dura=0, markerId=1),
            rec(start=1000, dura=500),
            rec(itype=IntervalType.MARKER, bebits=BeBits.END,
                start=1600, dura=100, markerId=1),
        ]
        view = thread_activity_view(
            records, table(), PROFILE.record_name, {1: "phase"}, connected=True
        )
        marker_bars = [b for b in view.rows[0].bars if b.key == ("marker", 1)]
        assert len(marker_bars) == 1
        assert marker_bars[0].start == 1000
        assert marker_bars[0].end == 1700

    def test_nested_states_get_depth(self):
        records = [
            rec(itype=IntervalType.MARKER, bebits=BeBits.BEGIN, start=0, dura=100,
                markerId=1),
            rec(itype=SEND, bebits=BeBits.COMPLETE, start=100, dura=100,
                msgSizeSent=8, seqno=1),
            rec(itype=IntervalType.MARKER, bebits=BeBits.END, start=200, dura=100,
                markerId=1),
        ]
        view = thread_activity_view(
            records, table(), PROFILE.record_name, {1: "outer"}, connected=True
        )
        bars = {b.key: b for b in view.rows[0].bars}
        assert bars[("marker", 1)].depth == 0
        assert bars[SEND].depth == 1

    def test_marker_names_resolved(self):
        records = [
            rec(itype=IntervalType.MARKER, start=0, dura=10, markerId=3),
        ]
        view = thread_activity_view(
            records, table(), PROFILE.record_name, {3: "Initial Phase"}
        )
        assert view.key_names[("marker", 3)] == "Initial Phase"


class TestProcessorViews:
    def test_all_cpus_get_rows(self):
        view = processor_activity_view(
            [rec(cpu=0)], {0: 4}, PROFILE.record_name
        )
        assert len(view.rows) == 4
        assert [r.row_key for r in view.rows] == [(0, c) for c in range(4)]

    def test_activity_lands_on_correct_cpu(self):
        records = [rec(cpu=2, start=0, dura=10), rec(cpu=0, start=20, dura=10)]
        view = processor_activity_view(records, {0: 4}, PROFILE.record_name)
        by_cpu = {row.row_key[1]: row.bars for row in view.rows}
        assert len(by_cpu[2]) == 1 and len(by_cpu[0]) == 1
        assert not by_cpu[1] and not by_cpu[3]

    def test_thread_processor_view_colors_by_cpu(self):
        records = [
            rec(start=0, dura=10, cpu=0),
            rec(start=20, dura=10, cpu=3),
        ]
        view = thread_processor_view(records, table())
        keys = {b.key for b in view.rows[0].bars}
        assert keys == {("cpu", 0, 0), ("cpu", 0, 3)}

    def test_processor_thread_view_colors_by_thread(self):
        records = [
            rec(thread=0, cpu=1, start=0, dura=10),
            rec(thread=1, cpu=1, start=20, dura=10),
        ]
        view = processor_thread_view(records, {0: 2}, table())
        row = next(r for r in view.rows if r.row_key == (0, 1))
        assert {b.key for b in row.bars} == {("thread", 0, 0), ("thread", 0, 1)}


class TestArrows:
    def send_recv_records(self):
        return [
            rec(itype=SEND, node=0, thread=0, start=100, dura=50,
                msgSizeSent=4096, seqno=7),
            rec(itype=RECV, node=1, thread=0, start=120, dura=200,
                msgSizeRecv=4096, seqno=7),
        ]

    def test_matched_arrow(self):
        (arrow,) = match_arrows(self.send_recv_records())
        assert arrow.seqno == 7
        assert arrow.src_row == (0, 0)
        assert arrow.dst_row == (1, 0)
        assert arrow.send_time == 100
        assert arrow.recv_time == 320
        assert arrow.size == 4096

    def test_unmatched_send_dropped(self):
        records = self.send_recv_records()[:1]
        assert match_arrows(records) == []

    def test_split_recv_uses_last_piece_end(self):
        records = [
            rec(itype=SEND, node=0, start=0, dura=10, msgSizeSent=64, seqno=3),
            rec(itype=RECV, node=1, bebits=BeBits.BEGIN, start=5, dura=10,
                msgSizeRecv=64, seqno=3),
            rec(itype=RECV, node=1, bebits=BeBits.END, start=50, dura=10,
                msgSizeRecv=64, seqno=3),
        ]
        (arrow,) = match_arrows(records)
        assert arrow.recv_time == 60

    def test_non_mpi_records_ignored(self):
        assert match_arrows([rec(markerId=1)]) == []

    def test_waitall_seqnos_vector_matches_many(self):
        """A waitall completing several receives yields one arrow per
        matched sequence number, all ending at the waitall's end."""
        waitall = IntervalType.for_mpi_fn(5)
        records = [
            rec(itype=SEND, node=0, start=0, dura=5, msgSizeSent=10, seqno=1),
            rec(itype=SEND, node=0, start=10, dura=5, msgSizeSent=20, seqno=2),
            rec(itype=waitall, node=1, start=30, dura=100, seqnos=[1, 2]),
        ]
        arrows = match_arrows(records)
        assert len(arrows) == 2
        assert all(a.recv_time == 130 for a in arrows)
        assert {a.size for a in arrows} == {10, 20}


class TestColorMap:
    def test_running_always_recessive(self):
        cmap = ColorMap()
        assert cmap.register(IntervalType.RUNNING) == RUNNING_COLOR
        assert cmap.register("Running") == RUNNING_COLOR

    def test_fixed_order_assignment(self):
        cmap = ColorMap()
        colors = [cmap.register(f"state-{i}") for i in range(8)]
        assert colors == list(STATE_PALETTE)
        # Re-registering returns the same color (stable identity).
        assert cmap.register("state-3") == STATE_PALETTE[3]

    def test_ninth_entity_folds_to_other(self):
        cmap = ColorMap()
        for i in range(8):
            cmap.register(f"state-{i}")
        assert cmap.register("state-8") == OTHER_COLOR
        assert cmap.is_folded("state-8")
        assert not cmap.is_folded("state-0")


class TestRenderers:
    def sample_view(self):
        records = [
            rec(start=0, dura=100),
            rec(itype=SEND, start=100, dura=50, msgSizeSent=10, seqno=1),
        ]
        return thread_activity_view(records, table(), PROFILE.record_name)

    def test_svg_written_and_wellformed(self, tmp_path):
        import xml.etree.ElementTree as ET

        path = render_view_svg(self.sample_view(), tmp_path / "v.svg")
        tree = ET.parse(path)
        assert tree.getroot().tag.endswith("svg")
        body = path.read_text()
        assert "MPI_Send" in body  # legend entry

    def test_svg_window_clips(self, tmp_path):
        path = render_view_svg(
            self.sample_view(), tmp_path / "w.svg", window=(0, 50)
        )
        assert path.exists()

    def test_ansi_renders_rows_and_legend(self):
        text = render_view_ansi(self.sample_view(), columns=40)
        lines = text.splitlines()
        assert lines[0] == "Thread-activity view"
        assert len([l for l in lines if "|" in l]) == 3  # three thread rows
        assert "legend:" in lines[-1]
        assert "MPI_Send" in lines[-1]

    def test_ansi_color_mode(self):
        text = render_view_ansi(self.sample_view(), columns=20, color=True)
        assert "\x1b[" in text
