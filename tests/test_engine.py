"""Unit tests for the discrete-event engine."""

import pytest

from repro.cluster.engine import Engine, Future, ns_to_seconds, seconds_to_ns
from repro.errors import SimulationError


def test_events_fire_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(50, order.append, "c")
    eng.schedule(10, order.append, "a")
    eng.schedule(30, order.append, "b")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 50


def test_same_time_events_fire_in_schedule_order():
    eng = Engine()
    order = []
    for label in "abcde":
        eng.schedule(7, order.append, label)
    eng.run()
    assert order == list("abcde")


def test_schedule_at_absolute_time():
    eng = Engine()
    seen = []
    eng.schedule_at(100, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [100]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)


def test_cancelled_event_does_not_fire():
    eng = Engine()
    seen = []
    handle = eng.schedule(10, seen.append, "x")
    eng.schedule(5, seen.append, "y")
    handle.cancel()
    eng.run()
    assert seen == ["y"]


def test_run_until_stops_and_advances_clock():
    eng = Engine()
    seen = []
    eng.schedule(10, seen.append, "a")
    eng.schedule(100, seen.append, "b")
    eng.run(until_ns=50)
    assert seen == ["a"]
    assert eng.now == 50
    eng.run()
    assert seen == ["a", "b"]


def test_run_until_advances_clock_even_with_empty_queue():
    eng = Engine()
    eng.run(until_ns=1234)
    assert eng.now == 1234


def test_max_events_limit():
    eng = Engine()
    seen = []
    for i in range(10):
        eng.schedule(i + 1, seen.append, i)
    eng.run(max_events=3)
    assert seen == [0, 1, 2]


def test_events_scheduled_during_run_fire():
    eng = Engine()
    seen = []

    def first():
        eng.schedule(5, seen.append, "second")

    eng.schedule(1, first)
    eng.run()
    assert seen == ["second"]
    assert eng.now == 6


def test_daemon_events_do_not_keep_engine_alive():
    eng = Engine()
    ticks = []

    def tick():
        ticks.append(eng.now)
        eng.schedule(10, tick, daemon=True)

    eng.schedule(0, tick, daemon=True)
    eng.schedule(35, lambda: None)  # the only non-daemon work
    eng.run()
    # Daemon ticks fire while real work is pending, then the engine stops.
    assert ticks == [0, 10, 20, 30]
    assert eng.now == 35


def test_daemon_only_queue_does_not_run():
    eng = Engine()
    seen = []
    eng.schedule(5, seen.append, "d", daemon=True)
    assert eng.run() == 0
    assert seen == []


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


def test_run_not_reentrant():
    eng = Engine()

    def reenter():
        eng.run()

    eng.schedule(1, reenter)
    with pytest.raises(SimulationError):
        eng.run()


def test_seconds_conversion_roundtrip():
    assert seconds_to_ns(1.5) == 1_500_000_000
    assert ns_to_seconds(2_000_000_000) == 2.0
    assert seconds_to_ns(ns_to_seconds(123456789)) == 123456789


class TestFuture:
    def test_set_result_and_value(self):
        fut = Future()
        assert not fut.done
        fut.set_result(7)
        assert fut.done
        assert fut.value == 7

    def test_value_before_resolution_raises(self):
        with pytest.raises(SimulationError):
            Future().value

    def test_double_resolution_rejected(self):
        fut = Future()
        fut.set_result(1)
        with pytest.raises(SimulationError):
            fut.set_result(2)

    def test_callback_after_resolution_fires_immediately(self):
        fut = Future()
        fut.set_result("v")
        seen = []
        fut.add_callback(lambda f: seen.append(f.value))
        assert seen == ["v"]

    def test_callbacks_fire_in_registration_order(self):
        fut = Future()
        seen = []
        fut.add_callback(lambda f: seen.append(1))
        fut.add_callback(lambda f: seen.append(2))
        fut.set_result(None)
        assert seen == [1, 2]
