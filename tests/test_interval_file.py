"""Tests for interval file writer/reader: frames, directories, thread table,
markers, and the Figure-5 simple API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IntervalFileWriter,
    IntervalReader,
    get_interval,
    get_item_by_name,
    read_frame_dir,
    read_header,
    read_profile,
    standard_profile,
)
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.frames import NO_DIRECTORY
from repro.core.reader import get_marker_string
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.errors import FormatError, ProfileMismatchError

PROFILE = standard_profile()
MASK = MASK_ALL_PER_NODE


def simple_table():
    return ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0")])


def running(start, dura, thread=0, bebits=BeBits.COMPLETE):
    return IntervalRecord(IntervalType.RUNNING, bebits, start, dura, 0, 0, thread)


def write_file(path, records, **kwargs):
    kwargs.setdefault("field_mask", MASK)
    kwargs.setdefault("frame_bytes", 256)
    kwargs.setdefault("frames_per_dir", 3)
    with IntervalFileWriter(path, PROFILE, simple_table(), **kwargs) as w:
        for rec in records:
            w.write(rec)
    return path


class TestRoundTrip:
    def test_records_roundtrip_in_order(self, tmp_path):
        records = [running(i * 10, 5) for i in range(100)]
        path = write_file(tmp_path / "f.ute", records)
        back = list(IntervalReader(path, PROFILE).intervals())
        assert [(r.start, r.duration) for r in back] == [(i * 10, 5) for i in range(100)]

    def test_empty_file_valid(self, tmp_path):
        path = write_file(tmp_path / "empty.ute", [])
        reader = IntervalReader(path, PROFILE)
        assert list(reader.intervals()) == []
        assert reader.totals() == (0, 0, 0)

    def test_thread_table_roundtrip(self, tmp_path):
        table = ThreadTable(
            [
                ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0"),
                ThreadEntry(-1, 100, 5001, 0, 1, 1, "worker"),
                ThreadEntry(-1, 1, 2, 0, 2, 2, "kproc"),
            ]
        )
        path = tmp_path / "t.ute"
        with IntervalFileWriter(path, PROFILE, table, field_mask=MASK) as w:
            w.write(running(0, 1))
        reader = IntervalReader(path, PROFILE)
        assert len(reader.thread_table) == 3
        assert reader.thread_table.lookup(0, 1).name == "worker"
        assert reader.thread_table.lookup(0, 2).thread_type == 2
        assert reader.thread_table.lookup(0, 0).mpi_task == 0

    def test_marker_table_roundtrip(self, tmp_path):
        path = tmp_path / "m.ute"
        with IntervalFileWriter(
            path, PROFILE, simple_table(), field_mask=MASK,
            markers={1: "Initial Phase", 2: "Main Loop"},
        ) as w:
            w.write(running(0, 1))
        reader = IntervalReader(path, PROFILE)
        assert reader.markers == {1: "Initial Phase", 2: "Main Loop"}

    @given(
        durations=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=60)
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, tmp_path_factory, durations):
        # Build end-time-ordered records from cumulative durations.
        t = 0
        records = []
        for d in durations:
            records.append(running(t, d))
            t += d
        path = write_file(tmp_path_factory.mktemp("ivl") / "p.ute", records)
        back = list(IntervalReader(path, PROFILE).intervals())
        assert [(r.start, r.duration) for r in back] == [
            (r.start, r.duration) for r in records
        ]


class TestOrderingInvariant:
    def test_out_of_order_write_rejected(self, tmp_path):
        with IntervalFileWriter(
            tmp_path / "o.ute", PROFILE, simple_table(), field_mask=MASK
        ) as w:
            w.write(running(100, 50))
            with pytest.raises(FormatError, match="end-time order"):
                w.write(running(0, 10))

    def test_equal_end_times_allowed(self, tmp_path):
        with IntervalFileWriter(
            tmp_path / "e.ute", PROFILE, simple_table(), field_mask=MASK
        ) as w:
            w.write(running(0, 100))
            w.write(running(50, 50))  # same end
            w.write(running(90, 10))


class TestFramesAndDirectories:
    def test_multiple_directories_linked(self, tmp_path):
        records = [running(i * 10, 5) for i in range(300)]
        path = write_file(tmp_path / "d.ute", records, frame_bytes=256, frames_per_dir=2)
        reader = IntervalReader(path, PROFILE)
        dirs = list(reader.directories())
        assert len(dirs) > 2
        # Doubly linked: next/prev pointers are consistent.
        assert dirs[0].prev_offset == NO_DIRECTORY
        assert dirs[-1].next_offset == NO_DIRECTORY
        for a, b in zip(dirs, dirs[1:]):
            assert a.next_offset == b.offset
            assert b.prev_offset == a.offset

    def test_directory_chain_parsed_once(self, tmp_path):
        records = [running(i * 10, 5) for i in range(300)]
        path = write_file(tmp_path / "dc.ute", records, frame_bytes=256, frames_per_dir=2)
        reader = IntervalReader(path, PROFILE)
        first = list(reader.directories())
        second = list(reader.directories())
        # The strict chain is cached after one complete walk — random access
        # (find_frame) must not re-decode every directory per lookup.
        assert [id(d) for d in first] == [id(d) for d in second]
        # An abandoned walk must not freeze a partial chain.
        fresh = IntervalReader(path, PROFILE)
        next(fresh.directories())
        assert len(list(fresh.directories())) == len(first)

    def test_frame_entries_describe_their_frames(self, tmp_path):
        records = [running(i * 10, 5) for i in range(200)]
        path = write_file(tmp_path / "fe.ute", records)
        reader = IntervalReader(path, PROFILE)
        total = 0
        for frame in reader.frames():
            recs = reader.read_frame(frame)
            assert len(recs) == frame.n_records
            assert min(r.start for r in recs) == frame.start_time
            assert max(r.end for r in recs) == frame.end_time
            total += len(recs)
        assert total == 200

    def test_find_frame_locates_time(self, tmp_path):
        records = [running(i * 10, 5) for i in range(500)]
        path = write_file(tmp_path / "ff.ute", records)
        reader = IntervalReader(path, PROFILE)
        for t in (0, 1234, 2501, 4985):
            frame = reader.find_frame(t)
            assert frame is not None
            assert frame.contains_time(t)
        assert reader.find_frame(10**9) is None

    def test_intervals_between_uses_window(self, tmp_path):
        records = [running(i * 10, 5) for i in range(500)]
        path = write_file(tmp_path / "w.ute", records)
        reader = IntervalReader(path, PROFILE)
        window = list(reader.intervals_between(1000, 1100))
        assert window
        assert all(r.end >= 1000 and r.start <= 1100 for r in window)
        # Every overlapping record is found.
        expected = [r for r in records if r.end >= 1000 and r.start <= 1100]
        assert len(window) == len(expected)

    def test_totals_from_directories_only(self, tmp_path):
        records = [running(i * 10, 7) for i in range(123)]
        path = write_file(tmp_path / "tot.ute", records)
        count, first, last = IntervalReader(path, PROFILE).totals()
        assert count == 123
        assert first == 0
        assert last == 122 * 10 + 7

    def test_frame_boundary_forces_split(self, tmp_path):
        path = tmp_path / "fb.ute"
        with IntervalFileWriter(
            path, PROFILE, simple_table(), field_mask=MASK, frame_bytes=10**6
        ) as w:
            w.write(running(0, 5))
            w.frame_boundary()
            w.write(running(10, 5))
        reader = IntervalReader(path, PROFILE)
        assert len(list(reader.frames())) == 2


class TestProfileChecking:
    def test_wrong_profile_rejected(self, tmp_path):
        path = write_file(tmp_path / "pm.ute", [running(0, 1)])
        from repro.core.profilefmt import Profile

        other = Profile(["Other"], ["rectype"], {})
        with pytest.raises(ProfileMismatchError):
            IntervalReader(path, other)

    def test_reader_without_profile_reads_structure_only(self, tmp_path):
        path = write_file(tmp_path / "np.ute", [running(0, 1)])
        reader = IntervalReader(path)
        assert reader.totals()[0] == 1
        with pytest.raises(FormatError, match="requires a profile"):
            list(reader.intervals())


class TestSimpleApi:
    """The Figure 5 program, line for line."""

    def test_total_bytes_sent(self, tmp_path):
        send_type = IntervalType.for_mpi_fn(0)
        records = []
        for i in range(40):
            records.append(
                IntervalRecord(
                    send_type, BeBits.COMPLETE, i * 100, 50, 0, 0, 0,
                    extra={"peer": 1, "tag": 0, "msgSizeSent": 1024, "seqno": i + 1},
                )
            )
            records.append(running(i * 100 + 50, 50))
        path = write_file(tmp_path / "api.ute", records)
        profile_path = PROFILE.write(tmp_path / "profile.ute")

        handle, header = read_header(path)
        framedir = read_frame_dir(handle)
        assert framedir.n_frames >= 1
        table = read_profile(profile_path, header.field_mask)
        total = 0
        count = 0
        while (raw := get_interval(handle)) is not None:
            count += 1
            value = get_item_by_name(table, raw, "msgSizeSent")
            if value is not None:
                total += value
        assert count == 80
        assert total == 40 * 1024

    def test_get_item_missing_field_returns_none(self, tmp_path):
        path = write_file(tmp_path / "mf.ute", [running(0, 1)])
        profile_path = PROFILE.write(tmp_path / "profile.ute")
        handle, header = read_header(path)
        table = read_profile(profile_path, header.field_mask)
        raw = get_interval(handle)
        assert get_item_by_name(table, raw, "msgSizeSent") is None
        assert get_item_by_name(table, raw, "start") == 0

    def test_get_marker_string(self, tmp_path):
        path = tmp_path / "ms.ute"
        with IntervalFileWriter(
            path, PROFILE, simple_table(), field_mask=MASK, markers={7: "Loop"}
        ) as w:
            w.write(running(0, 1))
        handle, _ = read_header(path)
        assert get_marker_string(handle, 7) == "Loop"
        with pytest.raises(FormatError):
            get_marker_string(handle, 8)


class TestThreadTableLimits:
    def test_512_thread_limit_enforced(self):
        table = ThreadTable()
        with pytest.raises(FormatError, match="512"):
            table.add(ThreadEntry(0, 1, 1, 0, 512, 0))

    def test_duplicate_entry_rejected(self):
        table = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0)])
        with pytest.raises(FormatError, match="duplicate"):
            table.add(ThreadEntry(1, 2, 2, 0, 0, 1))

    def test_merged_with_combines_nodes(self):
        a = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0)])
        b = ThreadTable([ThreadEntry(1, 2, 2, 1, 0, 0)])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.lookup(1, 0).mpi_task == 1

    def test_of_type_partitions(self):
        table = ThreadTable(
            [
                ThreadEntry(0, 1, 1, 0, 0, 0),
                ThreadEntry(-1, 1, 2, 0, 1, 1),
                ThreadEntry(-1, 1, 3, 0, 2, 2),
            ]
        )
        assert len(table.of_type(0)) == 1
        assert len(table.of_type(1)) == 1
        assert len(table.of_type(2)) == 1
