"""Tests for field description words and value packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fields import ATTRS, DataType, FieldSpec, MASK_ALL_MERGED, MASK_CORE
from repro.errors import FormatError


class TestDescriptionWord:
    def test_roundtrip_scalar(self):
        fs = FieldSpec(name_index=7, dtype=DataType.UINT, elem_len=8, attr=2)
        assert FieldSpec.decode_word(fs.encode_word()) == fs

    def test_roundtrip_vector(self):
        fs = FieldSpec(
            name_index=4095,
            dtype=DataType.CHAR,
            elem_len=1,
            attr=63,
            vector=True,
            counter_len=2,
        )
        assert FieldSpec.decode_word(fs.encode_word()) == fs

    @given(
        name_index=st.integers(0, 4095),
        dtype=st.sampled_from([DataType.UINT, DataType.INT]),
        elem_len=st.sampled_from([1, 2, 4, 8]),
        attr=st.integers(0, 63),
        counter_len=st.integers(1, 4),
        vector=st.booleans(),
    )
    @settings(max_examples=200)
    def test_roundtrip_property(self, name_index, dtype, elem_len, attr, counter_len, vector):
        fs = FieldSpec(
            name_index=name_index,
            dtype=dtype,
            elem_len=elem_len,
            attr=attr,
            vector=vector,
            counter_len=counter_len if vector else 0,
        )
        assert FieldSpec.decode_word(fs.encode_word()) == fs

    def test_invalid_name_index_rejected(self):
        with pytest.raises(FormatError):
            FieldSpec(name_index=4096, dtype=DataType.UINT, elem_len=8)

    def test_invalid_float_size_rejected(self):
        with pytest.raises(FormatError):
            FieldSpec(name_index=0, dtype=DataType.FLOAT, elem_len=2)

    def test_vector_without_counter_rejected(self):
        with pytest.raises(FormatError):
            FieldSpec(name_index=0, dtype=DataType.UINT, elem_len=8, vector=True)

    def test_scalar_with_counter_rejected(self):
        with pytest.raises(FormatError):
            FieldSpec(name_index=0, dtype=DataType.UINT, elem_len=8, counter_len=2)


class TestValuePacking:
    def test_uint_roundtrip(self):
        fs = FieldSpec(name_index=0, dtype=DataType.UINT, elem_len=8)
        blob = fs.pack_value(2**60)
        value, consumed = fs.unpack_value(blob, 0)
        assert value == 2**60
        assert consumed == 8

    def test_signed_roundtrip(self):
        fs = FieldSpec(name_index=0, dtype=DataType.INT, elem_len=4)
        value, _ = fs.unpack_value(fs.pack_value(-1), 0)
        assert value == -1

    def test_float_roundtrip(self):
        fs = FieldSpec(name_index=0, dtype=DataType.FLOAT, elem_len=8)
        value, _ = fs.unpack_value(fs.pack_value(3.25), 0)
        assert value == 3.25

    def test_string_vector_roundtrip(self):
        fs = FieldSpec(
            name_index=0, dtype=DataType.CHAR, elem_len=1, vector=True, counter_len=2
        )
        value, _ = fs.unpack_value(fs.pack_value("Initial Phase"), 0)
        assert value == "Initial Phase"

    def test_numeric_vector_roundtrip(self):
        fs = FieldSpec(
            name_index=0, dtype=DataType.UINT, elem_len=4, vector=True, counter_len=1
        )
        value, _ = fs.unpack_value(fs.pack_value([1, 2, 3]), 0)
        assert value == [1, 2, 3]

    def test_vector_overflowing_counter_rejected(self):
        fs = FieldSpec(
            name_index=0, dtype=DataType.UINT, elem_len=1, vector=True, counter_len=1
        )
        with pytest.raises(FormatError, match="too long"):
            fs.pack_value([1] * 300)

    def test_truncated_vector_rejected(self):
        fs = FieldSpec(
            name_index=0, dtype=DataType.UINT, elem_len=4, vector=True, counter_len=1
        )
        blob = fs.pack_value([1, 2, 3])
        with pytest.raises(FormatError, match="truncated"):
            fs.unpack_value(blob[:-2], 0)

    @given(st.text(max_size=100))
    @settings(max_examples=100)
    def test_string_roundtrip_property(self, text):
        fs = FieldSpec(
            name_index=0, dtype=DataType.CHAR, elem_len=1, vector=True, counter_len=2
        )
        value, _ = fs.unpack_value(fs.pack_value(text), 0)
        assert value == text


class TestSelectionMask:
    def test_core_always_present(self):
        fs = FieldSpec(name_index=0, dtype=DataType.UINT, elem_len=8, attr=ATTRS["core"])
        assert fs.present_in(MASK_CORE)
        assert fs.present_in(MASK_ALL_MERGED)

    def test_local_only_in_merged(self):
        fs = FieldSpec(name_index=0, dtype=DataType.UINT, elem_len=8, attr=ATTRS["local"])
        assert not fs.present_in(MASK_CORE)
        assert fs.present_in(MASK_ALL_MERGED)
