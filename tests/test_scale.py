"""Scale tests: the 'extremely scalable' claims at larger node/task counts."""

import pytest

from repro.core import IntervalReader, standard_profile
from repro.core.records import IntervalType
from repro.core.threadtable import MAX_THREADS_PER_NODE, ThreadEntry, ThreadTable
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.utils.validate import validate_interval_file
from repro.workloads import run_synthetic
from repro.workloads.synthetic import SyntheticConfig

PROFILE = standard_profile()


@pytest.fixture(scope="module")
def big_run(tmp_path_factory):
    """16 tasks across 8 nodes, 3 threads each — a 16-way merge."""
    tmp = tmp_path_factory.mktemp("scale")
    config = SyntheticConfig(n_tasks=16, threads_per_task=3, rounds=15)
    run = run_synthetic(tmp / "raw", config, nodes=8, cpus_per_node=4)
    conv = convert_traces(run.raw_paths, tmp / "ivl")
    merged = merge_interval_files(
        conv.interval_paths, tmp / "m.ute", PROFILE, slog_path=tmp / "r.slog"
    )
    return tmp, run, conv, merged


class TestManyNodes:
    def test_one_file_per_node(self, big_run):
        _, run, conv, _ = big_run
        assert len(run.raw_paths) == 8
        assert len(conv.interval_paths) == 8

    def test_merged_covers_all_tasks(self, big_run):
        _, _, _, merged = big_run
        reader = IntervalReader(merged.merged_path, PROFILE)
        tasks = {e.mpi_task for e in reader.thread_table if e.mpi_task >= 0}
        assert tasks == set(range(16))

    def test_merged_ordering_at_k16(self, big_run):
        _, _, _, merged = big_run
        reader = IntervalReader(merged.merged_path, PROFILE)
        ends = [r.end for r in reader.intervals()]
        assert ends == sorted(ends)
        assert len(ends) > 1000

    def test_merged_file_validates(self, big_run):
        _, _, _, merged = big_run
        report = validate_interval_file(merged.merged_path, PROFILE)
        assert report.ok, report.summary()

    def test_all_nodes_clock_adjusted_independently(self, big_run):
        _, _, _, merged = big_run
        ratios = [a.ratio for a in merged.adjustments]
        assert len(ratios) == 8
        assert len(set(ratios)) == 8  # each node's drift differs

    def test_views_handle_sixteen_tasks(self, big_run, tmp_path):
        from repro.viz.jumpshot import Jumpshot

        tmp, _, _, merged = big_run
        viewer = Jumpshot(merged.slog_path)
        view = viewer.build_view(viewer.slog.records(), "thread")
        # 16 tasks x 3 threads = 48 timelines.
        assert len(view.rows) == 48
        path = viewer.render_whole_run(tmp_path / "big.svg")
        assert path.stat().st_size > 10_000


class TestThreadTableCapacity:
    def test_paper_scale_thread_count(self):
        """The format claim: 512 threads/node x thousands of nodes supports
        millions of threads.  Exercise a slice of that space."""
        table = ThreadTable()
        for node in range(16):
            for ltid in range(MAX_THREADS_PER_NODE):
                table.add(ThreadEntry(-1, 1, node * 10_000 + ltid, node, ltid, 1))
        assert len(table) == 16 * 512
        encoded = table.encode()
        decoded, _ = ThreadTable.decode(encoded, 0, len(table))
        assert len(decoded) == len(table)
        assert decoded.lookup(11, 317).system_tid == 11 * 10_000 + 317
