"""Tests for the per-node preemptive scheduler."""

import pytest

from repro.cluster import Cluster, ClusterSpec, Compute, Sleep, Spawn, Wait, YieldCPU
from repro.cluster.engine import Future
from repro.cluster.scheduler import ThreadCategory, ThreadState
from repro.errors import SimulationError


def make_cluster(cpus=2, quantum_ns=10_000_000, nodes=1):
    return Cluster(ClusterSpec(n_nodes=nodes, cpus_per_node=cpus, quantum_ns=quantum_ns))


def test_single_thread_computes_to_completion():
    cl = make_cluster()

    def body():
        yield Compute(5_000_000)
        return "done"

    t = cl.nodes[0].scheduler.spawn(body, name="t")
    cl.run()
    assert t.state is ThreadState.DONE
    assert t.result == "done"
    assert cl.engine.now == 5_000_000


def test_quantum_preemption_round_robin():
    """Two CPU-bound threads on one CPU alternate at quantum boundaries."""
    cl = make_cluster(cpus=1, quantum_ns=1_000_000)
    trace = []
    cl.nodes[0].scheduler.add_listener(
        lambda kind, t, n, c, th: trace.append((kind, t, th.name))
    )

    def body():
        yield Compute(2_500_000)

    cl.nodes[0].scheduler.spawn(body, name="a")
    cl.nodes[0].scheduler.spawn(body, name="b")
    cl.run()
    dispatches = [(t, name) for kind, t, name in trace if kind == "dispatch"]
    names = [name for _, name in dispatches]
    # a runs, preempted at quantum; b runs; alternate until both finish.
    assert names == ["a", "b", "a", "b", "a", "b"]
    assert cl.engine.now == 5_000_000


def test_no_preemption_without_competitor():
    cl = make_cluster(cpus=1, quantum_ns=1_000_000)
    trace = []
    cl.nodes[0].scheduler.add_listener(
        lambda kind, t, n, c, th: trace.append((kind, t, th.name))
    )

    def body():
        yield Compute(5_500_000)

    cl.nodes[0].scheduler.spawn(body, name="solo")
    cl.run()
    assert [k for k, _, _ in trace] == ["dispatch", "undispatch"]
    assert cl.engine.now == 5_500_000


def test_threads_spread_over_cpus():
    cl = make_cluster(cpus=2)
    placements = []
    cl.nodes[0].scheduler.add_listener(
        lambda kind, t, n, c, th: kind == "dispatch" and placements.append((th.name, c))
    )

    def body():
        yield Compute(1_000_000)

    cl.nodes[0].scheduler.spawn(body, name="a")
    cl.nodes[0].scheduler.spawn(body, name="b")
    cl.run()
    assert dict(placements) == {"a": 0, "b": 1}
    assert cl.engine.now == 1_000_000  # truly parallel


def test_preempted_thread_can_migrate_cpus():
    """With contention, a preempted thread is re-dispatched onto whatever
    CPU is free — the migration the paper's Figure 9 shows."""
    cl = make_cluster(cpus=2, quantum_ns=1_000_000)
    placements = {}

    def listener(kind, t, n, c, th):
        if kind == "dispatch":
            placements.setdefault(th.name, set()).add(c)

    cl.nodes[0].scheduler.add_listener(listener)

    def long():
        yield Compute(4_000_000)

    def short():
        yield Compute(1_500_000)

    for i in range(3):
        cl.nodes[0].scheduler.spawn(long, name=f"long{i}")
    cl.nodes[0].scheduler.spawn(short, name="short")
    cl.run()
    # At least one thread observed more than one CPU.
    assert any(len(cpus) > 1 for cpus in placements.values())


def test_affinity_returns_thread_to_its_cpu():
    """With wake-up affinity, a thread that blocked on CPU 1 returns to
    CPU 1 even if CPU 0 is free."""
    cl = Cluster(ClusterSpec(n_nodes=1, cpus_per_node=2, affinity=True))
    placements = []
    cl.nodes[0].scheduler.add_listener(
        lambda kind, t, n, c, th: kind == "dispatch"
        and placements.append((th.name, c))
    )
    fut = Future()

    def pinner():
        # Occupy CPU 0 briefly so the sleeper lands on CPU 1 first.
        yield Compute(1_000_000)

    def sleeper():
        yield Compute(500_000)
        yield Wait(fut)
        yield Compute(500_000)

    cl.nodes[0].scheduler.spawn(pinner, name="pin")
    cl.nodes[0].scheduler.spawn(sleeper, name="sleep")
    cl.engine.schedule(5_000_000, fut.set_result, None)
    cl.run()
    sleeper_cpus = [c for name, c in placements if name == "sleep"]
    assert sleeper_cpus == [1, 1]  # woke back onto CPU 1, not the free CPU 0


def test_without_affinity_wakes_on_lowest_free_cpu():
    cl = Cluster(ClusterSpec(n_nodes=1, cpus_per_node=2, affinity=False))
    placements = []
    cl.nodes[0].scheduler.add_listener(
        lambda kind, t, n, c, th: kind == "dispatch"
        and placements.append((th.name, c))
    )
    fut = Future()

    def pinner():
        yield Compute(1_000_000)

    def sleeper():
        yield Compute(500_000)
        yield Wait(fut)
        yield Compute(500_000)

    cl.nodes[0].scheduler.spawn(pinner, name="pin")
    cl.nodes[0].scheduler.spawn(sleeper, name="sleep")
    cl.engine.schedule(5_000_000, fut.set_result, None)
    cl.run()
    sleeper_cpus = [c for name, c in placements if name == "sleep"]
    assert sleeper_cpus == [1, 0]  # migrated to the lowest free CPU


def test_wait_blocks_until_future_resolves():
    cl = make_cluster()
    fut = Future()
    got = []

    def waiter():
        value = yield Wait(fut)
        got.append((value, cl.engine.now))

    cl.nodes[0].scheduler.spawn(waiter, name="w")
    cl.engine.schedule(7_000_000, fut.set_result, "hello")
    cl.run()
    assert got == [("hello", 7_000_000)]


def test_wait_on_already_resolved_future_is_instant():
    cl = make_cluster()
    fut = Future()
    fut.set_result(99)
    got = []

    def waiter():
        got.append((yield Wait(fut)))

    cl.nodes[0].scheduler.spawn(waiter, name="w")
    cl.run()
    assert got == [99]
    assert cl.engine.now == 0


def test_sleep_blocks_off_cpu():
    cl = make_cluster(cpus=1)
    order = []

    def sleeper():
        yield Sleep(5_000_000)
        order.append(("sleeper", cl.engine.now))

    def worker():
        yield Compute(2_000_000)
        order.append(("worker", cl.engine.now))

    cl.nodes[0].scheduler.spawn(sleeper, name="s")
    cl.nodes[0].scheduler.spawn(worker, name="w")
    cl.run()
    # Worker runs while sleeper is off-CPU, despite a single processor.
    assert order == [("worker", 2_000_000), ("sleeper", 5_000_000)]


def test_spawn_returns_child_thread():
    cl = make_cluster()
    seen = {}

    def child(tag):
        yield Compute(1_000)
        return tag

    def parent():
        t = yield Spawn(child, ("x",), name="kid", category="user")
        seen["child"] = t
        result = yield Wait(t.done_future)
        seen["result"] = result

    cl.nodes[0].scheduler.spawn(parent, name="p")
    cl.run()
    assert seen["child"].name == "kid"
    assert seen["result"] == "x"
    assert seen["child"].category is ThreadCategory.USER


def test_logical_tids_are_sequential_per_node():
    cl = make_cluster(nodes=2)

    def body():
        yield Compute(1)

    a = cl.nodes[0].scheduler.spawn(body)
    b = cl.nodes[0].scheduler.spawn(body)
    c = cl.nodes[1].scheduler.spawn(body)
    assert (a.logical_tid, b.logical_tid, c.logical_tid) == (0, 1, 0)
    assert a.system_tid != b.system_tid != c.system_tid


def test_yield_cpu_round_robins():
    cl = make_cluster(cpus=1)
    order = []

    def body(tag):
        for _ in range(3):
            order.append(tag)
            yield YieldCPU()
            yield Compute(1000)

    cl.nodes[0].scheduler.spawn(body, "a", name="a")
    cl.nodes[0].scheduler.spawn(body, "b", name="b")
    cl.run()
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_deadlock_detected():
    cl = make_cluster()

    def stuck():
        yield Wait(Future())

    cl.nodes[0].scheduler.spawn(stuck, name="stuck")
    with pytest.raises(SimulationError, match="deadlock"):
        cl.run()


def test_unsupported_request_rejected():
    cl = make_cluster()

    def bad():
        yield "not-a-request"

    cl.nodes[0].scheduler.spawn(bad, name="bad")
    with pytest.raises(SimulationError, match="unsupported request"):
        cl.run()


def test_zero_cpu_node_rejected():
    with pytest.raises(SimulationError):
        make_cluster(cpus=0)


def test_compute_zero_is_free():
    cl = make_cluster()

    def body():
        yield Compute(0)
        yield Compute(0)

    cl.nodes[0].scheduler.spawn(body)
    cl.run()
    assert cl.engine.now == 0


def test_idle_cpus_reported():
    cl = make_cluster(cpus=4)
    samples = []

    def body():
        yield Compute(1_000_000)

    def sampler():
        samples.append(cl.nodes[0].scheduler.idle_cpus())

    cl.nodes[0].scheduler.spawn(body)
    cl.engine.schedule(500_000, sampler)
    cl.run()
    assert samples == [3]
