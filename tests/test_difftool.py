"""Tests for the semantic differ (``repro.difftool.differ`` / ``ute-diff``)
and the stats/serve consistency regression it flushed out."""

import dataclasses
import json
import urllib.parse

import pytest

from repro.cli import main_diff, main_stats
from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.core.writer import IntervalFileWriter
from repro.difftool import DiffConfig, diff_traces
from repro.errors import FormatError
from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.utils.slog import SlogWriter

PROFILE = standard_profile()
SEND = IntervalType.for_mpi_fn(0)


def rec(itype=IntervalType.RUNNING, start=0, dura=100, node=0, thread=0, **extra):
    return IntervalRecord(itype, BeBits.COMPLETE, start, dura, node, 0, thread, extra)


def records(n=30):
    return [rec(start=i * 200, dura=150, thread=i % 2) for i in range(n)]


def thread_table():
    return ThreadTable(
        [ThreadEntry(t, 100, 5000 + t, 0, t, 0, f"t{t}") for t in range(2)]
    )


def make_ivl(path, recs=None):
    with IntervalFileWriter(
        path, PROFILE, thread_table(), field_mask=MASK_ALL_MERGED, frame_bytes=512
    ) as writer:
        for r in recs if recs is not None else records():
            writer.write(r)
    return path


def make_slog(path, recs=None, *, ticks_per_sec=1e9):
    recs = list(recs if recs is not None else records())
    t1 = max((r.end for r in recs), default=1)
    writer = SlogWriter(
        path, PROFILE, thread_table(), field_mask=MASK_ALL_MERGED,
        time_range=(0, max(t1, 1)), frame_bytes=512, preview_bins=10,
        ticks_per_sec=ticks_per_sec,
    )
    for r in sorted(recs, key=lambda r: r.end):
        writer.write(r)
    return writer.close()


def rewrite_with(path, out, mutate):
    """Copy ``path`` record by record through ``mutate`` into ``out``."""
    from repro.core.reader import IntervalReader

    reader = IntervalReader(path, PROFILE)
    recs = [mutate(i, r) for i, r in enumerate(reader.intervals())]
    table, mask, markers = reader.thread_table, reader.header.field_mask, reader.markers
    reader.close()
    with IntervalFileWriter(
        out, PROFILE, table, field_mask=mask, markers=markers, frame_bytes=512
    ) as writer:
        for r in recs:
            if r is not None:
                writer.write(r)
    return out


class TestDiffer:
    def test_identical_files(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute")
        b = make_ivl(tmp_path / "b.ute")
        report = diff_traces(a, b)
        assert report.identical
        assert report.compared == 30
        assert report.first is None

    def test_one_tick_perturbation_detected(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute")
        b = rewrite_with(
            a, tmp_path / "b.ute",
            lambda i, r: dataclasses.replace(r, start=r.start + 1, duration=r.duration - 1)
            if i == 7 else r,
        )
        report = diff_traces(a, b)
        assert not report.identical
        assert report.first == {"index": 7, "field": "start", "a": 1400, "b": 1401}
        assert report.field_counts == {"start": 1}
        assert report.max_deltas == {"start": 1}
        assert report.divergent_records == 1

    def test_time_slack_absorbs_perturbation(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute")
        b = rewrite_with(
            a, tmp_path / "b.ute",
            lambda i, r: dataclasses.replace(r, start=r.start + 1, duration=r.duration - 1),
        )
        assert not diff_traces(a, b).identical
        assert diff_traces(a, b, DiffConfig(time_slack=1)).identical

    def test_slack_does_not_cover_non_time_fields(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute")
        b = rewrite_with(
            a, tmp_path / "b.ute",
            lambda i, r: dataclasses.replace(r, node=r.node + 1) if i == 3 else r,
        )
        report = diff_traces(a, b, DiffConfig(time_slack=10))
        assert not report.identical
        assert report.first["field"] == "node"

    def test_record_count_mismatch(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute")
        b = rewrite_with(a, tmp_path / "b.ute", lambda i, r: None if i == 29 else r)
        report = diff_traces(a, b)
        assert not report.identical
        assert report.records_a == 30 and report.records_b == 29
        assert report.first["field"] == "__count__"

    def test_ignore_fields(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute", [rec(SEND, dura=10, msgSizeSent=8, seqno=1)])
        b = make_ivl(tmp_path / "b.ute", [rec(SEND, dura=10, msgSizeSent=8, seqno=2)])
        assert not diff_traces(a, b).identical
        assert diff_traces(a, b, DiffConfig(ignore_fields=frozenset({"seqno"}))).identical

    def test_field_missing_on_one_side(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute", [rec(SEND, dura=10, msgSizeSent=8, seqno=1)])
        b = make_ivl(tmp_path / "b.ute", [rec(dura=10)])
        report = diff_traces(a, b)
        assert not report.identical
        assert any(e["b"] == "<missing>" for e in report.examples)
        assert "type" in report.field_counts

    def test_drop_types(self, tmp_path):
        base = records(10)
        a = make_ivl(tmp_path / "a.ute", base)
        b = make_ivl(
            tmp_path / "b.ute",
            sorted(
                base + [rec(IntervalType.CLOCKPAIR, start=500, dura=0, globalTs=1)],
                key=lambda r: r.end,
            ),
        )
        assert not diff_traces(a, b).identical
        config = DiffConfig(drop_types=frozenset({int(IntervalType.CLOCKPAIR)}))
        assert diff_traces(a, b, config).identical

    def test_thread_remap(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute", [rec(thread=0), rec(start=300, thread=1)])
        b = make_ivl(tmp_path / "b.ute", [rec(thread=1), rec(start=300, thread=0)])
        assert not diff_traces(a, b).identical
        config = DiffConfig(thread_map=((0, 1), (1, 0)))
        assert diff_traces(a, b, config).identical

    def test_cross_format_ute_vs_slog(self, tmp_path):
        recs = records()
        a = make_ivl(tmp_path / "a.ute", recs)
        b = make_slog(tmp_path / "b.slog", recs)
        assert diff_traces(a, b, DiffConfig(ignore_pseudo=True)).identical

    def test_raw_vs_interval_rejected(self, tmp_path, corpus):
        a = corpus.path("good.raw")
        b = make_ivl(tmp_path / "b.ute")
        with pytest.raises(FormatError, match="cannot diff"):
            diff_traces(a, b)

    def test_raw_self_diff(self, corpus):
        report = diff_traces(corpus.path("good.raw"), corpus.path("good.raw"))
        assert report.identical
        assert report.kind_a == report.kind_b == "raw"
        assert report.compared > 0

    def test_report_dict_shape(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute")
        doc = diff_traces(a, a).as_dict()
        assert doc["identical"] is True
        assert doc["a"]["records"] == doc["b"]["records"] == 30
        assert doc["config"]["time_slack"] == 0
        assert doc["first_divergence"] is None


class TestDiffCli:
    def test_exit_0_identical(self, tmp_path, capsys):
        a = make_ivl(tmp_path / "a.ute")
        assert main_diff([str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_exit_1_divergent_with_first_divergence(self, tmp_path, capsys):
        a = make_ivl(tmp_path / "a.ute")
        b = rewrite_with(
            a, tmp_path / "b.ute",
            lambda i, r: dataclasses.replace(r, start=r.start + 1, duration=r.duration - 1)
            if i == 0 else r,
        )
        assert main_diff([str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "first divergence: record 0 field 'start'" in out

    def test_exit_2_on_missing_input(self, capsys):
        assert main_diff(["nope.ute", "also-nope.ute"]) == 2
        assert "error" in capsys.readouterr().err

    def test_exit_2_on_incompatible_kinds(self, tmp_path, corpus, capsys):
        b = make_ivl(tmp_path / "b.ute")
        assert main_diff([str(corpus.path("good.raw")), str(b)]) == 2

    def test_exit_2_on_bad_thread_map(self, tmp_path, capsys):
        a = make_ivl(tmp_path / "a.ute")
        assert main_diff([str(a), str(a), "--map-thread", "zap"]) == 2

    def test_json_report(self, tmp_path, capsys):
        a = make_ivl(tmp_path / "a.ute")
        assert main_diff([str(a), str(a), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["identical"] is True

    def test_cli_slack_and_ignore_flags(self, tmp_path, capsys):
        a = make_ivl(tmp_path / "a.ute", [rec(SEND, start=0, dura=10, msgSizeSent=8, seqno=1)])
        b = make_ivl(tmp_path / "b.ute", [rec(SEND, start=1, dura=9, msgSizeSent=8, seqno=2)])
        assert main_diff([str(a), str(b)]) == 1
        capsys.readouterr()
        assert main_diff(
            [str(a), str(b), "--slack", "1", "--ignore-field", "seqno"]
        ) == 0


class TestStatsServeParity:
    """Regression: ute-stats must use the file's own tick rate and thread
    table, exactly like the serving daemon does (pre-fix it hardcoded 1e9
    and no thread table, so ``task``-based tables silently emptied and
    times were unit-skewed on non-nanosecond files)."""

    PROGRAM = (
        'table name=par x=("task", task) '
        'y=("busy", dura, sum) y=("pieces", dura, count)\n'
    )

    def test_cli_matches_serve_on_microsecond_file(self, tmp_path, capsys):
        path = make_slog(tmp_path / "m.slog", ticks_per_sec=1e6)
        program = tmp_path / "p.stats"
        program.write_text(self.PROGRAM)
        assert main_stats(
            [str(path), "--program", str(program), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        cli_rows = doc["tables"]["par"]["rows"]
        with ServerThread(path, ServerConfig(port=0)) as srv:
            response = ServeClient(srv.base_url).request(
                "/api/stats?format=json&table=" + urllib.parse.quote(self.PROGRAM)
            )
            assert response.status == 200
            served = response.json()["tables"][0]["rows"]
        assert cli_rows  # pre-fix: empty (no thread table -> no task field)
        assert cli_rows == served
        # Durations in seconds at the file's 1e6 tick rate: 15 records per
        # task x 150 ticks = 2250 us, not the 1e9-skewed 2.25e-6.
        busy = {row[0]: row[1] for row in cli_rows}
        assert busy[0] == busy[1] == pytest.approx(15 * 150 / 1e6)

    def test_default_tables_use_file_tick_rate(self, tmp_path, capsys):
        path = make_slog(tmp_path / "d.slog", ticks_per_sec=1e6)
        assert main_stats([str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        rows = doc["tables"]["duration_by_type"]["rows"]
        total = {row[0]: row[2] for row in rows}
        assert total[int(IntervalType.RUNNING)] == pytest.approx(30 * 150 / 1e6)

    def test_mixed_tick_rates_rejected(self, tmp_path, capsys):
        a = make_slog(tmp_path / "a.slog", ticks_per_sec=1e9)
        b = make_slog(tmp_path / "b.slog", ticks_per_sec=1e6)
        assert main_stats([str(a), str(b), "--json"]) == 2
        assert "ticks_per_sec" in capsys.readouterr().err
