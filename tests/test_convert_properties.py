"""Property-based tests: the convert utility on randomized (but valid)
event schedules.

Hypothesis generates arbitrary interleavings of dispatch/undispatch, nested
marker and MPI begin/end pairs, and checks the conversion invariants that
must hold for *any* schedule:

* total piece duration equals total dispatched (on-CPU) time;
* pieces never overlap within a thread;
* bebits are well-formed per state (COMPLETE alone, or BEGIN
  [CONTINUATION...] END);
* output is in ascending end-time order;
* piece CPU matches the dispatch in effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntervalReader, standard_profile
from repro.core.records import BeBits, IntervalType
from repro.tracing.events import RawEvent
from repro.tracing.hooks import HookId, hook_for_mpi_begin, hook_for_mpi_end
from repro.tracing.rawfile import RawFileHeader, RawTraceWriter
from repro.utils.convert import MarkerUnifier, convert_one

PROFILE = standard_profile()
TID = 777


@dataclass
class Schedule:
    """A generated valid event schedule plus its ground truth."""

    events: list[RawEvent]
    on_cpu_ns: int
    dispatch_spans: list[tuple[int, int, int]]  # (start, end, cpu)


@st.composite
def schedules(draw) -> Schedule:
    """Generate a valid per-thread schedule.

    A random walk over: dispatch/undispatch toggles, and (while the model
    allows) pushes/pops of MPI or marker states, with strictly increasing
    timestamps.
    """
    events: list[RawEvent] = [
        RawEvent(HookId.THREAD_INFO, 0, TID, 0, (1000, 0, 0, 0), "t"),
        RawEvent(HookId.MARKER_DEFINE, 0, TID, 0, (1,), "m1"),
        RawEvent(HookId.MARKER_DEFINE, 0, TID, 0, (2,), "m2"),
    ]
    t = 0
    on_cpu = False
    cpu = 0
    stack: list[tuple[str, int]] = []  # ("mpi", fn) | ("marker", id)
    on_cpu_ns = 0
    spans: list[tuple[int, int, int]] = []
    span_start = 0
    n_steps = draw(st.integers(min_value=1, max_value=40))
    for _ in range(n_steps):
        t += draw(st.integers(min_value=1, max_value=1000))
        choices = ["toggle_cpu"]
        if on_cpu:
            in_mpi = bool(stack) and stack[-1][0] == "mpi"
            if len(stack) < 3 and not in_mpi:
                # MPI calls don't nest, and markers are not created inside
                # MPI calls — the same structural rules real programs obey.
                choices += ["push_mpi", "push_marker"]
            if stack:
                choices += ["pop"]
        action = draw(st.sampled_from(choices))
        if action == "toggle_cpu":
            if on_cpu:
                events.append(RawEvent(HookId.UNDISPATCH, t, TID, cpu))
                on_cpu_ns += t - span_start
                spans.append((span_start, t, cpu))
                on_cpu = False
                cpu = draw(st.integers(min_value=0, max_value=3))
            else:
                events.append(RawEvent(HookId.DISPATCH, t, TID, cpu))
                on_cpu = True
                span_start = t
        elif action == "push_mpi":
            fn = draw(st.integers(min_value=0, max_value=3))
            events.append(
                RawEvent(hook_for_mpi_begin(fn), t, TID, cpu, (1, 0, 64, 1, 0))
            )
            stack.append(("mpi", fn))
        elif action == "push_marker":
            # Markers may not nest the same id; pick one not in use.
            used = {mid for kind, mid in stack if kind == "marker"}
            options = [m for m in (1, 2) if m not in used]
            if not options:
                continue
            mid = draw(st.sampled_from(options))
            events.append(RawEvent(HookId.MARKER_BEGIN, t, TID, cpu, (mid, 0)))
            stack.append(("marker", mid))
        elif action == "pop":
            kind, value = stack.pop()
            if kind == "mpi":
                events.append(RawEvent(hook_for_mpi_end(value), t, TID, cpu))
            else:
                events.append(RawEvent(HookId.MARKER_END, t, TID, cpu, (value, 0)))
    # Close out: pop everything, then undispatch.
    while stack:
        t += 1
        kind, value = stack.pop()
        if kind == "mpi":
            events.append(RawEvent(hook_for_mpi_end(value), t, TID, cpu))
        else:
            events.append(RawEvent(HookId.MARKER_END, t, TID, cpu, (value, 0)))
    if on_cpu:
        t += 1
        events.append(RawEvent(HookId.UNDISPATCH, t, TID, cpu))
        on_cpu_ns += t - span_start
        spans.append((span_start, t, cpu))
    return Schedule(events, on_cpu_ns, spans)


def run_convert(tmp_path, schedule: Schedule):
    from repro.tracing.rawfile import RawTraceReader

    raw = tmp_path / "prop.raw"
    with RawTraceWriter(raw, RawFileHeader(0, 4, 0)) as writer:
        for ev in schedule.events:
            writer.write(ev)
    out = tmp_path / "prop.ute"
    convert_one(RawTraceReader(raw), out, PROFILE, MarkerUnifier())
    reader = IntervalReader(out, PROFILE)
    return [r for r in reader.intervals() if r.itype != IntervalType.CLOCKPAIR]


@given(schedule=schedules())
@settings(max_examples=60, deadline=None)
def test_duration_conservation(tmp_path_factory, schedule):
    records = run_convert(tmp_path_factory.mktemp("p"), schedule)
    assert sum(r.duration for r in records) == schedule.on_cpu_ns


@given(schedule=schedules())
@settings(max_examples=60, deadline=None)
def test_pieces_never_overlap_within_thread(tmp_path_factory, schedule):
    records = run_convert(tmp_path_factory.mktemp("p"), schedule)
    spans = sorted((r.start, r.end) for r in records if r.duration > 0)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= e1, f"overlap: ({s1},{e1}) vs ({s2},{e2})"


@given(schedule=schedules())
@settings(max_examples=60, deadline=None)
def test_bebits_wellformed_per_state(tmp_path_factory, schedule):
    records = run_convert(tmp_path_factory.mktemp("p"), schedule)
    open_states: set[tuple] = set()
    for r in records:
        key = (r.itype, r.extra.get("markerId", 0))
        if r.bebits is BeBits.COMPLETE:
            assert key not in open_states
        elif r.bebits is BeBits.BEGIN:
            assert key not in open_states
            open_states.add(key)
        elif r.bebits is BeBits.CONTINUATION:
            assert key in open_states
        elif r.bebits is BeBits.END:
            assert key in open_states
            open_states.remove(key)
    assert not open_states


@given(schedule=schedules())
@settings(max_examples=60, deadline=None)
def test_output_end_time_ordered(tmp_path_factory, schedule):
    records = run_convert(tmp_path_factory.mktemp("p"), schedule)
    ends = [r.end for r in records]
    assert ends == sorted(ends)


@given(schedule=schedules())
@settings(max_examples=60, deadline=None)
def test_piece_cpu_matches_dispatch(tmp_path_factory, schedule):
    records = run_convert(tmp_path_factory.mktemp("p"), schedule)
    for r in records:
        if r.duration == 0:
            continue
        covering = [
            cpu for (s, e, cpu) in schedule.dispatch_spans
            if s <= r.start and r.end <= e
        ]
        assert covering, f"piece ({r.start},{r.end}) outside any dispatch span"
        assert r.cpu == covering[0]
