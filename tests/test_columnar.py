"""Columnar batch execution and the aggregate/accounting bugfix sweep.

The contract under test: the columnar executor is an *optimization*, never
an answer change.  Record-at-a-time and batched executions of the same
query must render byte-identical output — over generated traces, over the
damaged corpus in salvage mode, and through every integration surface
(CLI, stats, serve).  Alongside it, the regressions this PR fixed stay
fixed: aggregates over empty groups emit null (not fabricated zeros),
bare ``count`` counts matched records unconditionally, and
``frames_decoded`` reports what was actually decoded.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main_query, main_stats
from repro.core.profilefmt import Profile
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.difftool.differ import DiffConfig, DiffReport, diff_fieldmaps
from repro.difftool.oracle import run_oracle
from repro.errors import FormatError
from repro.query import (
    EXECUTORS,
    Aggregate,
    Query,
    ThreadSel,
    batch_from_records,
    open_trace,
    run_query,
)
from repro.query.engine import ExecStats, execute
from repro.query.model import accumulate, finalize, new_accumulator
from repro.query.planner import plan_query

from tests.test_query import PROFILE, SALVAGEABLE, _records, make_ivl, run_cli

MARKER = IntervalType.MARKER
RUNNING = IntervalType.RUNNING


@pytest.fixture()
def ivl(tmp_path):
    return make_ivl(tmp_path / "c.ute")


# ---------------------------------------------------------------------------
# Satellite 1: aggregates over empty groups emit null, not fabricated zeros.


class TestAggregateNulls:
    AGGS = tuple(
        Aggregate.parse(a)
        for a in ("count", "count:markerId", "sum:markerId",
                  "min:markerId", "max:markerId", "avg:markerId")
    )

    def test_finalize_empty_slots_are_none(self):
        state = new_accumulator(self.AGGS)
        # Five matched records, none carrying markerId.
        for _ in range(5):
            state["rows"] += 1
        values = finalize(state, self.AGGS)
        assert values == (5, 0, 0, None, None, None)

    def test_accumulate_skips_missing_field_but_counts_row(self):
        state = new_accumulator(self.AGGS)
        running = IntervalRecord(RUNNING, BeBits.COMPLETE, 0, 10, 0, 0, 0, {})
        marker = IntervalRecord(
            MARKER, BeBits.COMPLETE, 10, 5, 0, 0, 0, {"markerId": 7}
        )
        accumulate(state, self.AGGS, running)
        accumulate(state, self.AGGS, marker)
        assert finalize(state, self.AGGS) == (2, 1, 7, 7, 7, 7.0)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_empty_group_renders_empty_tsv_cell_and_json_null(self, ivl, executor):
        query = Query(
            group_by=("type",),
            aggregates=(
                Aggregate.parse("count"),
                Aggregate.parse("min:markerId"),
                Aggregate.parse("avg:markerId"),
            ),
        )
        result = run_query(ivl, query, profile=PROFILE, executor=executor)
        by_type = {row[0]: row for row in result.rows}
        # RUNNING records never carry markerId: null aggregates, full count.
        assert by_type[int(RUNNING)][1] == 192
        assert by_type[int(RUNNING)][2] is None
        assert by_type[int(RUNNING)][3] is None
        assert by_type[int(MARKER)][1:] == (48, 1, 1.0)
        running_line = [
            line for line in result.to_tsv().splitlines()
            if line.startswith(f"{int(RUNNING)}\t")
        ][0]
        assert running_line == f"{int(RUNNING)}\t192\t\t"
        payload = result.to_payload()
        assert [int(RUNNING), 192, None, None] in payload["rows"]

    def test_differ_treats_null_and_missing_as_equal(self):
        config = DiffConfig()
        report = DiffReport("a", "b", "interval", "interval", config)
        diff_fieldmaps(
            [{"start": 1, "markerId": None}], [{"start": 1}], config, report
        )
        assert report.identical

    def test_differ_still_flags_real_differences(self):
        config = DiffConfig()
        report = DiffReport("a", "b", "interval", "interval", config)
        diff_fieldmaps(
            [{"start": 1, "markerId": 3}], [{"start": 1}], config, report
        )
        assert not report.identical


# ---------------------------------------------------------------------------
# Satellite 3: bare count vs count:FIELD.


class TestBareCount:
    def test_parse_bare_count_has_no_source(self):
        agg = Aggregate.parse("count")
        assert agg.source is None
        assert agg.label == "count"

    def test_parse_count_field_keeps_source(self):
        agg = Aggregate.parse("count:markerId")
        assert agg.source == "markerId"

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_bare_vs_field_count_diverge_on_sparse_fields(self, ivl, executor):
        query = Query(
            group_by=("node",),
            aggregates=(Aggregate.parse("count"), Aggregate.parse("count:markerId")),
        )
        result = run_query(ivl, query, profile=PROFILE, executor=executor)
        for _node, bare, non_null in result.rows:
            assert bare == 80  # every matched record of the node
            assert non_null == 16  # only the MARKER records carry markerId


# ---------------------------------------------------------------------------
# Satellite 2: frames_decoded reports actual decodes.


class TestHonestAccounting:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_limit_short_circuit_counts_decoded_frames(self, ivl, executor):
        result = run_query(
            ivl, Query(limit=3), profile=PROFILE, executor=executor
        )
        assert len(result.rows) == 3
        assert result.io["frames_decoded"] == 1
        assert result.io["frames_scanned"] == 1
        assert result.io["frames_decoded"] < len(result.plan.frames)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_full_scan_decodes_every_planned_frame(self, ivl, executor):
        result = run_query(ivl, Query(), profile=PROFILE, executor=executor)
        assert result.io["frames_decoded"] == len(result.plan.frames)
        assert result.io["frames_scanned"] == len(result.plan.frames)

    def test_cached_frames_are_not_recounted(self, tmp_path):
        # Few enough frames to fit the reader's LRU cache entirely.
        path = make_ivl(tmp_path / "small.ute", records=_records(60))
        with open_trace(path, PROFILE) as handle:
            plan = plan_query(Query(), handle.frames, None, index_reason="t")
            execute(handle, Query(), plan)
            before = handle.stats()
            stats = ExecStats()
            execute(handle, Query(), plan, stats=stats)
            after = handle.stats()
        # Second run decodes nothing new, but still scans every frame.
        assert after["misses"] == before["misses"]
        assert stats.frames_scanned == len(plan.frames)

    def test_unknown_executor_rejected(self, ivl):
        with open_trace(ivl, PROFILE) as handle:
            plan = plan_query(Query(), handle.frames, None, index_reason="t")
            with pytest.raises(FormatError, match="unknown executor"):
                execute(handle, Query(), plan, executor="vectorized")


# ---------------------------------------------------------------------------
# Batch decode parity with the record decoder.


class TestBatchDecode:
    def test_batch_matches_read_frame(self, ivl):
        with open_trace(ivl, PROFILE) as handle:
            for frame in handle.frames:
                records = handle.read_frame(frame.ordinal)
                batch = handle.read_frame_batch(frame.ordinal)
                assert batch.n == len(records)
                assert batch.to_records() == records

    @pytest.mark.parametrize("name", ["good.ute", "good.slog"])
    def test_batch_matches_read_frame_corpus(self, corpus, name):
        with open_trace(corpus.path(name), PROFILE) as handle:
            for frame in handle.frames:
                assert (
                    handle.read_frame_batch(frame.ordinal).to_records()
                    == handle.read_frame(frame.ordinal)
                )

    def test_batch_from_records_roundtrip(self):
        records = _records(24)
        batch = batch_from_records(records)
        assert batch.n == 24
        assert batch.to_records() == records
        assert batch.column_values("markerId")[0] == 1
        assert batch.column_values("markerId")[1] is None

    def test_core_array_rejects_extras(self):
        batch = batch_from_records(_records(4))
        with pytest.raises(FormatError, match="not a core column"):
            batch.core_array("markerId")

    def test_rectype_column_packs_type_word(self):
        records = _records(8)
        batch = batch_from_records(records)
        assert batch.column_values("rectype") == [
            (r.itype << 2) | int(r.bebits) for r in records
        ]

    @pytest.mark.parametrize("name,profile_kind", SALVAGEABLE)
    def test_salvage_batches_mirror_salvage_records(self, corpus, name, profile_kind):
        from tests.conftest import DATA_DIR

        profile = (
            Profile.read(DATA_DIR / "boundary.profile")
            if profile_kind == "boundary"
            else PROFILE
        )
        with open_trace(corpus.path(name), profile, errors="salvage") as handle:
            for frame in handle.frames:
                assert (
                    handle.read_frame_batch(frame.ordinal).to_records()
                    == handle.read_frame(frame.ordinal)
                )


# ---------------------------------------------------------------------------
# Executor parity: property over generated traces, plus the oracle.


QUERY_AGGS = st.lists(
    st.sampled_from(
        ["count", "count:markerId", "sum:dura", "min:start", "max:end",
         "avg:dura", "min:markerId", "max:markerId", "avg:markerId"]
    ),
    min_size=1,
    max_size=3,
    unique=True,
)


class TestExecutorParity:
    @given(
        frac0=st.floats(min_value=0.0, max_value=1.0),
        span=st.floats(min_value=0.0, max_value=1.0),
        node=st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
        thread=st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
        itype=st.one_of(st.none(), st.sampled_from([int(RUNNING), int(MARKER)])),
        group=st.sampled_from([(), ("node",), ("node", "type"), ("markerId",)]),
        aggs=QUERY_AGGS,
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
    )
    @settings(max_examples=60, deadline=None)
    def test_columnar_equals_record(
        self, parity_trace, frac0, span, node, thread, itype, group, aggs, limit
    ):
        """Property: for any supported query shape, both executors render
        byte-identical TSV — same rows, same group keys, same aggregate
        values, same null cells."""
        path, t_hi_sec = parity_trace
        t0 = frac0 * t_hi_sec
        query = Query(
            threads=(ThreadSel(None, thread),) if thread is not None else (),
            nodes=frozenset({node}) if node is not None else frozenset(),
            types=frozenset({itype}) if itype is not None else frozenset(),
            group_by=group,
            aggregates=tuple(Aggregate.parse(a) for a in aggs) if group else (),
            limit=limit,
        )
        window = (t0, t0 + span * (t_hi_sec - t0))
        record = run_query(
            path, query, profile=PROFILE, window=window, executor="record"
        )
        columnar = run_query(
            path, query, profile=PROFILE, window=window, executor="columnar"
        )
        assert record.rows == columnar.rows
        assert record.to_tsv() == columnar.to_tsv()

    @pytest.mark.parametrize("name,profile_kind", SALVAGEABLE)
    def test_salvage_executor_parity(self, corpus, name, profile_kind):
        from tests.conftest import DATA_DIR

        profile = (
            Profile.read(DATA_DIR / "boundary.profile")
            if profile_kind == "boundary"
            else PROFILE
        )
        query = Query(
            group_by=("node", "type"),
            aggregates=(Aggregate.parse("count"), Aggregate.parse("sum:dura")),
        )
        record = run_query(
            corpus.path(name), query, profile=profile,
            errors="salvage", executor="record",
        )
        columnar = run_query(
            corpus.path(name), query, profile=profile,
            errors="salvage", executor="columnar",
        )
        assert record.to_tsv() == columnar.to_tsv()

    def test_oracle_runs_columnar_check_with_zero_findings(self, ivl):
        report = run_oracle(ivl, PROFILE, serve=False)
        assert "columnar_vs_record" in report.checks
        assert report.ok, report.summary()


@pytest.fixture(scope="module")
def parity_trace(tmp_path_factory):
    """One shared trace for the parity property (module-scoped: hypothesis
    re-runs the test body many times)."""
    path = make_ivl(tmp_path_factory.mktemp("parity") / "p.ute", _records(400))
    with open_trace(path, PROFILE) as handle:
        t_hi = max((f.end_time for f in handle.frames), default=1)
        tps = handle.ticks_per_sec
    return path, t_hi / tps


# ---------------------------------------------------------------------------
# Integration surfaces: CLI and stats.


class TestIntegration:
    def test_cli_executor_flag_byte_identical(self, ivl):
        argv = [str(ivl), "--group-by", "node,type", "--agg", "count",
                "--agg", "min:markerId"]
        code_r, out_r, _ = run_cli(main_query, argv + ["--executor", "record"])
        code_c, out_c, _ = run_cli(main_query, argv + ["--executor", "columnar"])
        assert code_r == code_c == 0
        assert out_r == out_c

    def test_cli_explain_reports_executor_and_decodes(self, ivl):
        code, _, err = run_cli(
            main_query, [str(ivl), "--limit", "2", "--explain"]
        )
        assert code == 0
        assert "plan: full-scan" in err
        assert "(columnar executor)" in err
        assert "decoded 1/" in err  # limit short-circuit: one frame decoded

    def test_stats_executor_parity_and_honest_io(self, ivl):
        code_r, out_r, _ = run_cli(
            main_stats, [str(ivl), "--json", "--executor", "record"]
        )
        code_c, out_c, _ = run_cli(
            main_stats, [str(ivl), "--json", "--executor", "columnar"]
        )
        assert code_r == code_c == 0
        doc_r, doc_c = json.loads(out_r), json.loads(out_c)
        assert doc_r["tables"] == doc_c["tables"]
        stats = doc_c["io"][str(ivl)]
        assert stats["frames_decoded"] == stats["frames_total"]


# ---------------------------------------------------------------------------
# The analysis surface: columnar tables and time-resolved metrics.


class TestAnalysisTable:
    def test_load_table_matches_query_rows(self, ivl):
        from repro.analysis import load_table

        table = load_table(ivl, PROFILE)
        result = run_query(ivl, Query(), profile=PROFILE)
        assert len(table) == len(result.rows)
        assert table.start.tolist() == [row[0] for row in result.rows]
        assert table.node.tolist() == [row[3] for row in result.rows]

    def test_filter_and_slice_compose(self, ivl):
        from repro.analysis import load_table

        table = load_table(ivl, PROFILE)
        node1 = table.filter(node=1)
        assert set(node1.node.tolist()) == {1}
        markers = table.filter(type=int(MARKER))
        assert len(markers) == 48
        t_mid = table.start[len(table) // 2] / table.ticks_per_sec
        sliced = table.slice_time(t_mid, None)
        assert 0 < len(sliced) < len(table)
        assert table.thread_keys() == [
            (n, t) for n in range(3) for t in range(2)
        ]

    def test_window_prunes_with_index(self, ivl):
        from repro.analysis import load_table
        from repro.query import build_index, index_path_for, write_index

        with open_trace(ivl, PROFILE) as handle:
            write_index(build_index(handle), index_path_for(ivl))
        table = load_table(ivl, PROFILE, window=(0.0, 0.001))
        assert len(table.plan.frames) < table.plan.total_frames
        full = load_table(ivl, PROFILE)
        sliced = full.slice_time(0.0, 0.001)
        assert table.start.tolist() == sliced.start.tolist()

    def test_metrics_bounds_and_shapes(self, ivl):
        from repro.analysis import (
            communication_efficiency_timeline,
            load_balance_timeline,
            load_table,
        )

        table = load_table(ivl, PROFILE)
        lb = load_balance_timeline(table, bins=8)
        ce = communication_efficiency_timeline(table, bins=8)
        for metric in (lb, ce):
            assert metric.bins == 8
            assert len(metric.edges) == 9
            assert all(0.0 <= v <= 1.0 for v in metric.values.tolist())
            assert len(metric.centers_seconds(table.ticks_per_sec)) == 8
            assert json.dumps(metric.as_dict())
        # The generated workload is perfectly balanced and has no MPI.
        assert lb.terms["busy"].shape == (8, 6)
        assert ce.values.tolist() == [1.0] * 8

    def test_imbalanced_workload_scores_below_one(self, tmp_path):
        from repro.analysis import load_balance_timeline, load_table

        # Thread (0, 0) runs the whole span; thread (0, 1) runs 1/10th.
        records = [  # writer wants ascending end times
            IntervalRecord(RUNNING, BeBits.COMPLETE, 0, 100_000, 0, 0, 1, {}),
            IntervalRecord(RUNNING, BeBits.COMPLETE, 0, 1_000_000, 0, 0, 0, {}),
        ]
        path = make_ivl(tmp_path / "imb.ute", records)
        table = load_table(path, PROFILE)
        lb = load_balance_timeline(table, bins=1)
        assert lb.values[0] == pytest.approx((1_000_000 + 100_000) / 2 / 1_000_000)
