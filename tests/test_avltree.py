"""Tests for the AVL tree used by the merge utility."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.avltree import AVLTree


def test_empty_tree():
    tree = AVLTree()
    assert len(tree) == 0
    assert not tree
    with pytest.raises(KeyError):
        tree.pop_min()
    with pytest.raises(KeyError):
        tree.min_item()


def test_insert_and_pop_sorted():
    tree = AVLTree()
    for v in [5, 3, 8, 1, 9, 2, 7]:
        tree.insert(v, f"v{v}")
    out = []
    while tree:
        key, value = tree.pop_min()
        out.append(key)
        assert value == f"v{key}"
    assert out == [1, 2, 3, 5, 7, 8, 9]


def test_duplicate_keys_allowed():
    tree = AVLTree()
    for i in range(5):
        tree.insert(7, i)
    assert len(tree) == 5
    values = [tree.pop_min()[1] for _ in range(5)]
    assert sorted(values) == [0, 1, 2, 3, 4]


def test_min_item_does_not_remove():
    tree = AVLTree()
    tree.insert(2, "b")
    tree.insert(1, "a")
    assert tree.min_item() == (1, "a")
    assert len(tree) == 2


def test_items_in_order():
    tree = AVLTree()
    keys = random.Random(42).sample(range(1000), 100)
    for k in keys:
        tree.insert(k, None)
    assert [k for k, _ in tree.items()] == sorted(keys)


def test_height_logarithmic():
    tree = AVLTree()
    for i in range(1024):  # ascending insert — worst case for plain BST
        tree.insert(i, None)
    assert tree.height() <= 15  # 1.44 * log2(1024) + 2
    tree.check_invariants()


def test_invariants_under_mixed_workload():
    tree = AVLTree()
    rng = random.Random(7)
    live = 0
    for step in range(2000):
        if live and rng.random() < 0.4:
            tree.pop_min()
            live -= 1
        else:
            tree.insert(rng.randint(0, 10**6), step)
            live += 1
        if step % 97 == 0:
            tree.check_invariants()
    assert len(tree) == live


@given(st.lists(st.integers(), max_size=200))
@settings(max_examples=100)
def test_pop_order_matches_sorted(keys):
    tree = AVLTree()
    for k in keys:
        tree.insert(k, None)
    tree.check_invariants()
    out = []
    while tree:
        out.append(tree.pop_min()[0])
    assert out == sorted(keys)
