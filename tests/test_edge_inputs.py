"""Degenerate inputs give the same answer — empty, never an exception —
on every read path.

An empty trace, a window that misses the whole trace, or a file with too
few clock pairs to estimate drift are all legal states of the pipeline,
and each read path (reader, query, dump, stats, serve, differ, oracle)
must report "nothing there" rather than raise.  Table-driven so a new
degenerate case lands in every path at once.
"""

import json
import urllib.parse

import pytest

from repro.cli import main_stats
from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.reader import IntervalReader
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.core.writer import IntervalFileWriter
from repro.difftool import diff_traces, run_oracle
from repro.query.engine import run_query
from repro.query.model import Query
from repro.serve import ServeClient, ServerConfig, ServerThread
from repro.utils.dump import dump_interval, dump_slog
from repro.utils.merge import merge_interval_files
from repro.utils.slog import SlogFile, SlogWriter
from repro.utils.stats import interval_records

PROFILE = standard_profile()


def table():
    return ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "t0")])


def rec(itype=IntervalType.RUNNING, start=0, dura=100, **extra):
    return IntervalRecord(itype, BeBits.COMPLETE, start, dura, 0, 0, 0, extra)


def make_ivl(path, recs):
    # 1 tick/second: seconds-based windows (dump, stats) equal tick windows.
    with IntervalFileWriter(
        path, PROFILE, table(), field_mask=MASK_ALL_MERGED, frame_bytes=512,
        ticks_per_sec=1.0,
    ) as writer:
        for r in recs:
            writer.write(r)
    return path


def make_slog(path, recs):
    writer = SlogWriter(
        path, PROFILE, table(), field_mask=MASK_ALL_MERGED,
        time_range=(0, max((r.end for r in recs), default=1) or 1),
        frame_bytes=512, preview_bins=4, ticks_per_sec=1.0,
    )
    for r in sorted(recs, key=lambda r: r.end):
        writer.write(r)
    return writer.close()


#: Degenerate scenarios: name -> (records, query window in ticks).
#: A window of None means "no window"; all scenarios must yield 0 records.
SCENARIOS = {
    "empty-file": ([], None),
    "empty-file-windowed": ([], (0, 100)),
    "window-before-trace": ([rec(start=1000)], (0, 500)),
    "window-after-trace": ([rec(start=1000)], (5000, 9000)),
    "zero-length-window-in-gap": ([rec(start=0), rec(start=1000)], (600, 600)),
}


def scenario(request, tmp_path, factory, suffix):
    recs, window = SCENARIOS[request.param]
    return factory(tmp_path / f"edge{suffix}", recs), window


@pytest.fixture(params=sorted(SCENARIOS), ids=sorted(SCENARIOS))
def ivl_case(request, tmp_path):
    return scenario(request, tmp_path, make_ivl, ".ute")


@pytest.fixture(params=sorted(SCENARIOS), ids=sorted(SCENARIOS))
def slog_case(request, tmp_path):
    return scenario(request, tmp_path, make_slog, ".slog")


class TestIntervalPaths:
    def test_reader(self, ivl_case):
        path, window = ivl_case
        with IntervalReader(path, PROFILE) as reader:
            if window is None:
                assert list(reader.intervals()) == []
            else:
                assert list(reader.intervals_between(*window)) == []

    def test_query(self, ivl_case):
        path, window = ivl_case
        query = Query() if window is None else Query(t0=window[0], t1=window[1])
        result = run_query(path, query, profile=PROFILE, index=False)
        assert result.rows == []

    def test_dump(self, ivl_case):
        path, window = ivl_case
        lines = list(dump_interval(path, PROFILE, window=window))
        assert all(line.startswith("#") for line in lines)

    def test_stats_stream(self, ivl_case):
        path, window = ivl_case
        assert list(interval_records([path], PROFILE, window=window, index=None)) == []

    def test_differ_and_oracle(self, ivl_case):
        path, _ = ivl_case
        assert diff_traces(path, path, profile=PROFILE).identical
        assert run_oracle(path, PROFILE).ok


class TestSlogPaths:
    def test_slog_reader(self, slog_case):
        path, window = slog_case
        slog = SlogFile(path)
        try:
            records = [
                r
                for entry in slog.frames
                for r in slog.read_frame(entry)
                if window is None
                or (not (r.end < window[0] or r.start > window[1]))
            ]
        finally:
            slog.close()
        assert records == []

    def test_query(self, slog_case):
        path, window = slog_case
        query = Query() if window is None else Query(t0=window[0], t1=window[1])
        result = run_query(path, query, profile=PROFILE, index=False)
        assert result.rows == []

    def test_dump(self, slog_case):
        path, window = slog_case
        lines = list(dump_slog(path, window=window))
        assert all(line.startswith("#") for line in lines)

    def test_oracle(self, slog_case):
        path, _ = slog_case
        assert run_oracle(path, PROFILE, serve=False).ok


class TestEmptyStatsAndServe:
    def test_stats_cli_on_empty_file(self, tmp_path, capsys):
        path = make_ivl(tmp_path / "empty.ute", [])
        assert main_stats([str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert all(t["rows"] == [] for t in doc["tables"].values())

    PROGRAM = 'table name=t x=("type", type) y=("n", dura, count)\n'

    def test_serve_stats_on_empty_slog(self, tmp_path):
        path = make_slog(tmp_path / "empty.slog", [])
        with ServerThread(path, ServerConfig(port=0)) as srv:
            query = urllib.parse.urlencode(
                {"format": "json", "table": self.PROGRAM}
            )
            response = ServeClient(srv.base_url).request("/api/stats?" + query)
            assert response.status == 200
            assert all(t["rows"] == [] for t in response.json()["tables"])

    def test_serve_stats_window_misses_trace(self, tmp_path):
        path = make_slog(tmp_path / "late.slog", [rec(start=1000)])
        with ServerThread(path, ServerConfig(port=0)) as srv:
            query = urllib.parse.urlencode(
                {"format": "json", "table": self.PROGRAM, "window": "5000:9000"}
            )
            response = ServeClient(srv.base_url).request("/api/stats?" + query)
            assert response.status == 200
            assert all(t["rows"] == [] for t in response.json()["tables"])


class TestDegenerateMerge:
    def test_merge_of_empty_inputs(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute", [])
        merged = tmp_path / "m.ute"
        result = merge_interval_files([a], merged, PROFILE)
        assert result.records_out == 0
        with IntervalReader(merged, PROFILE) as reader:
            assert list(reader.intervals()) == []

    def test_piecewise_sync_with_one_clock_pair_falls_back(self, tmp_path):
        # PiecewiseAdjustment needs >= 2 pairs; the merge must degrade to
        # offset-only alignment instead of raising.
        a = make_ivl(
            tmp_path / "a.ute",
            [
                rec(IntervalType.CLOCKPAIR, start=50, dura=0, globalTs=40),
                rec(start=100, dura=100),
            ],
        )
        merged = tmp_path / "m.ute"
        result = merge_interval_files([a], merged, PROFILE, sync_mode="piecewise")
        assert result.records_out == 1
        with IntervalReader(merged, PROFILE) as reader:
            (only,) = list(reader.intervals())
        # Offset-only: shifted by (global - local) = -10, rate untouched.
        assert only.start == 90
        assert only.duration == 100

    def test_piecewise_sync_with_no_clock_pairs_is_identity(self, tmp_path):
        a = make_ivl(tmp_path / "a.ute", [rec(start=100, dura=100)])
        merged = tmp_path / "m.ute"
        merge_interval_files([a], merged, PROFILE, sync_mode="piecewise")
        with IntervalReader(merged, PROFILE) as reader:
            (only,) = list(reader.intervals())
        assert (only.start, only.duration) == (100, 100)
