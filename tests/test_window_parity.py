"""Every window-filtering path answers boundary cases identically.

Four code paths prune records to a time window — ``ute-dump --window``,
the query engine, ``IntervalReader.intervals_between``, and the stats
record stream — and all of them now route through the single predicate
``repro.core.windows.overlaps_window``.  These tests pin the shared
semantics (closed interval, ``None`` = open side, zero-length records)
across every path over the same boundary-heavy file, and pin the
unification itself so a future fork of the predicate fails loudly.
"""

import pytest

from repro.core import overlaps_window, standard_profile, window_to_ticks
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.reader import IntervalReader
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.core.writer import IntervalFileWriter
from repro.query.engine import run_query
from repro.query.model import Query
from repro.utils import dump as dump_mod
from repro.utils.dump import dump_interval
from repro.utils.stats import interval_records

PROFILE = standard_profile()

#: (start, end) of each record, in ticks, on a 1 tick/second file so the
#: seconds-based APIs (dump, stats) see the same numbers as the tick-based
#: ones.  Includes a zero-length record sitting exactly on a boundary.
SPANS = [(0, 10), (10, 10), (10, 20), (20, 30), (35, 40)]

#: (t0, t1) windows and the record indices they must select, everywhere.
WINDOW_CASES = [
    ((None, None), [0, 1, 2, 3, 4]),
    ((10, 10), [0, 1, 2]),        # closed interval: both boundary touches count
    ((None, 9), [0]),             # open left side
    ((11, None), [2, 3, 4]),      # open right side
    ((30, 35), [3, 4]),           # exact-boundary on both edges
    ((31, 34), []),               # gap between records
    ((100, 200), []),             # entirely after the trace
    ((0, 0), [0]),                # zero-length window at the origin
]


def span_file(tmp_path):
    path = tmp_path / "spans.ute"
    table = ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "t0")])
    with IntervalFileWriter(
        path, PROFILE, table, field_mask=MASK_ALL_MERGED,
        frame_bytes=256, ticks_per_sec=1.0,
    ) as writer:
        for start, end in SPANS:
            writer.write(
                IntervalRecord(
                    IntervalType.RUNNING, BeBits.COMPLETE,
                    start, end - start, 0, 0, 0, {},
                )
            )
    return path


def expected_spans(case):
    (t0, t1), indices = case
    return sorted(SPANS[i] for i in indices)


class TestPredicate:
    """The shared predicate itself, on the cases the call sites disagreed
    on historically: boundaries are inclusive and ``None`` opens a side."""

    @pytest.mark.parametrize(
        "start,end,t0,t1,expected",
        [
            (10, 20, 20, 30, True),    # touch at the left edge
            (10, 20, 0, 10, True),     # touch at the right edge
            (10, 20, 21, 30, False),
            (10, 20, 0, 9, False),
            (10, 10, 10, 10, True),    # zero-length record on the boundary
            (10, 10, 0, 9, False),
            (10, 20, None, None, True),
            (10, 20, None, 9, False),
            (10, 20, 21, None, False),
            (10, 20, None, 10, True),
            (10, 20, 20, None, True),
        ],
    )
    def test_cases(self, start, end, t0, t1, expected):
        assert overlaps_window(start, end, t0, t1) is expected

    def test_window_to_ticks_truncates(self):
        assert window_to_ticks((1.5, None), 10.0) == (15, None)
        assert window_to_ticks((None, 1.99), 10.0) == (None, 19)
        assert window_to_ticks(None, 10.0) == (None, None)


class TestUnification:
    """The call sites share one implementation — not four copies of it."""

    def test_query_engine_reexports_core(self):
        from repro.core import windows as core_windows
        from repro.query import engine

        assert engine.window_to_ticks is core_windows.window_to_ticks

    def test_dump_predicate_delegates(self):
        record = IntervalRecord(
            IntervalType.RUNNING, BeBits.COMPLETE, 10, 0, 0, 0, 0, {}
        )
        for t0, t1, expected in [(10, 10, True), (0, 9, False), (11, 20, False)]:
            assert dump_mod._in_window(record, (t0, t1)) is expected
            assert overlaps_window(10, 10, t0, t1) is expected

    def test_frame_overlaps_match_predicate(self, tmp_path):
        from repro.query.trace import open_trace

        with open_trace(span_file(tmp_path), PROFILE) as handle:
            for frame in handle.frames:
                for t0, t1 in [(0, 5), (10, 10), (100, 200), (None, None)]:
                    assert frame.overlaps(t0, t1) is overlaps_window(
                        frame.start_time, frame.end_time, t0, t1
                    )


class TestPathParity:
    """The same window over the same file gives the same records on every
    path.  Expected sets come straight from the shared predicate applied to
    the in-memory spans."""

    @pytest.fixture()
    def path(self, tmp_path):
        return span_file(tmp_path)

    @pytest.mark.parametrize("case", WINDOW_CASES, ids=lambda c: str(c[0]))
    def test_reader_intervals_between(self, path, case):
        (t0, t1), _ = case
        reader = IntervalReader(path, PROFILE)
        got = sorted((r.start, r.end) for r in reader.intervals_between(t0, t1))
        reader.close()
        assert got == expected_spans(case)

    @pytest.mark.parametrize("case", WINDOW_CASES, ids=lambda c: str(c[0]))
    def test_query_path(self, path, case):
        (t0, t1), _ = case
        result = run_query(path, Query(t0=t0, t1=t1), profile=PROFILE, index=False)
        got = sorted(row[0:2] for row in result.rows)
        assert got == expected_spans(case)

    @pytest.mark.parametrize("case", WINDOW_CASES, ids=lambda c: str(c[0]))
    def test_dump_window(self, path, case):
        (t0, t1), _ = case
        # 1 tick/second file: the seconds window equals the ticks window.
        lines = [
            line
            for line in dump_interval(path, PROFILE, window=(t0, t1))
            if not line.startswith("#")
        ]
        assert len(lines) == len(expected_spans(case))

    @pytest.mark.parametrize("case", WINDOW_CASES, ids=lambda c: str(c[0]))
    def test_stats_record_stream(self, path, case):
        (t0, t1), _ = case
        got = sorted(
            (r.start, r.end)
            for r in interval_records([path], PROFILE, window=(t0, t1), index=None)
        )
        assert got == expected_spans(case)
