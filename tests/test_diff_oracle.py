"""The pipeline oracle over the golden corpus, generated workloads, and
the differential round-trip properties."""

import json

import pytest
from hypothesis import given, settings

from repro import cli
from repro.cli import main_oracle
from repro.core import standard_profile
from repro.core.records import IntervalType
from repro.difftool import DiffConfig, diff_traces, run_oracle
from repro.difftool.oracle import Finding, OracleReport
from repro.utils.merge import merge_interval_files

from tests.test_convert_properties import MarkerUnifier, convert_one, schedules

PROFILE = standard_profile()

#: What the merge adds relative to its input: the localStart provenance
#: field, renumbered-away clock pairs, and SLOG-side pseudo records.
ROUNDTRIP_CONFIG = DiffConfig(
    ignore_fields=frozenset({"localStart"}),
    drop_types=frozenset({int(IntervalType.CLOCKPAIR)}),
    ignore_pseudo=True,
    canonical_order=True,
)


class TestOracleOverCorpus:
    @pytest.mark.parametrize("name", ["good.ute", "good.slog", "good.raw"])
    def test_zero_findings(self, corpus, name):
        report = run_oracle(corpus.path(name), PROFILE)
        assert report.ok, report.summary()
        assert "strict_vs_salvage" in report.checks
        assert "adjust_parity" in report.checks

    def test_slog_runs_all_eight_checks(self, corpus):
        report = run_oracle(corpus.path("good.slog"), PROFILE)
        assert report.checks == [
            "strict_vs_salvage",
            "indexed_vs_full",
            "columnar_vs_record",
            "dump_vs_query",
            "aggregate_vs_exact",
            "export_import_roundtrip",
            "stats_vs_serve",
            "adjust_parity",
        ]

    def test_no_serve_skips_socket_check(self, corpus):
        report = run_oracle(corpus.path("good.slog"), PROFILE, serve=False)
        assert report.ok
        assert "stats_vs_serve" not in report.checks

    def test_oracle_never_writes_sidecars(self, corpus):
        run_oracle(corpus.path("good.ute"), PROFILE)
        assert not corpus.path("good.ute").with_suffix(".ute.uteidx").exists()
        assert not (corpus.root / "good.ute.uteidx").exists()


class TestOracleCli:
    def test_exit_0_over_corpus(self, corpus, capsys):
        files = [str(corpus.path(n)) for n in ("good.ute", "good.slog", "good.raw")]
        assert main_oracle(files) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_json_output(self, corpus, capsys):
        assert main_oracle([str(corpus.path("good.ute")), "--json", "--no-serve"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert docs[0]["ok"] is True
        assert docs[0]["kind"] == "interval"

    def test_exit_2_on_missing_input(self, capsys):
        assert main_oracle(["nope.slog"]) == 2

    def test_report_shapes(self):
        report = OracleReport("x.ute", "interval")
        report.checks.append("demo")
        report.add(Finding("demo", "x.ute", "paths disagree", {"n": 1}))
        assert not report.ok
        doc = report.as_dict()
        assert doc["findings"][0]["check"] == "demo"
        assert "FINDING [demo]" in report.summary()


class TestOracleOverPipeline:
    """The acceptance scenario: a real workload through the whole pipeline,
    then zero findings on every produced artifact."""

    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("pingpong")
        raw_dir, ivl_dir = root / "raw", root / "ivl"
        assert cli.main_trace(["pingpong", "-o", str(raw_dir)]) == 0
        raws = sorted(str(p) for p in raw_dir.glob("*.raw"))
        assert cli.main_convert([*raws, "-o", str(ivl_dir)]) == 0
        utes = sorted(
            str(p) for p in ivl_dir.glob("*.ute") if p.name != "profile.ute"
        )
        merged = root / "merged.ute"
        slog = root / "run.slog"
        assert cli.main_slogmerge(
            [*utes, "-o", str(merged), "--slog", str(slog)]
        ) == 0
        return raws, utes, merged, slog

    def test_zero_findings_on_every_artifact(self, pipeline):
        raws, utes, merged, slog = pipeline
        for path in [*raws, *utes, merged, slog]:
            report = run_oracle(path, PROFILE)
            assert report.ok, report.summary()

    def test_merged_ute_diffs_clean_against_slog(self, pipeline):
        _, _, merged, slog = pipeline
        report = diff_traces(merged, slog, DiffConfig(ignore_pseudo=True))
        assert report.identical, report.as_dict()


class TestRoundTripProperty:
    """write -> convert -> merge(1 file) -> ute-diff original: no divergence."""

    @given(schedule=schedules())
    @settings(max_examples=25, deadline=None)
    def test_convert_merge_roundtrip_divergence_free(self, tmp_path_factory, schedule):
        from repro.tracing.rawfile import RawFileHeader, RawTraceReader, RawTraceWriter

        tmp = tmp_path_factory.mktemp("rt")
        raw = tmp / "rt.raw"
        with RawTraceWriter(raw, RawFileHeader(0, 4, 0)) as writer:
            for event in schedule.events:
                writer.write(event)
        converted = tmp / "rt.ute"
        convert_one(RawTraceReader(raw), converted, PROFILE, MarkerUnifier())
        merged = tmp / "merged.ute"
        merge_interval_files([converted], merged, PROFILE, frame_bytes=512)
        report = diff_traces(converted, merged, ROUNDTRIP_CONFIG, profile=PROFILE)
        assert report.identical, report.as_dict()


class TestSalvageCleanParity:
    """Salvage mode on every clean corpus artifact must see exactly the
    strict-mode record stream, with zero salvage interventions."""

    def clean_names(self, corpus):
        return sorted(
            name for name, info in corpus.manifest.items() if info["damage"] is None
        )

    def test_corpus_has_clean_artifacts(self, corpus):
        assert self.clean_names(corpus)

    def test_salvage_stream_identical_to_strict(self, corpus):
        for name in self.clean_names(corpus):
            path = corpus.path(name)
            strict = diff_traces(path, path, errors="strict")
            cross = diff_traces(path, path, errors="salvage")
            assert strict.identical and cross.identical, name
            assert strict.records_a == cross.records_a, name

    def test_salvage_counters_stay_zero_on_clean_input(self, corpus):
        from repro.core.reader import IntervalReader

        reader = IntervalReader(corpus.path("good.ute"), PROFILE, errors="salvage")
        list(reader.intervals())
        stats = reader.stats()
        reader.close()
        assert stats.get("bytes_skipped", 0) == 0
        assert stats.get("records_dropped", 0) == 0
