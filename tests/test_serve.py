"""Tests for the trace-serving daemon (``repro.serve``)."""

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.serve import ServeClient, ServerConfig, ServerThread, TraceSession
from repro.serve.metrics import Counter, Histogram, Registry
from repro.utils.slog import SlogWriter

PROFILE = standard_profile()
SEND = IntervalType.for_mpi_fn(0)
RECV = IntervalType.for_mpi_fn(1)


def make_slog(path, records, *, bins=10, frame_bytes=512):
    t1 = max((r.end for r in records), default=1)
    writer = SlogWriter(
        path, PROFILE,
        ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0")]),
        field_mask=MASK_ALL_MERGED, time_range=(0, max(t1, 1)),
        preview_bins=bins, frame_bytes=frame_bytes, node_cpus={0: 2},
    )
    for rec_ in sorted(records, key=lambda r: r.end):
        writer.write(rec_)
    return writer.close()


def rec(itype=IntervalType.RUNNING, start=0, dura=100, **extra):
    return IntervalRecord(itype, BeBits.COMPLETE, start, dura, 0, 0, 0, extra)


def message_records():
    """Several frames' worth of activity including matched messages."""
    records = []
    for i in range(40):
        t = i * 250
        records.append(rec(SEND, start=t, dura=90, msgSizeSent=64, seqno=i + 1))
        records.append(rec(RECV, start=t + 100, dura=80, msgSizeRecv=64, seqno=i + 1))
        records.append(rec(IntervalType.RUNNING, start=t + 190, dura=50))
    return records


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    path = make_slog(tmp_path_factory.mktemp("serve") / "run.slog", message_records())
    with ServerThread(path, ServerConfig(port=0)) as srv:
        yield srv, ServeClient(srv.base_url)


class TestEndpoints:
    def test_preview(self, served):
        _, client = served
        payload = client.preview()
        assert payload["bins"] == 10
        assert payload["time_range"][0] == pytest.approx(0.0)
        names = {s["name"] for s in payload["states"]}
        assert "MPI_Send" in names
        for state in payload["states"]:
            assert len(state["seconds"]) == payload["bins"]

    def test_frames_directory(self, served):
        srv, client = served
        directory = client.frames()
        assert directory["count"] == len(directory["frames"])
        assert directory["count"] >= 2  # frame_bytes=512 forces several frames
        for i, entry in enumerate(directory["frames"]):
            assert entry["index"] == i
            assert entry["end"] >= entry["start"]
            assert entry["bytes"] > 0

    def test_frame_records(self, served):
        _, client = served
        frame = client.frame(0)
        assert frame["index"] == 0
        assert frame["records"]
        for record in frame["records"]:
            assert record["end"] >= record["start"]
            assert isinstance(record["pseudo"], bool)

    def test_frame_with_view_payload(self, served):
        _, client = served
        frame = client.frame(0, view="thread")
        view = frame["view"]
        assert view["rows"] and view["states"]
        # The embedded view is clipped to the frame window.
        assert view["t0"] <= view["t1"]

    def test_frame_bad_view_kind(self, served):
        _, client = served
        response = client.request("/api/frame/0?view=bogus")
        assert response.status == 400
        assert "bogus" in response.json()["error"]

    def test_frame_out_of_range(self, served):
        _, client = served
        response = client.request("/api/frame/99999")
        assert response.status == 400

    def test_frame_non_integer_index(self, served):
        _, client = served
        response = client.request("/api/frame/zero")
        assert response.status == 400

    def test_arrows(self, served):
        _, client = served
        payload = client.arrows(0)
        assert payload["arrows"], "expected matched messages in frame 0"
        for arrow in payload["arrows"]:
            assert arrow["recv"] >= arrow["send"]
            assert arrow["bytes"] == 64

    def test_view_svg(self, served):
        _, client = served
        directory = client.frames()
        t_mid = (directory["frames"][0]["start"] + directory["frames"][0]["end"]) / 2
        svg = client.view_svg("thread", t_mid)
        assert svg.startswith("<svg")
        assert "MPI_Send" in svg

    def test_view_missing_t(self, served):
        _, client = served
        response = client.request("/api/view/thread")
        assert response.status == 400
        assert "'t'" in response.text

    def test_view_bad_kind(self, served):
        _, client = served
        response = client.request("/api/view/bogus?t=0.0")
        assert response.status == 400

    def test_stats_tsv(self, served):
        _, client = served
        response = client.stats('table name=n x=("node", node) y=("count", dura, count)')
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/tab-separated-values")
        lines = response.text.splitlines()
        assert lines[0] == "# table n"

    def test_stats_json(self, served):
        _, client = served
        response = client.stats(
            'table name=n x=("node", node) y=("count", dura, count)', format="json"
        )
        assert response.status == 200
        (table,) = response.json()["tables"]
        assert table["name"] == "n"
        assert table["rows"]

    def test_stats_malformed_program(self, served):
        _, client = served
        response = client.stats("table name=broken x=(")
        assert response.status == 400
        error = response.json()["error"]
        assert "line" in error and "column" in error

    def test_stats_missing_table_param(self, served):
        _, client = served
        response = client.request("/api/stats")
        assert response.status == 400

    def test_stats_unknown_format(self, served):
        _, client = served
        response = client.stats("table name=n", format="xml")
        assert response.status == 400

    def test_index_page(self, served):
        _, client = served
        response = client.request("/")
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/html")
        assert 'const API = "/api"' in response.text
        assert "<canvas" in response.text

    def test_metrics(self, served):
        _, client = served
        text = client.metrics()
        assert "# TYPE ute_serve_requests_total counter" in text
        assert "ute_serve_frames " in text
        assert client.metric_value("ute_serve_frames") >= 2

    def test_not_found(self, served):
        _, client = served
        assert client.request("/api/nope").status == 404

    def test_path_traversal_rejected(self, served):
        _, client = served
        assert client.request("/api/../etc/passwd").status == 400
        assert client.request("/api/%2e%2e/etc/passwd").status == 400

    def test_post_rejected(self, served):
        srv, _ = served
        req = urllib.request.Request(
            srv.base_url + "/api/preview", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=5)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "GET, HEAD"

    def test_head_has_no_body(self, served):
        srv, _ = served
        req = urllib.request.Request(srv.base_url + "/api/preview", method="HEAD")
        with urllib.request.urlopen(req, timeout=5) as resp:
            assert resp.status == 200
            assert int(resp.headers["Content-Length"]) > 0
            assert resp.read() == b""


class TestETags:
    def test_revalidation_returns_304(self, served):
        srv, _ = served
        client = ServeClient(srv.base_url)
        first = client.request("/api/frames")
        second = client.request("/api/frames")
        assert first.status == 200
        assert second.status == 304
        # The client substituted the cached body, so payloads agree.
        assert json.loads(first.body) == json.loads(second.body)

    def test_304_has_etag_but_no_body(self, served):
        srv, _ = served
        url = srv.base_url + "/api/preview"
        with urllib.request.urlopen(url, timeout=5) as resp:
            etag = resp.headers["ETag"]
        req = urllib.request.Request(url, headers={"If-None-Match": etag})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=5)
        assert excinfo.value.code == 304
        assert excinfo.value.headers["ETag"] == etag
        assert excinfo.value.read() == b""

    def test_star_matches_any(self, served):
        srv, _ = served
        req = urllib.request.Request(
            srv.base_url + "/api/frames", headers={"If-None-Match": "*"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=5)
        assert excinfo.value.code == 304

    def test_distinct_resources_distinct_etags(self, served):
        _, client = served
        etags = set()
        for path in ("/api/preview", "/api/frames", "/api/frame/0", "/api/frame/1"):
            response = ServeClient(client.base_url, use_etags=False).request(path)
            etags.add(response.headers["etag"])
        assert len(etags) == 4

    def test_etag_is_strong_and_quoted(self, served):
        _, client = served
        response = ServeClient(client.base_url, use_etags=False).request("/api/preview")
        etag = response.headers["etag"]
        assert etag.startswith('"') and etag.endswith('"')
        assert not etag.startswith('W/')


class TestCapacity:
    def test_saturation_yields_503_with_retry_after(self, tmp_path):
        path = make_slog(tmp_path / "sat.slog", message_records())
        config = ServerConfig(port=0, max_concurrency=1, retry_after=7)
        with ServerThread(path, config) as srv:
            release = threading.Event()
            original = srv.server._h_preview

            def slow_preview(request):
                release.wait(timeout=10.0)
                return original(request)

            srv.server._h_preview = slow_preview
            first = threading.Thread(
                target=lambda: ServeClient(srv.base_url).request("/api/preview"),
                daemon=True,
            )
            first.start()
            for _ in range(100):  # wait until the slow request is admitted
                if srv.server._active >= 1:
                    break
                time.sleep(0.01)
            overflow = ServeClient(srv.base_url).request("/api/frames")
            release.set()
            first.join(timeout=10.0)
            assert overflow.status == 503
            assert overflow.headers["retry-after"] == "7"
            # With capacity free again the same request succeeds.
            assert ServeClient(srv.base_url).request("/api/frames").status == 200
            assert 'ute_serve_rejected_total{reason="saturated"} 1' in (
                ServeClient(srv.base_url).metrics()
            )

    def test_handler_timeout_yields_504(self, tmp_path):
        path = make_slog(tmp_path / "slow.slog", [rec(start=0, dura=100)])
        config = ServerConfig(port=0, request_timeout=0.05)
        with ServerThread(path, config) as srv:
            srv.server._h_preview = lambda request: time.sleep(0.5)
            response = ServeClient(srv.base_url).request("/api/preview")
            assert response.status == 504

    def test_oversized_query_param_rejected(self, tmp_path):
        path = make_slog(tmp_path / "big.slog", [rec(start=0, dura=100)])
        config = ServerConfig(port=0, max_param_bytes=64)
        with ServerThread(path, config) as srv:
            response = ServeClient(srv.base_url).request(
                "/api/stats?table=" + "x" * 200
            )
            assert response.status == 414


class TestSessionAccounting:
    def test_frame_fetch_bounded_by_frame_size(self, tmp_path):
        """Serving one frame costs O(frame), not O(file)."""
        path = make_slog(tmp_path / "acct.slog", message_records())
        session = TraceSession(path)
        try:
            entries = session.viewer.slog.frames
            assert len(entries) >= 2
            before = session.stats()["bytes_fetched"]
            session.frame_payload(1)
            delta = session.stats()["bytes_fetched"] - before
            assert 0 < delta <= entries[1].size
            # A second read of the same frame is a pure cache hit.
            hits = session.stats()["hits"]
            session.frame_payload(1)
            assert session.stats()["bytes_fetched"] == before + delta
            assert session.stats()["hits"] == hits + 1
        finally:
            session.close()

    def test_stats_keys_unified(self, tmp_path):
        path = make_slog(tmp_path / "keys.slog", [rec(start=0, dura=100)])
        session = TraceSession(path)
        try:
            stats = session.stats()
            assert set(stats) >= {"hits", "misses", "fetch_count", "bytes_fetched"}
        finally:
            session.close()


class TestQueryEndpoint:
    def test_query_without_index_is_full_scan(self, served):
        """No sidecar next to the served file: /api/query still answers,
        plan mode says full-scan, and the fallback metric counts it."""
        _, client = served
        response = client.request("/api/query?thread=0&limit=5")
        assert response.status == 200
        payload = response.json()
        assert payload["plan"]["mode"] == "full-scan"
        assert payload["columns"][:2] == ["start", "end"]
        assert 0 < len(payload["rows"]) <= 5
        assert "x-ute-bytes-read" in {k.lower() for k in response.headers}
        assert client.metric_value("ute_serve_index_fallback_total") >= 1
        assert client.metric_value("ute_serve_index_loaded") == 0

    def test_query_bad_params(self, served):
        _, client = served
        assert client.request("/api/query?agg=median:x&group_by=node").status == 400
        assert client.request("/api/query?window=zzz").status == 400
        assert client.request("/api/query?node=abc").status == 400
        assert client.request("/api/query?format=xml").status == 400

    def test_stats_window_param(self, served):
        _, client = served
        program = 'table name=n x=("node", node) y=("count", dura, count)'
        full = client.request(
            "/api/stats?format=json&table=" + urllib.parse.quote(program)
        )
        windowed = client.request(
            "/api/stats?format=json&window=0:100&table=" + urllib.parse.quote(program)
        )
        assert full.status == windowed.status == 200
        assert windowed.json()["plan"]["frames_selected"] <= full.json()["plan"][
            "frames_selected"
        ]
        assert "io" in windowed.json()

    def test_view_reports_bytes_read(self, served):
        _, client = served
        response = client.request("/api/view/thread?t=0.0000001")
        assert response.status == 200
        headers = {k.lower(): v for k, v in response.headers.items()}
        assert int(headers["x-ute-bytes-read"]) >= 0


class TestServedIndex:
    @pytest.fixture(scope="class")
    def indexed_served(self, tmp_path_factory):
        from repro.query import build_index, index_path_for, open_trace, write_index

        path = make_slog(
            tmp_path_factory.mktemp("serve-idx") / "run.slog", message_records()
        )
        with open_trace(path) as handle:
            write_index(build_index(handle), index_path_for(path))
        with ServerThread(path, ServerConfig(port=0)) as srv:
            yield srv, ServeClient(srv.base_url)

    def test_indexed_query_prunes(self, indexed_served):
        srv, client = indexed_served
        assert client.metric_value("ute_serve_index_loaded") == 1
        full = client.request("/api/query").json()
        windowed = client.request("/api/query?window=0:0.0000002").json()
        assert full["plan"]["mode"] == "indexed"
        assert windowed["plan"]["mode"] == "indexed"
        assert windowed["plan"]["frames_pruned"] > 0
        assert (
            windowed["plan"]["frames_selected"] < windowed["plan"]["frames_total"]
        )
        assert client.metric_value("ute_serve_index_frames_pruned_total") > 0
        assert client.metric_value("ute_serve_index_frames_scanned_total") > 0

    def test_indexed_and_full_rows_identical(self, indexed_served):
        """The served index prunes frames but never changes rows: a windowed
        query answered through the index matches the full-scan record set
        filtered client-side."""
        _, client = indexed_served
        windowed = client.request("/api/query?window=0:0.0000002").json()
        everything = client.request("/api/query").json()
        start_i = everything["columns"].index("start")
        end_i = everything["columns"].index("end")
        t1_ticks = 0.0000002 * everything["ticks_per_sec"]
        expected = [
            row for row in everything["rows"]
            if row[start_i] <= t1_ticks and row[end_i] >= 0
        ]
        assert windowed["rows"] == expected

    def test_query_tsv_format(self, indexed_served):
        _, client = indexed_served
        response = client.request("/api/query?format=tsv&limit=3")
        assert response.status == 200
        headers = {k.lower(): v for k, v in response.headers.items()}
        assert headers["content-type"].startswith("text/tab-separated-values")
        lines = response.text.splitlines()
        assert lines[0].split("\t")[0] == "start"
        assert len(lines) == 4

    def test_grouped_query(self, indexed_served):
        _, client = indexed_served
        payload = client.request("/api/query?group_by=type&agg=count,sum:dura").json()
        assert payload["columns"] == ["type", "count", "sum(dura)"]
        assert payload["rows"]


class TestEvictionAccounting:
    def test_evictions_counted_and_exported(self, tmp_path):
        """A 1-frame cache evicts on every distinct frame decode; the
        counter must say so and /metrics must export it."""
        path = make_slog(tmp_path / "evict.slog", message_records())
        session = TraceSession(path, cache_frames=1)
        try:
            n = min(3, len(session.viewer.slog.frames))
            assert n >= 2
            for i in range(n):
                session.frame_payload(i)
            stats = session.stats()
            assert "evictions" in stats
            assert stats["evictions"] == n - 1
        finally:
            session.close()
        with ServerThread(
            path, ServerConfig(port=0, cache_frames=1)
        ) as srv:
            client = ServeClient(srv.base_url)
            client.frame(0)
            client.frame(1)
            assert client.metric_value("ute_serve_frame_cache_evictions_total") >= 1


class TestMetricsPrimitives:
    def test_counter_labels(self):
        counter = Counter("c_total", "help", ("route",))
        counter.inc(route="/a")
        counter.inc(2, route="/a")
        counter.inc(route="/b")
        assert counter.value(route="/a") == 3
        assert counter.value(route="/b") == 1
        text = "\n".join(counter.render())
        assert 'c_total{route="/a"} 3' in text

    def test_histogram_buckets_cumulative(self):
        hist = Histogram("h_seconds", "help", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            hist.observe(v)
        text = "\n".join(hist.render())
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text
        assert "h_seconds_count 3" in text

    def test_histogram_quantile(self):
        hist = Histogram("q_seconds", "help", buckets=(0.1, 1.0, 5.0))
        for v in (0.05,) * 9 + (2.0,):
            hist.observe(v)
        assert hist.quantile(0.5) <= 0.1
        assert hist.quantile(0.99) > 1.0

    def test_registry_renders_gauges(self):
        registry = Registry()
        registry.gauge("g_now", "help", lambda: 42)
        text = registry.render()
        assert "# TYPE g_now gauge" in text
        assert "g_now 42" in text

    def test_label_escaping(self):
        counter = Counter("e_total", "help", ("path",))
        counter.inc(path='a"b\\c\nd')
        text = "\n".join(counter.render())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
