"""Tests for communicators: comm_split and sub-group collectives."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.errors import SimulationError
from repro.mpi import MpiRuntime
from repro.mpi.comm import CONTEXT_STRIDE, Communicator


def run_job(n_tasks, body, nodes=2, cpus=2):
    cl = Cluster(ClusterSpec(n_nodes=nodes, cpus_per_node=cpus))
    rt = MpiRuntime(cl)
    rt.launch(n_tasks, body)
    rt.run()
    return rt


class TestCommunicatorObject:
    def test_rank_translation(self):
        comm = Communicator(1, (2, 5, 7), my_world_rank=5)
        assert comm.rank == 1
        assert comm.size == 3
        assert comm.world_rank(0) == 2
        assert comm.world_rank(2) == 7

    def test_non_member_rejected(self):
        with pytest.raises(SimulationError):
            Communicator(1, (0, 1), my_world_rank=3)

    def test_out_of_range_rank_rejected(self):
        comm = Communicator(1, (0, 1), my_world_rank=0)
        with pytest.raises(SimulationError):
            comm.world_rank(2)


class TestCommSplit:
    def test_split_by_parity(self):
        results = {}

        def body(ctx):
            comm = yield from ctx.comm_split(color=ctx.rank % 2)
            results[ctx.rank] = (comm.context_id, comm.members, comm.rank)

        run_job(6, body, nodes=3)
        evens = tuple(r for r in range(6) if r % 2 == 0)
        odds = tuple(r for r in range(6) if r % 2 == 1)
        for rank, (ctx_id, members, comm_rank) in results.items():
            expected = evens if rank % 2 == 0 else odds
            assert members == expected
            assert comm_rank == expected.index(rank)
        # The two groups got distinct context ids; members agree within.
        even_ctx = {results[r][0] for r in evens}
        odd_ctx = {results[r][0] for r in odds}
        assert len(even_ctx) == 1 and len(odd_ctx) == 1
        assert even_ctx != odd_ctx

    def test_key_orders_ranks(self):
        results = {}

        def body(ctx):
            # Reverse ordering via descending key.
            comm = yield from ctx.comm_split(color=0, key=ctx.size - ctx.rank)
            results[ctx.rank] = (comm.rank, comm.members)

        run_job(4, body)
        # key reverses the rank order: world rank 3 has the lowest key.
        assert results[3][0] == 0
        assert results[0][0] == 3
        assert results[0][1] == (3, 2, 1, 0)

    def test_successive_splits_get_fresh_contexts(self):
        results = {}

        def body(ctx):
            a = yield from ctx.comm_split(color=0)
            b = yield from ctx.comm_split(color=ctx.rank % 2)
            results.setdefault(ctx.rank, []).extend(
                [a.context_id, b.context_id]
            )

        run_job(4, body)
        ids = {cid for values in results.values() for cid in values}
        assert len(ids) == 3  # world-split + two parity groups


class TestSubCommCollectives:
    @pytest.mark.parametrize("op", ["barrier_", "allreduce", "allgather", "alltoall"])
    def test_symmetric_ops_within_group(self, op):
        done = []

        def body(ctx):
            comm = yield from ctx.comm_split(color=ctx.rank % 2)
            if op == "barrier_":
                yield from ctx.barrier(comm=comm)
            else:
                yield from getattr(ctx, op)(1024, comm=comm)
            done.append(ctx.rank)

        run_job(6, body, nodes=3)
        assert sorted(done) == list(range(6))

    def test_rooted_ops_use_comm_ranks(self):
        done = []

        def body(ctx):
            comm = yield from ctx.comm_split(color=ctx.rank // 2)
            # Root 1 = the second member of each pair.
            yield from ctx.bcast(1, 4096, comm=comm)
            yield from ctx.gather(0, 512, comm=comm)
            done.append(ctx.rank)

        run_job(6, body, nodes=3)
        assert sorted(done) == list(range(6))

    def test_concurrent_groups_do_not_cross_match(self):
        """Two groups running different collective sequences concurrently:
        context tag spacing keeps their fragments apart."""
        done = []

        def body(ctx):
            comm = yield from ctx.comm_split(color=ctx.rank % 2)
            if ctx.rank % 2 == 0:
                for _ in range(4):
                    yield from ctx.allreduce(64, comm=comm)
            else:
                yield from ctx.alltoall(128, comm=comm)
                yield from ctx.barrier(comm=comm)
            done.append(ctx.rank)

        run_job(8, body, nodes=4)
        assert sorted(done) == list(range(8))

    def test_world_collectives_still_work_after_split(self):
        done = []

        def body(ctx):
            comm = yield from ctx.comm_split(color=ctx.rank % 2)
            yield from ctx.allreduce(64, comm=comm)
            yield from ctx.barrier()  # world
            done.append(ctx.rank)

        run_job(4, body)
        assert sorted(done) == [0, 1, 2, 3]

    def test_split_is_traced(self, tmp_path):
        from repro.tracing import RawTraceReader, TraceFacility, TraceOptions
        from repro.tracing.hooks import MPI_FN_IDS, hook_for_mpi_begin

        cl = Cluster(ClusterSpec(n_nodes=2, cpus_per_node=2))
        fac = TraceFacility(cl, tmp_path, TraceOptions())
        rt = MpiRuntime(cl, fac)

        def body(ctx):
            comm = yield from ctx.comm_split(color=0)
            yield from ctx.barrier(comm=comm)

        rt.launch(2, body)
        rt.run()
        paths = fac.close()
        hooks = {e.hook_id for p in paths for e in RawTraceReader(p)}
        assert hook_for_mpi_begin(MPI_FN_IDS["MPI_Comm_split"]) in hooks

    def test_context_stride_large_enough(self):
        from repro.mpi.collectives import TAG_STRIDE

        # Many collectives in a communicator must not reach the next
        # context's tag space.
        assert CONTEXT_STRIDE > TAG_STRIDE * 10_000
