"""Tests for the SLOG format: frames, time index, preview counters,
pseudo-interval accounting, and self-containedness."""

import numpy as np
import pytest

from repro.core import standard_profile
from repro.core.fields import MASK_ALL_MERGED
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.errors import FormatError
from repro.utils.slog import SlogFile, SlogWriter, slog_from_interval_file

PROFILE = standard_profile()


def table():
    return ThreadTable([ThreadEntry(0, 100, 5000, 0, 0, 0, "rank-0")])


def running(start, dura, bebits=BeBits.COMPLETE):
    return IntervalRecord(IntervalType.RUNNING, bebits, start, dura, 0, 0, 0)


def make_slog(path, records, *, time_range=None, frame_bytes=512, bins=10, **kw):
    t1 = max((r.end for r in records), default=1)
    writer = SlogWriter(
        path, PROFILE, table(), field_mask=MASK_ALL_MERGED,
        time_range=time_range or (0, max(t1, 1)), preview_bins=bins,
        frame_bytes=frame_bytes, **kw,
    )
    for rec in sorted(records, key=lambda r: r.end):
        writer.write(rec)
    return writer.close()


class TestRoundTrip:
    def test_records_roundtrip(self, tmp_path):
        records = [running(i * 10, 5) for i in range(100)]
        path = make_slog(tmp_path / "a.slog", records)
        slog = SlogFile(path)
        back = slog.records()
        assert [(r.start, r.duration) for r in back] == [(i * 10, 5) for i in range(100)]

    def test_self_contained_profile(self, tmp_path):
        """A SLOG file needs no external profile: the embedded one decodes
        the records."""
        path = make_slog(tmp_path / "b.slog", [running(0, 10)])
        slog = SlogFile(path)
        assert slog.profile.version_id == PROFILE.version_id
        assert slog.profile.record_name(IntervalType.RUNNING) == "Running"

    def test_metadata_roundtrip(self, tmp_path):
        path = tmp_path / "c.slog"
        writer = SlogWriter(
            path, PROFILE, table(), field_mask=MASK_ALL_MERGED,
            markers={3: "Loop"}, node_cpus={0: 8}, time_range=(0, 100),
        )
        writer.write(running(0, 10))
        writer.close()
        slog = SlogFile(path)
        assert slog.markers == {3: "Loop"}
        assert slog.node_cpus == {0: 8}
        assert len(slog.thread_table) == 1

    def test_not_a_slog_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a slog file")
        with pytest.raises(FormatError, match="not a SLOG"):
            SlogFile(path)


class TestFrameIndex:
    def test_find_frame_by_time(self, tmp_path):
        records = [running(i * 10, 5) for i in range(300)]
        path = make_slog(tmp_path / "d.slog", records, frame_bytes=512)
        slog = SlogFile(path)
        assert len(slog.frames) > 3
        frame = slog.find_frame(1502)
        assert frame is not None
        assert frame.contains_time(1502)
        recs = slog.read_frame(frame)
        assert any(r.start <= 1502 <= r.end for r in recs)

    def test_find_frame_out_of_range(self, tmp_path):
        path = make_slog(tmp_path / "e.slog", [running(0, 10)])
        assert SlogFile(path).find_frame(10**9) is None

    def test_frame_record_counts_match(self, tmp_path):
        records = [running(i * 10, 5) for i in range(200)]
        path = make_slog(tmp_path / "f.slog", records, frame_bytes=512)
        slog = SlogFile(path)
        assert sum(f.n_records for f in slog.frames) == 200


class TestPreview:
    def test_uniform_activity_spreads_evenly(self, tmp_path):
        # One solid Running bar across the whole range.
        records = [running(0, 1000)]
        path = make_slog(tmp_path / "g.slog", records, time_range=(0, 1000), bins=10)
        slog = SlogFile(path)
        counters = slog.preview[IntervalType.RUNNING]
        assert counters.shape == (10,)
        np.testing.assert_allclose(counters, 100.0)

    def test_proportional_allocation_across_bin_edges(self, tmp_path):
        # A record spanning [50, 250) with bins of 100 -> 50/100/100 split.
        records = [running(50, 200)]
        path = make_slog(tmp_path / "h.slog", records, time_range=(0, 1000), bins=10)
        counters = SlogFile(path).preview[IntervalType.RUNNING]
        np.testing.assert_allclose(counters[:4], [50, 100, 50, 0])

    def test_total_preview_equals_total_duration(self, tmp_path):
        records = [running(i * 37, 21) for i in range(50)]
        path = make_slog(tmp_path / "i.slog", records, bins=13)
        slog = SlogFile(path)
        total = sum(arr.sum() for arr in slog.preview.values())
        assert total == pytest.approx(sum(r.duration for r in records))

    def test_pseudo_records_not_counted_in_preview(self, tmp_path):
        path = tmp_path / "j.slog"
        writer = SlogWriter(
            path, PROFILE, table(), field_mask=MASK_ALL_MERGED,
            time_range=(0, 100), preview_bins=5,
        )
        writer.write(running(0, 50))
        writer.write(
            IntervalRecord(IntervalType.MARKER, BeBits.CONTINUATION, 50, 0, 0, 0, 0,
                           {"markerId": 1}),
            pseudo=True,
        )
        writer.close()
        slog = SlogFile(path)
        assert IntervalType.MARKER not in slog.preview
        assert slog.frames[0].n_pseudo == 1

    def test_preview_matrix_in_seconds(self, tmp_path):
        records = [running(0, 10**9)]  # one second
        path = make_slog(tmp_path / "k.slog", records, time_range=(0, 10**9), bins=4)
        itypes, matrix = SlogFile(path).preview_matrix()
        assert itypes == [IntervalType.RUNNING]
        assert matrix.sum() == pytest.approx(1.0)


class TestValidation:
    def test_bad_time_range_rejected(self, tmp_path):
        with pytest.raises(FormatError, match="time range"):
            SlogWriter(
                tmp_path / "x.slog", PROFILE, table(),
                field_mask=MASK_ALL_MERGED, time_range=(10, 10),
            )

    def test_write_after_close_rejected(self, tmp_path):
        writer = SlogWriter(
            tmp_path / "y.slog", PROFILE, table(),
            field_mask=MASK_ALL_MERGED, time_range=(0, 10),
        )
        writer.close()
        with pytest.raises(FormatError):
            writer.write(running(0, 1))


def test_slog_from_interval_file(tmp_path):
    """The standalone converter produces an equivalent SLOG."""
    from repro.core import IntervalFileWriter
    from repro.core.fields import MASK_ALL_PER_NODE

    ivl = tmp_path / "m.ute"
    with IntervalFileWriter(
        ivl, PROFILE, table(), field_mask=MASK_ALL_PER_NODE, node_cpus={0: 4}
    ) as writer:
        for i in range(50):
            writer.write(running(i * 10, 5))
    slog_path = slog_from_interval_file(ivl, PROFILE, tmp_path / "m.slog")
    slog = SlogFile(slog_path)
    assert len(slog.records()) == 50
    assert slog.node_cpus == {0: 4}
