"""Tests for the remaining section 2.4 utility-library helpers."""

import pytest

from repro.core import (
    IntervalFileWriter,
    get_interval,
    read_header,
    read_profile,
    standard_profile,
)
from repro.core.fields import MASK_ALL_PER_NODE
from repro.core.reader import (
    get_interval_at,
    is_vector_field,
    total_elapsed_and_records,
)
from repro.core.records import BeBits, IntervalRecord, IntervalType
from repro.core.threadtable import ThreadEntry, ThreadTable
from repro.errors import FormatError

PROFILE = standard_profile()


@pytest.fixture()
def sample_file(tmp_path):
    path = tmp_path / "s.ute"
    table = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])
    with IntervalFileWriter(
        path, PROFILE, table, field_mask=MASK_ALL_PER_NODE, frame_bytes=512
    ) as writer:
        for i in range(30):
            writer.write(
                IntervalRecord(IntervalType.RUNNING, BeBits.COMPLETE, i * 100, 50, 0, 0, 0)
            )
    profile_path = PROFILE.write(tmp_path / "profile.ute")
    return path, profile_path


class TestGetIntervalAt:
    def test_fetch_by_frame_offset(self, sample_file):
        path, profile_path = sample_file
        handle, header = read_header(path)
        table = read_profile(profile_path, header.field_mask)
        frame = handle._frames[1]  # second frame: random access
        raw = get_interval_at(handle, frame.offset)
        from repro.core.reader import get_item_by_name

        start = get_item_by_name(table, raw, "start")
        # The second frame's first record starts exactly at the frame start.
        assert start == frame.start_time

    def test_sequential_and_random_agree(self, sample_file):
        path, profile_path = sample_file
        handle, header = read_header(path)
        first_frame = handle._frames[0]
        sequential_first = get_interval(handle)
        random_first = get_interval_at(handle, first_frame.offset)
        assert sequential_first == random_first

    def test_bad_offset_rejected(self, sample_file):
        path, _ = sample_file
        handle, _ = read_header(path)
        with pytest.raises(FormatError, match="outside file"):
            get_interval_at(handle, 10**9)


class TestIsVectorField:
    def test_scalar_field(self, sample_file):
        _, profile_path = sample_file
        table = read_profile(profile_path, MASK_ALL_PER_NODE)
        assert is_vector_field(table, IntervalType.RUNNING, "start") is False

    def test_unknown_field_rejected(self, sample_file):
        _, profile_path = sample_file
        table = read_profile(profile_path, MASK_ALL_PER_NODE)
        with pytest.raises(FormatError, match="no field"):
            is_vector_field(table, IntervalType.RUNNING, "bogus")


class TestAggregation:
    def test_total_elapsed_and_records(self, sample_file):
        path, _ = sample_file
        handle, _ = read_header(path)
        elapsed, count = total_elapsed_and_records(handle)
        assert count == 30
        assert elapsed == 29 * 100 + 50  # first start 0 to last end


class TestSharedReaderThreadSafety:
    """Regression: one IntervalReader shared by a thread pool (the serving
    daemon's executor) must not corrupt its LRU frame cache."""

    def test_concurrent_frame_reads_agree(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.reader import IntervalReader

        path = tmp_path / "shared.ute"
        table = ThreadTable([ThreadEntry(0, 1, 1, 0, 0, 0, "t")])
        with IntervalFileWriter(
            path, PROFILE, table, field_mask=MASK_ALL_PER_NODE, frame_bytes=256
        ) as writer:
            for i in range(200):
                writer.write(
                    IntervalRecord(
                        IntervalType.RUNNING, BeBits.COMPLETE, i * 100, 50, 0, 0, 0
                    )
                )
        # Tiny cache so concurrent readers constantly evict each other.
        reader = IntervalReader(path, PROFILE, cache_frames=2)
        frames = list(reader.frames())
        assert len(frames) >= 8
        expected = {
            i: [(r.start, r.duration) for r in reader.read_frame(f)]
            for i, f in enumerate(frames)
        }

        def hammer(worker: int) -> bool:
            for step in range(120):
                i = (worker * 7 + step) % len(frames)
                got = [(r.start, r.duration) for r in reader.read_frame(frames[i])]
                if got != expected[i]:
                    return False
            return True

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(hammer, range(8)))
        assert all(results)
        stats = reader.stats()
        assert stats["hits"] + stats["misses"] == 8 * 120 + len(frames)
