#!/usr/bin/env python
"""sPPM analysis: reproduce the paper's Figures 8 and 9.

Traces an sPPM-shaped run (4 nodes x 8-way SMP, 4 threads per MPI process,
one making MPI calls), then renders:

* the thread-activity view (Figure 8) — expect system activity on non-MPI
  threads and one idle thread;
* the processor-activity view (Figure 9) — expect mostly-idle CPUs and MPI
  threads hopping between processors;
* the thread-processor and processor-thread views derived from the *same*
  interval file.

Run:  python examples/sppm_analysis.py [output-dir]
"""

import sys
from collections import defaultdict
from pathlib import Path

from repro.core import standard_profile
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.viz.ansi import render_view_ansi
from repro.viz.jumpshot import Jumpshot
from repro.workloads import run_sppm
from repro.workloads.sppm import SppmConfig


def main(out_dir: str = "sppm-out") -> None:
    out = Path(out_dir)
    config = SppmConfig(iterations=4)
    run = run_sppm(out / "raw", config)
    print(f"simulated {run.elapsed_ns / 1e9:.4f}s")

    result = convert_traces(run.raw_paths, out / "intervals")
    merged = merge_interval_files(
        result.interval_paths, out / "merged.ute", standard_profile(),
        slog_path=out / "run.slog",
    )
    print(f"{result.events_processed} events -> {merged.records_out} merged records")

    viewer = Jumpshot(out / "run.slog")
    for kind, figure in [
        ("thread", "figure8_thread_activity"),
        ("processor", "figure9_processor_activity"),
        ("thread-processor", "thread_processor"),
        ("processor-thread", "processor_thread"),
        ("thread-connected", "thread_activity_connected"),
    ]:
        path = viewer.render_whole_run(out / f"{figure}.svg", kind=kind)
        print(f"  {kind:>18}: {path}")

    # The Figure 9 observations, computed from the records.
    records = [r for r in viewer.slog.records() if r.duration > 0]
    cpus_of = defaultdict(set)
    busy_cpus = defaultdict(set)
    for r in records:
        cpus_of[(r.node, r.thread)].add(r.cpu)
        busy_cpus[r.node].add(r.cpu)
    migrating = {k: sorted(v) for k, v in cpus_of.items() if len(v) > 1}
    print("\nFigure 9 observations:")
    for node in sorted(busy_cpus):
        total = viewer.slog.node_cpus.get(node, 8)
        print(f"  node {node}: {len(busy_cpus[node])}/{total} CPUs ever busy")
    print(f"  threads that migrated across CPUs: {len(migrating)}")
    for (node, tid), cpus in sorted(migrating.items())[:8]:
        print(f"    node {node} thread {tid}: CPUs {cpus}")

    # Figure 8 in the terminal.
    print()
    view = viewer.build_view(viewer.slog.records(), "thread")
    print(render_view_ansi(view, columns=90))


if __name__ == "__main__":
    main(*sys.argv[1:2])
