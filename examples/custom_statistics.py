#!/usr/bin/env python
"""Custom statistics: the declarative table language on a stencil run.

Shows the section 3.2 workflow with user-written table programs — including
the paper's own example program (average duration per (node, cpu) for
intervals starting in the first 2 seconds), message accounting via the
Figure 5 field (msgSizeSent), and a per-bin communication profile.

Run:  python examples/custom_statistics.py [output-dir]
"""

import sys
from pathlib import Path

from repro.core import IntervalReader, standard_profile
from repro.core.records import IntervalType
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.utils.stats import generate_tables
from repro.workloads import run_stencil
from repro.workloads.stencil import StencilConfig

#: The example program from paper section 3.2, verbatim in structure.
PAPER_EXAMPLE = """
table name=sample condition=(start < 2)
      x=("node", node)
      x=("processor", cpu)
      y=("avg(duration)", dura, avg)
"""

CUSTOM_PROGRAM = """
table name=mpi_time_by_task
      condition=(type >= 1 and type < 100)
      x=("node", node)
      x=("thread", thread)
      y=("mpi seconds", dura, sum)
      y=("mpi intervals", dura, count)
      y=("max interval", dura, max)
table name=message_sizes
      condition=(msgSizeSent > 0)
      x=("size", msgSizeSent)
      y=("count", msgSizeSent, count)
table name=comm_profile
      condition=(type >= 1 and type < 100)
      x=("bin", bin(start, 0, 1, 20))
      y=("comm seconds", dura, sum)
"""


def main(out_dir: str = "stats-out") -> None:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    profile = standard_profile()
    run = run_stencil(out / "raw", StencilConfig(iterations=6))
    result = convert_traces(run.raw_paths, out / "intervals")
    merge_interval_files(result.interval_paths, out / "merged.ute", profile)
    reader = IntervalReader(out / "merged.ute", profile)
    records = [r for r in reader.intervals() if r.itype != IntervalType.CLOCKPAIR]
    total_s = reader.totals()[2] / 1e9
    print(f"{len(records)} records over {total_s:.4f}s\n")

    print("--- the paper's own example program ---")
    (table,) = generate_tables(records, PAPER_EXAMPLE)
    print(table.to_tsv())

    print("--- custom tables ---")
    program = CUSTOM_PROGRAM.replace("bin(start, 0, 1, 20)",
                                     f"bin(start, 0, {total_s!r}, 20)")
    for table in generate_tables(records, program):
        path = table.write(out / f"{table.name}.tsv")
        print(f"[{table.name}] -> {path}")
        print(table.to_tsv())


if __name__ == "__main__":
    main(*sys.argv[1:2])
