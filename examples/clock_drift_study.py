#!/usr/bin/env python
"""Clock drift study: reproduce the paper's Figure 1 and validate the sync.

1. Samples four simulated local clocks against a reference over ~140s and
   plots the accumulated discrepancies (Figure 1: roughly linear growth).
2. Runs the paper's RMS-of-slope-segments estimator (plus the alternatives)
   over noisy clock pairs and reports how well each recovers true time —
   including the de-scheduled-sampler outliers section 5 warns about.

Run:  python examples/clock_drift_study.py [output-dir]
"""

import sys
from pathlib import Path

from repro.clocksync import (
    ClockPair,
    adjustment_from_pairs,
    filter_outliers,
    last_slope_ratio,
    rms_anchored_ratio,
    rms_segment_ratio,
)
from repro.cluster.clocks import ClockSpec, LocalClock
from repro.cluster.engine import NS_PER_SEC
from repro.cluster.machine import default_clock_spec
from repro.viz.colors import STATE_PALETTE
from repro.viz.svg import GRID, SvgCanvas, TEXT_PRIMARY, TEXT_SECONDARY


def figure1_series(duration_s: int = 140, step_s: int = 2):
    """Per-node accumulated discrepancy vs the node-0 reference clock."""
    clocks = [LocalClock(default_clock_spec(i)) for i in range(4)]
    reference = clocks[0]
    times = list(range(0, duration_s + 1, step_s))
    series = []
    for clock in clocks:
        series.append(
            [
                (clock.read(t * NS_PER_SEC) - reference.read(t * NS_PER_SEC)) / 1e6
                for t in times
            ]
        )
    return times, series


def render_figure1(times, series, path: Path) -> Path:
    width, height = 860, 420
    canvas = SvgCanvas(width, height)
    ml, mt, mb, mr = 80, 50, 60, 30
    plot_w, plot_h = width - ml - mr, height - mt - mb
    lo = min(min(s) for s in series)
    hi = max(max(s) for s in series)
    span = max(hi - lo, 1e-9)

    def xy(i, v):
        x = ml + times[i] / times[-1] * plot_w
        y = mt + (hi - v) / span * plot_h
        return x, y

    canvas.text(ml, 26, "Accumulated timestamp discrepancies among 4 local clocks",
                size=15, weight="bold")
    for frac in (0, 0.25, 0.5, 0.75, 1.0):
        y = mt + frac * plot_h
        canvas.line(ml, y, ml + plot_w, y, stroke=GRID)
        canvas.text(ml - 8, y + 4, f"{hi - frac * span:.1f}", size=10,
                    fill=TEXT_SECONDARY, anchor="end")
    for t_frac in range(0, 8):
        t = times[-1] * t_frac / 7
        x = ml + t / times[-1] * plot_w
        canvas.text(x, mt + plot_h + 16, f"{t:.0f}", size=10,
                    fill=TEXT_SECONDARY, anchor="middle")
    canvas.text(ml + plot_w / 2, height - 18, "elapsed time of reference clock (s)",
                size=11, fill=TEXT_SECONDARY, anchor="middle")
    canvas.text(16, mt - 10, "discrepancy (ms)", size=11, fill=TEXT_SECONDARY)
    for n, values in enumerate(series):
        pts = [xy(i, v) for i, v in enumerate(values)]
        canvas.polyline(pts, stroke=STATE_PALETTE[n], stroke_width=2)
        canvas.text(pts[-1][0] - 4, pts[-1][1] - 6, f"node {n}", size=10,
                    fill=TEXT_PRIMARY, anchor="end")
    return canvas.write(path)


def estimator_comparison() -> None:
    spec = ClockSpec(offset_ns=5_000_000, drift_ppm=33.0)
    clock = LocalClock(spec)
    true_ratio = 1.0 / (1.0 + 33e-6)
    pairs = []
    for i in range(60):
        g = i * NS_PER_SEC
        local = clock.read(g)
        if i in (13, 37):  # de-scheduled sampler: late local reads
            local += 700_000
        pairs.append(ClockPair(g, local))
    print("\nEstimator comparison (+33 ppm drift, 2 injected outliers):")
    print(f"  true global/local ratio      : {true_ratio:.9f}")
    for label, fn in [
        ("rms_segment (paper)", rms_segment_ratio),
        ("rms_anchored (rejected)", rms_anchored_ratio),
        ("last_slope", last_slope_ratio),
    ]:
        raw = fn(pairs)
        filtered = fn(filter_outliers(pairs))
        print(f"  {label:28s}: raw err {abs(raw - true_ratio):.2e}, "
              f"filtered err {abs(filtered - true_ratio):.2e}")
    adj = adjustment_from_pairs(pairs)
    probe = clock.read(45 * NS_PER_SEC)
    err_us = abs(adj.adjust(probe) - 45 * NS_PER_SEC) / 1e3
    print(f"  full adjustment error at t=45s: {err_us:.2f} us")


def main(out_dir: str = "clock-out") -> None:
    out = Path(out_dir)
    times, series = figure1_series()
    path = render_figure1(times, series, out / "figure1_clock_drift.svg")
    print(f"figure 1: {path}")
    final = [s[-1] for s in series]
    print("accumulated discrepancy at 140s (ms):",
          [f"{v:+.3f}" for v in final])
    estimator_comparison()


if __name__ == "__main__":
    main(*sys.argv[1:2])
