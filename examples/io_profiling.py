#!/usr/bin/env python
"""System-activity profiling: the paper's section 5 extension, working.

"Future extensions with additional system activities, such as I/O, page
miss, etc. may result in even better tools."  This example traces an
I/O-heavy run where two MPI tasks share each node's disk, then shows that
every existing tool handles the new FileIO and PageFault states with zero
changes — the self-defining profile describes them, so convert, merge,
statistics, and all the views just work:

* the thread-activity view shows long FileIO states (mostly blocked time)
  and the serialization of same-node checkpoints on the shared disk;
* the statistics language queries the new ``ioBytes`` field directly;
* page misses show up as brief PageFault states inside compute.

Run:  python examples/io_profiling.py [output-dir]
"""

import sys
from pathlib import Path

from repro.core import IntervalReader, standard_profile
from repro.core.records import BeBits, IntervalType
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.utils.stats import generate_tables
from repro.viz.ansi import render_view_ansi
from repro.viz.jumpshot import Jumpshot
from repro.workloads import run_ioheavy
from repro.workloads.ioheavy import IoHeavyConfig

IO_TABLES = """
table name=io_by_node
      condition=(ioBytes > 0 and (bebits == 0 or bebits == 1))
      x=("node", node)
      y=("bytes", ioBytes, sum)
      y=("operations", ioBytes, count)
table name=fault_counts
      condition=(type == 103 and (bebits == 0 or bebits == 1))
      x=("node", node) x=("thread", thread)
      y=("faults", dura, count)
"""


def main(out_dir: str = "io-out") -> None:
    out = Path(out_dir)
    profile = standard_profile()
    config = IoHeavyConfig(phases=3)
    run = run_ioheavy(out / "raw", config)
    print(f"simulated {run.elapsed_ns / 1e9:.4f}s "
          f"({config.n_tasks} tasks, {config.tasks_per_node} per node/disk)")
    for node in run.cluster.nodes:
        print(f"  node {node.node_id} disk: {node.disk.requests} requests, "
              f"{node.disk.bytes_moved >> 20} MiB, "
              f"{node.disk.utilization(run.elapsed_ns) * 100:.0f}% busy")

    result = convert_traces(run.raw_paths, out / "intervals")
    merged = merge_interval_files(
        result.interval_paths, out / "merged.ute", profile,
        slog_path=out / "run.slog",
    )

    reader = IntervalReader(out / "merged.ute", profile)
    records = list(reader.intervals())

    # Disk-queueing analysis from the trace alone: wall span per write.
    spans = {}
    open_start = {}
    for r in records:
        if r.itype != IntervalType.IO or r.extra.get("ioWrite") != 1:
            continue
        key = (r.node, r.thread)
        if r.bebits is BeBits.BEGIN:
            open_start[key] = r.start
        elif r.bebits is BeBits.END and key in open_start:
            spans.setdefault(key, []).append((r.end - open_start.pop(key)) / 1e6)
        elif r.bebits is BeBits.COMPLETE:
            spans.setdefault(key, []).append(r.duration / 1e6)
    print("\ncheckpoint write wall time per task (ms) — same-node pairs queue:")
    for (node, thread), values in sorted(spans.items()):
        print(f"  node {node} thread {thread}: "
              + ", ".join(f"{v:.1f}" for v in values))

    print("\nstatistics over the extension fields:")
    for table in generate_tables(records, IO_TABLES):
        print(f"[{table.name}]")
        print(table.to_tsv())

    viewer = Jumpshot(out / "run.slog")
    print(f"thread view: {viewer.render_whole_run(out / 'io_thread_view.svg')}")
    view = viewer.build_view(viewer.slog.records(), "thread")
    print()
    print(render_view_ansi(view, columns=100))


if __name__ == "__main__":
    main(*sys.argv[1:2])
