#!/usr/bin/env python
"""FLASH preview and statistics: reproduce the paper's Figures 6 and 7.

Traces a FLASH-shaped phased run, builds the SLOG file, and then:

* renders the whole-run **preview** (Figure 7's smaller window) from the
  state counters stored in the SLOG header;
* reports the **interesting time ranges** the way the Figure 6 discussion
  reads them off the statistics table;
* picks an instant inside an interesting range and displays the containing
  **frame** via the time index (Figure 7's larger window);
* generates and renders the pre-defined statistics tables (Figure 6).

Run:  python examples/flash_preview.py [output-dir]
"""

import sys
from pathlib import Path

from repro.core import IntervalReader, standard_profile
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.utils.stats import predefined_tables
from repro.viz.jumpshot import Jumpshot
from repro.viz.statviewer import render_binned_table_svg, render_table_svg
from repro.workloads import run_flash
from repro.workloads.flash import FlashConfig


def main(out_dir: str = "flash-out") -> None:
    out = Path(out_dir)
    profile = standard_profile()
    run = run_flash(out / "raw", FlashConfig(iterations=30))
    print(f"simulated {run.elapsed_ns / 1e9:.4f}s")

    result = convert_traces(run.raw_paths, out / "intervals")
    merged = merge_interval_files(
        result.interval_paths, out / "merged.ute", profile,
        slog_path=out / "run.slog", frame_bytes=8 * 1024,
    )
    print(f"{result.events_processed} events -> {merged.records_out} merged records "
          f"(+{merged.pseudo_records} pseudo-intervals)")

    viewer = Jumpshot(out / "run.slog")
    print(f"preview: {viewer.render_preview(out / 'figure7_preview.svg')}")

    ranges = viewer.interesting_ranges(threshold=0.2)
    print("interesting time ranges (the Figure 6 reading):")
    for lo, hi in ranges:
        print(f"  {lo:.3f}s .. {hi:.3f}s")

    # Zoom into the middle of the second interesting range, like the user
    # clicking the preview in Figure 7.
    if len(ranges) > 1:
        lo, hi = ranges[1]
        instant = (lo + hi) / 2
        frame = viewer.locate(instant)
        print(f"frame containing t={instant:.3f}s: "
              f"{frame.n_records} records ({frame.n_pseudo} pseudo), "
              f"[{frame.start_time / 1e9:.3f}s, {frame.end_time / 1e9:.3f}s]")
        path = viewer.render_frame_at(instant, out / "figure7_frame.svg",
                                      kind="thread-connected")
        print(f"frame display: {path}")

    # Figure 6: the statistics utility + viewer.
    reader = IntervalReader(out / "merged.ute", profile)
    records = list(reader.intervals())
    total_s = reader.totals()[2] / 1e9
    tables = predefined_tables(records, total_seconds=total_s)
    for table in tables:
        print(f"stats: {table.write(out / (table.name + '.tsv'))}")
    binned = next(t for t in tables if t.name == "interesting_by_node_bin")
    print(f"figure 6 viewer: "
          f"{render_binned_table_svg(binned, out / 'figure6_statistics.svg', total_seconds=total_s)}")
    by_type = next(t for t in tables if t.name == "duration_by_type")
    names = {t: profile.record_name(t) for t in profile.record_types()}
    print(f"by-type viewer: "
          f"{render_table_svg(by_type, out / 'duration_by_type.svg', y_label='sum(duration)', name_of=names)}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
