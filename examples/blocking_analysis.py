#!/usr/bin/env python
"""Blocking analysis: the "performance-analysis applications" of section 4.

Traces the stencil workload, then uses the analysis layer (built purely on
interval records) to answer the questions the views only show:

* Which state types spend their time blocked rather than computing?
  (the call profile — receives and waitalls block; sends don't)
* How busy was each thread and each CPU really?
* What did the messages cost?  (latency by size, causality check)

Run:  python examples/blocking_analysis.py [output-dir]
"""

import sys
from pathlib import Path

from repro.analysis import (
    call_profile,
    cpu_utilization,
    message_stats,
    thread_utilization,
)
from repro.analysis.blocking import format_call_profile
from repro.analysis.messages import latency_by_size
from repro.core import IntervalReader, standard_profile
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.viz.arrows import match_arrows
from repro.workloads import run_stencil
from repro.workloads.stencil import StencilConfig


def main(out_dir: str = "blocking-out") -> None:
    out = Path(out_dir)
    profile = standard_profile()
    run = run_stencil(out / "raw", StencilConfig(iterations=8))
    conv = convert_traces(run.raw_paths, out / "intervals")
    merged = merge_interval_files(conv.interval_paths, out / "merged.ute", profile)
    reader = IntervalReader(merged.merged_path, profile)
    records = list(reader.intervals())

    print("=== call profile (worst blockers first) ===")
    rows = call_profile(records, profile, markers=reader.markers)
    print(format_call_profile(rows))

    print("\n=== thread utilization ===")
    for u in thread_utilization(records):
        node, thread = u.key
        bar = "#" * int(u.fraction * 40)
        print(f"  node {node} thread {thread}: {u.fraction * 100:5.1f}% |{bar:<40}|")

    print("\n=== CPU utilization (idle CPUs included) ===")
    for u in cpu_utilization(records, reader.node_cpus):
        node, cpu = u.key
        bar = "#" * int(u.fraction * 40)
        print(f"  node {node} cpu {cpu}:    {u.fraction * 100:5.1f}% |{bar:<40}|")

    print("\n=== messages ===")
    arrows = match_arrows(records)
    stats = message_stats(arrows)
    print(f"  {stats.count} messages, {stats.total_bytes >> 10} KiB total, "
          f"latency min/median/max = {stats.min_latency_ns / 1e3:.1f} / "
          f"{stats.median_latency_ns / 1e3:.1f} / {stats.max_latency_ns / 1e3:.1f} us, "
          f"causality violations: {stats.causality_violations}")
    for size, (count, median) in latency_by_size(arrows).items():
        print(f"    {size:>8} B x {count:<3} median visible latency "
              f"{median / 1e3:8.1f} us")


if __name__ == "__main__":
    main(*sys.argv[1:2])
