#!/usr/bin/env python
"""Quickstart: the full pipeline of paper Figure 2 on a ping-pong run.

    trace -> raw event files (one per node)
          -> convert  -> per-node interval files + description profile
          -> merge    -> one merged interval file + SLOG
          -> analyze  -> statistics tables, preview, time-space diagram

Run:  python examples/quickstart.py [output-dir]
"""

import sys
from pathlib import Path

from repro.core import IntervalReader, standard_profile
from repro.utils.convert import convert_traces
from repro.utils.merge import merge_interval_files
from repro.utils.stats import predefined_tables
from repro.viz.ansi import render_view_ansi
from repro.viz.jumpshot import Jumpshot
from repro.workloads import run_pingpong


def main(out_dir: str = "quickstart-out") -> None:
    out = Path(out_dir)

    # 1. Trace: execute the program with the tracing library attached.
    run = run_pingpong(out / "raw")
    print(f"simulated {run.elapsed_ns / 1e9:.4f}s on {len(run.raw_paths)} nodes")
    for path in run.raw_paths:
        print(f"  raw trace: {path}")

    # 2. Convert: match events into intervals, unify marker ids.
    result = convert_traces(run.raw_paths, out / "intervals")
    print(f"convert: {result.events_processed} events -> {result.records_written} records")

    # 3. Merge (+SLOG): align clocks, adjust drift, k-way merge.
    profile = standard_profile()
    merged = merge_interval_files(
        result.interval_paths,
        out / "merged.ute",
        profile,
        slog_path=out / "run.slog",
    )
    print(f"merge: {merged.records_out} records, ratios "
          f"{[round(a.ratio, 9) for a in merged.adjustments]}")

    # 4a. Statistics: the pre-defined tables.
    reader = IntervalReader(out / "merged.ute", profile)
    records = list(reader.intervals())
    total_s = reader.totals()[2] / 1e9
    for table in predefined_tables(records, total_seconds=total_s):
        path = table.write(out / f"{table.name}.tsv")
        print(f"  stats table: {path}")

    # 4b. Visualization: preview + thread-activity view with arrows.
    viewer = Jumpshot(out / "run.slog")
    print(f"  preview: {viewer.render_preview(out / 'preview.svg')}")
    print(f"  view:    {viewer.render_whole_run(out / 'thread_view.svg')}")

    # And a terminal rendering, because why not.
    view = viewer.build_view(viewer.slog.records(), "thread")
    print()
    print(render_view_ansi(view, columns=90))
    print(f"\n{len(view.arrows)} message arrows matched by sequence number")


if __name__ == "__main__":
    main(*sys.argv[1:2])
